//! Quickstart: stand up a small managed network, run the agent grid for
//! ten simulated minutes, and print the management report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use agentgrid_suite::net::{Device, DeviceKind, FaultKind, Network, ScheduledFault};
use agentgrid_suite::ManagementGrid;

fn main() {
    // A network of one router, one switch and two servers at one site.
    let mut network = Network::new();
    network.add_device(
        Device::builder("edge-router", DeviceKind::Router)
            .site("hq")
            .seed(1)
            .build(),
    );
    network.add_device(
        Device::builder("core-switch", DeviceKind::Switch)
            .site("hq")
            .seed(2)
            .build(),
    );
    network.add_device(
        Device::builder("app-server", DeviceKind::Server)
            .site("hq")
            .seed(3)
            .build(),
    );
    network.add_device(
        Device::builder("db-server", DeviceKind::Server)
            .site("hq")
            .seed(4)
            .build(),
    );

    // The grid: two collectors (one SNMP, one CLI), two analyzer
    // containers, default rules and balancing. A CPU runaway is planted
    // on the database server three minutes in.
    let mut grid = ManagementGrid::builder()
        .network(network)
        .collectors_per_site(2)
        .poll_period_ms(60_000)
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .analyzer("pg-2", 1.0, ALL_SKILLS)
        .fault(ScheduledFault::from(
            "db-server",
            FaultKind::CpuRunaway,
            3 * 60_000,
        ))
        .build();

    let report = grid.run(10 * 60_000, 60_000);
    print!("{report}");
}

const ALL_SKILLS: [&str; 8] = [
    "cpu",
    "memory",
    "disk",
    "interface",
    "process",
    "system",
    "other",
    "correlation",
];
