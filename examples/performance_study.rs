//! Performance study: programmatic access to the paper's evaluation —
//! run the three architectures of Figure 6 on the Table 1 cost model,
//! sweep the workload to find the crossover point, and test a what-if
//! (cheaper parsing) through a cost-model ablation.
//!
//! ```text
//! cargo run --example performance_study
//! ```

use agentgrid_suite::core::costmodel::{TaskCost, TaskKind};
use agentgrid_suite::core::scenario::run_architecture;
use agentgrid_suite::core::RequestType;
use agentgrid_suite::des::ResourceKind;
use agentgrid_suite::{Architecture, CostModel, Workload};

fn main() {
    let costs = CostModel::table1();

    // --- Figure 6: the paper's scenario -------------------------------
    println!("Figure 6 scenario: 10 requests of each type\n");
    for architecture in Architecture::paper_configs() {
        let report = run_architecture(architecture, Workload::paper(), &costs);
        println!(
            "{:<22} makespan {:>5}",
            architecture.label(),
            report.makespan()
        );
        for host in report.hosts() {
            println!(
                "    {:<14} cpu {:>5.1}%  net {:>5.1}%  disk {:>5.1}%",
                host,
                report.utilization(host, ResourceKind::Cpu) * 100.0,
                report.utilization(host, ResourceKind::Net) * 100.0,
                report.utilization(host, ResourceKind::Disk) * 100.0,
            );
        }
    }

    // --- Crossover sweep ----------------------------------------------
    println!("\nCrossover: grid vs centralized mean completion time");
    let mut crossover = None;
    for rounds in 1..=20 {
        let workload = Workload::rounds(rounds);
        let cen = run_architecture(Architecture::Centralized, workload, &costs)
            .mean_completion()
            .unwrap_or(0.0);
        let grid = run_architecture(
            Architecture::AgentGrid {
                collectors: 3,
                analyzers: 2,
            },
            workload,
            &costs,
        )
        .mean_completion()
        .unwrap_or(0.0);
        if grid < cen && crossover.is_none() {
            crossover = Some(rounds);
        }
        if rounds <= 5 || rounds % 5 == 0 {
            println!("  rounds {rounds:>3}: centralized {cen:>8.1}  grid {grid:>8.1}");
        }
    }
    println!(
        "  -> grid becomes advantageous at {} round(s)",
        crossover.map_or("never".to_owned(), |r| r.to_string())
    );

    // --- What-if: hardware-accelerated parsing -------------------------
    // The paper attributes much of the collector win to local parsing;
    // what if parsing were five times cheaper?
    let cheap_parse = CostModel::table1()
        .with_cost(TaskKind::Parse(RequestType::A), TaskCost::new(3, 0, 0))
        .with_cost(TaskKind::Parse(RequestType::B), TaskCost::new(3, 0, 0))
        .with_cost(TaskKind::Parse(RequestType::C), TaskCost::new(3, 0, 0));
    println!("\nAblation: parse cost 15 -> 3 units (e.g. binary telemetry)");
    for (label, model) in [("table-1 costs", &costs), ("cheap parsing", &cheap_parse)] {
        let cen = run_architecture(Architecture::Centralized, Workload::paper(), model);
        let grid = run_architecture(
            Architecture::AgentGrid {
                collectors: 3,
                analyzers: 2,
            },
            Workload::paper(),
            model,
        );
        println!(
            "  {label:<14} centralized makespan {:>5}, grid makespan {:>5}, speedup {:.2}x",
            cen.makespan(),
            grid.makespan(),
            cen.makespan() as f64 / grid.makespan() as f64
        );
    }
}
