//! Telecom fault correlation: a provider's access network where a
//! regional overload shows up on several devices at once. Demonstrates
//! the processor grid's level-3 cross-device analysis and the interface
//! grid's feedback channel — the operator teaches the grid a new
//! correlation rule at runtime and it starts firing without a restart.
//!
//! ```text
//! cargo run --example telecom_fault_correlation
//! ```

use agentgrid_suite::net::{Device, DeviceKind, FaultKind, Network, ScheduledFault};
use agentgrid_suite::ManagementGrid;

const ALL_SKILLS: [&str; 8] = [
    "cpu",
    "memory",
    "disk",
    "interface",
    "process",
    "system",
    "other",
    "correlation",
];

fn main() {
    // A metro ring: four aggregation routers and four access switches.
    let mut network = Network::new();
    for i in 0..4 {
        network.add_device(
            Device::builder(format!("agg-{i}"), DeviceKind::Router)
                .site("metro")
                .interfaces(6)
                .seed(i)
                .build(),
        );
        network.add_device(
            Device::builder(format!("acc-{i}"), DeviceKind::Switch)
                .site("metro")
                .seed(40 + i)
                .build(),
        );
    }

    // A regional event: two aggregation routers overload together
    // (the signature of a failover storm), plus an unrelated single
    // link failure elsewhere.
    let builder = ManagementGrid::builder()
        .network(network)
        .collectors_per_site(2)
        .analyzer("pg-1", 2.0, ALL_SKILLS)
        .analyzer("pg-2", 2.0, ALL_SKILLS)
        .fault(ScheduledFault::from(
            "agg-0",
            FaultKind::CpuRunaway,
            4 * 60_000,
        ))
        .fault(ScheduledFault::from(
            "agg-1",
            FaultKind::CpuRunaway,
            4 * 60_000,
        ))
        .fault(ScheduledFault::from(
            "acc-3",
            FaultKind::LinkDown(2),
            2 * 60_000,
        ));
    let mut grid = builder.build();

    // Phase 1: built-in rules only.
    let phase1 = grid.run(8 * 60_000, 60_000);
    let correlated = phase1
        .alerts
        .iter()
        .filter(|a| a.rule == "correlated-cpu")
        .count();
    println!(
        "phase 1: {} alerts, of which {} level-3 correlations (correlated-cpu)",
        phase1.alerts.len(),
        correlated
    );

    // Phase 2: the operator teaches a sharper rule through the
    // interface grid: a downed interface on an access switch while an
    // aggregation router is overloaded = suspected failover storm.
    grid.teach_rule(
        r#"rule "failover-storm" salience 20 {
            when if_status(device: ?acc, index: ?i, value: ?s)
            when cpu(device: ?agg, value: ?v)
            if ?s == 2
            if ?v > 90
            then emit critical ?agg "suspected failover storm: ?agg overloaded while ?acc lost interface ?i"
        }"#,
    );
    let phase2 = grid.run(8 * 60_000, 60_000);
    let storms: Vec<_> = phase2
        .alerts
        .iter()
        .filter(|a| a.rule == "failover-storm")
        .collect();
    println!(
        "phase 2: taught `failover-storm` at runtime -> {} new correlation alerts",
        storms.len()
    );
    if let Some(alert) = storms.first() {
        println!("example: {}", alert.message);
    }

    // The operator-facing report.
    println!();
    let mut distinct: Vec<(String, String)> = phase2
        .alerts
        .iter()
        .map(|a| (a.rule.clone(), a.device.clone()))
        .collect();
    distinct.sort();
    distinct.dedup();
    println!("distinct (rule, device) findings over the whole run:");
    for (rule, device) in distinct {
        println!("  {rule} @ {device}");
    }
}
