//! Datacenter monitoring: a two-site deployment (primary datacenter +
//! branch office) with heterogeneous analyzer containers, several
//! scheduled incidents, and a comparison of what the agent grid reports
//! against the non-grid multi-agent baseline on the *same* scenario.
//!
//! ```text
//! cargo run --example datacenter_monitoring
//! ```

use agentgrid_suite::baselines::MultiAgentSystem;
use agentgrid_suite::net::{Device, DeviceKind, FaultKind, Link, Network, ScheduledFault};
use agentgrid_suite::ManagementGrid;

const ALL_SKILLS: [&str; 8] = [
    "cpu",
    "memory",
    "disk",
    "interface",
    "process",
    "system",
    "other",
    "correlation",
];

fn build_network(seed: u64) -> Network {
    let mut network = Network::new();
    // Primary datacenter: 2 routers, 2 switches, 6 servers.
    for i in 0..2 {
        network.add_device(
            Device::builder(format!("dc-router-{i}"), DeviceKind::Router)
                .site("datacenter")
                .interfaces(8)
                .seed(seed + i)
                .build(),
        );
        network.add_device(
            Device::builder(format!("dc-switch-{i}"), DeviceKind::Switch)
                .site("datacenter")
                .seed(seed + 10 + i)
                .build(),
        );
    }
    for i in 0..6 {
        network.add_device(
            Device::builder(format!("dc-server-{i}"), DeviceKind::Server)
                .site("datacenter")
                .cpus(2)
                .ram_units(16_384)
                .seed(seed + 20 + i)
                .build(),
        );
    }
    // Branch office: 1 router, 2 servers.
    network.add_device(
        Device::builder("br-router", DeviceKind::Router)
            .site("branch")
            .seed(seed + 40)
            .build(),
    );
    for i in 0..2 {
        network.add_device(
            Device::builder(format!("br-server-{i}"), DeviceKind::Server)
                .site("branch")
                .seed(seed + 50 + i)
                .build(),
        );
    }
    network.add_link(Link::new("datacenter", "branch", 35, 100_000_000));
    network
}

fn incidents() -> [ScheduledFault; 4] {
    [
        // A database server leaks memory from minute 5.
        ScheduledFault::from("dc-server-2", FaultKind::MemoryLeak, 5 * 60_000),
        // A core uplink flaps between minutes 8 and 12.
        ScheduledFault::from("dc-router-0", FaultKind::LinkDown(3), 8 * 60_000).until(12 * 60_000),
        // The branch server's disk starts filling at minute 10.
        ScheduledFault::from("br-server-0", FaultKind::DiskFilling, 10 * 60_000),
        // A batch job pins two CPUs from minute 15.
        ScheduledFault::from("dc-server-4", FaultKind::CpuRunaway, 15 * 60_000),
    ]
}

fn main() {
    let duration = 30 * 60_000; // half an hour of simulated time
    let tick = 60_000;

    println!("== agent grid over both sites ==");
    let mut builder = ManagementGrid::builder()
        .network(build_network(100))
        .collectors_per_site(2)
        .analyzer("pg-big", 4.0, ALL_SKILLS)
        .analyzer("pg-small-1", 1.0, ALL_SKILLS)
        .analyzer("pg-small-2", 1.0, ALL_SKILLS);
    for fault in incidents() {
        builder = builder.fault(fault);
    }
    let mut grid = builder.build();
    let report = grid.run(duration, tick);
    print!("{report}");

    // Distinct problems found (rule × device), the operator's view.
    let mut seen: Vec<(String, String)> = report
        .alerts
        .iter()
        .map(|a| (a.rule.clone(), a.device.clone()))
        .collect();
    seen.sort();
    seen.dedup();
    println!("\ndistinct findings ({}):", seen.len());
    for (rule, device) in &seen {
        println!("  {rule} @ {device}");
    }

    println!("\n== same scenario on the non-grid multi-agent baseline ==");
    let mut mas = MultiAgentSystem::new(build_network(100), 2);
    for fault in incidents() {
        mas = mas.with_fault(fault);
    }
    let site_reports = mas.run(duration, tick);
    for (site, site_report) in &site_reports {
        println!(
            "site {site}: {} records, {} alerts (siloed; no cross-site correlation possible)",
            site_report.records,
            site_report.alerts.len()
        );
    }
}
