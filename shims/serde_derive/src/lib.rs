//! Offline stand-in for `serde_derive` (see the note in
//! `shims/parking_lot`). The shim `serde` traits are pure markers, so
//! these derives only need the type's name: they scan the raw token
//! stream for the ident after `struct`/`enum`/`union` and emit an empty
//! impl — no `syn`/`quote` dependency, which matters because this
//! workspace builds without registry access.
//!
//! Limitations (checked against the workspace): no generic types, no
//! `#[serde(...)]` helper attributes.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a `struct`/`enum`/`union` item and
/// panics if a generic parameter list follows it.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tree) = tokens.next() {
        let TokenTree::Ident(word) = tree else {
            continue;
        };
        let word = word.to_string();
        if word != "struct" && word != "enum" && word != "union" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            panic!("serde shim derive: expected a type name after `{word}`");
        };
        if matches!(tokens.next(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            panic!(
                "serde shim derive: `{name}` is generic; the offline shim \
                 only supports non-generic types"
            );
        }
        return name.to_string();
    }
    panic!("serde shim derive: no struct/enum/union found in input");
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
