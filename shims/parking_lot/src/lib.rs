//! Offline stand-in for the `parking_lot` crate.
//!
//! The workspace builds in environments with no access to crates.io, so
//! the handful of external dependencies are replaced by local shims that
//! expose the same API subset over the standard library. This one wraps
//! [`std::sync::Mutex`] behind `parking_lot`'s poison-free interface:
//! `lock()` returns the guard directly instead of a `Result`, and a
//! poisoned mutex (a thread panicked while holding it) is transparently
//! recovered, matching `parking_lot`'s behaviour of not poisoning at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::TryLockError;

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; unlocks on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trips_values() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let _held = m.lock();
        assert!(m.try_lock().is_none());
    }
}
