//! Offline stand-in for the `crossbeam` crate (see the note in
//! `shims/parking_lot`): the [`channel`] module re-creates
//! `crossbeam::channel`'s unbounded MPSC channel over
//! [`std::sync::mpsc`]. Only the surface the workspace uses is provided:
//! `unbounded()`, cloneable [`channel::Sender`]s, and a
//! [`channel::Receiver`] with `recv`/`recv_timeout`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! Multi-producer, single-consumer unbounded channels.

    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// Every sender disconnected and the buffer is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("channel receive timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Sender::send`] when the receiver is gone;
    /// gives the message back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// The sending half of a channel; cheap to clone.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> Sender<T> {
        /// Queues a message; fails only when the receiver was dropped.
        pub fn send(&self, message: T) -> Result<(), SendError<T>> {
            self.inner.send(message).map_err(|e| SendError(e.0))
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a message if one is already queued.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn multi_producer_fifo_per_sender() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            tx.send(3).unwrap();
            let got = [rx.recv().unwrap(), rx.recv().unwrap(), rx.recv().unwrap()];
            assert_eq!(got, [1, 2, 3]);
        }

        #[test]
        fn recv_timeout_reports_timeout_then_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_to_dropped_receiver_errors_with_payload() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
