//! Offline stand-in for the `crossbeam` crate (see the note in
//! `shims/parking_lot`): the [`channel`] module re-creates
//! `crossbeam::channel`'s unbounded MPSC channel over
//! [`std::sync::mpsc`], and the [`deque`] module re-creates the
//! work-stealing `Injector`/`Worker`/`Stealer` trio over locked
//! [`std::collections::VecDeque`]s. Only the surface the workspace uses
//! is provided; the semantics (FIFO injector, per-worker queues, batch
//! stealing) match the real crate, the lock-free internals do not.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! Multi-producer, single-consumer unbounded channels.

    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// Every sender disconnected and the buffer is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("channel receive timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Sender::send`] when the receiver is gone;
    /// gives the message back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// The sending half of a channel; cheap to clone.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> Sender<T> {
        /// Queues a message; fails only when the receiver was dropped.
        pub fn send(&self, message: T) -> Result<(), SendError<T>> {
            self.inner.send(message).map_err(|e| SendError(e.0))
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a message if one is already queued.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn multi_producer_fifo_per_sender() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            tx.send(3).unwrap();
            let got = [rx.recv().unwrap(), rx.recv().unwrap(), rx.recv().unwrap()];
            assert_eq!(got, [1, 2, 3]);
        }

        #[test]
        fn recv_timeout_reports_timeout_then_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_to_dropped_receiver_errors_with_payload() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}

pub mod deque {
    //! Work-stealing deques: a shared FIFO [`Injector`], per-worker
    //! [`Worker`] queues, and [`Stealer`] handles that move work between
    //! them. API-compatible with `crossbeam::deque` for the operations
    //! the workspace uses (`new_fifo`, `push`, `pop`, `stealer`,
    //! `steal`, `steal_batch_and_pop`).

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race; try again. (The locked shim never
        /// actually returns this, but callers written against the real
        /// crate handle it.)
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }

        /// Whether this attempt should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// Whether the source was empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A global FIFO queue every worker can push to and steal from.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> std::fmt::Debug for Injector<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Injector")
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends a task at the back.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("injector lock").push_back(task);
        }

        /// Whether no tasks are queued right now.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector lock").is_empty()
        }

        /// Steals one task from the front.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector lock").pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Moves a batch of tasks (about half the queue) into `dest` and
        /// pops one of them.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut queue = self.queue.lock().expect("injector lock");
            let take = queue.len().div_ceil(2).min(32);
            if take == 0 {
                return Steal::Empty;
            }
            let mut grabbed: VecDeque<T> = queue.drain(..take).collect();
            drop(queue);
            let first = grabbed.pop_front().expect("take >= 1");
            let mut dest_queue = dest.queue.lock().expect("worker lock");
            dest_queue.extend(grabbed);
            Steal::Success(first)
        }
    }

    /// A worker-owned FIFO queue. Other threads reach it through
    /// [`Stealer`] handles.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> std::fmt::Debug for Worker<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Worker")
        }
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Appends a task at the back.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("worker lock").push_back(task);
        }

        /// Takes the next task from the front (FIFO order).
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("worker lock").pop_front()
        }

        /// Whether the queue is empty right now.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker lock").is_empty()
        }

        /// A handle other threads can steal from.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A handle for stealing tasks from another worker's queue.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> std::fmt::Debug for Stealer<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Stealer")
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the front of the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("stealer lock").pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Moves a batch from the victim into `dest` and pops one task.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut queue = self.queue.lock().expect("stealer lock");
            let take = queue.len().div_ceil(2).min(32);
            if take == 0 {
                return Steal::Empty;
            }
            let mut grabbed: VecDeque<T> = queue.drain(..take).collect();
            drop(queue);
            let first = grabbed.pop_front().expect("take >= 1");
            let mut dest_queue = dest.queue.lock().expect("worker lock");
            dest_queue.extend(grabbed);
            Steal::Success(first)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_is_fifo_and_stealable() {
            let w = Worker::new_fifo();
            w.push(1);
            w.push(2);
            w.push(3);
            let s = w.stealer();
            assert_eq!(s.steal(), Steal::Success(1));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), Some(3));
            assert_eq!(w.pop(), None);
            assert_eq!(s.steal(), Steal::Empty);
        }

        #[test]
        fn injector_batch_steal_moves_half() {
            let inj = Injector::new();
            for n in 0..10 {
                inj.push(n);
            }
            let w = Worker::new_fifo();
            assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
            // Half of 10 = 5 taken; one popped, four land in the worker.
            let mut local = Vec::new();
            while let Some(n) = w.pop() {
                local.push(n);
            }
            assert_eq!(local, vec![1, 2, 3, 4]);
            assert!(!inj.is_empty());
        }

        #[test]
        fn steal_across_threads_covers_every_task() {
            let inj = Arc::new(Injector::new());
            for n in 0..1000u64 {
                inj.push(n);
            }
            let total = Arc::new(Mutex::new(0u64));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let inj = Arc::clone(&inj);
                let total = Arc::clone(&total);
                handles.push(std::thread::spawn(move || {
                    let w = Worker::new_fifo();
                    let mut sum = 0u64;
                    loop {
                        let task = w.pop().or_else(|| loop {
                            match inj.steal_batch_and_pop(&w) {
                                Steal::Success(t) => break Some(t),
                                Steal::Empty => break None,
                                Steal::Retry => continue,
                            }
                        });
                        match task {
                            Some(t) => sum += t,
                            None => break,
                        }
                    }
                    *total.lock().unwrap() += sum;
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*total.lock().unwrap(), 999 * 1000 / 2);
        }
    }
}
