//! Offline stand-in for the `rand` crate (see the note in
//! `shims/parking_lot`). Provides a deterministic [`rngs::StdRng`] built
//! on the splitmix64 generator, seedable via [`SeedableRng::seed_from_u64`],
//! and the [`RngExt::random_range`] sampling the workspace's simulators
//! use. Not cryptographically secure — the simulation only needs cheap,
//! reproducible pseudo-randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of raw random 64-bit words.
pub trait RngCore {
    /// Produces the next 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The default deterministic generator (splitmix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): one 64-bit add plus
            // three xor-shift-multiply rounds; passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(word: u64) -> f64 {
    // 53 mantissa bits → uniform in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty f64 range");
        // Closed interval: scale by 2^-53 over the max mantissa value.
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty usize range");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty u64 range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

/// Convenience sampling methods available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&x));
            let y = rng.random_range(10.0..40.0);
            assert!((10.0..40.0).contains(&y));
            let n = rng.random_range(0..3usize);
            assert!(n < 3);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let hits = (0..64)
            .filter(|_| a.random_range(0..u64::MAX) == b.random_range(0..u64::MAX))
            .count();
        assert_eq!(hits, 0);
    }
}
