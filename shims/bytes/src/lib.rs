//! Offline stand-in for the `bytes` crate (see the note in
//! `shims/parking_lot`). Provides [`Bytes`] (a cheaply cloneable,
//! reference-counted immutable byte buffer that consumes from the front
//! via [`Buf`]) and [`BytesMut`] (a growable builder that freezes into
//! `Bytes`), plus the [`Buf`]/[`BufMut`] trait subset the workspace's
//! envelope codec relies on. All integers use network byte order, as in
//! the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Read access to a buffer of bytes, consumed from the front.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Discards the next `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let byte = self.chunk()[0];
        self.advance(1);
        byte
    }

    /// Consumes four bytes as a big-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than four bytes remain.
    fn get_u32(&mut self) -> u32 {
        let raw: [u8; 4] = self.chunk()[..4].try_into().expect("need 4 bytes");
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Consumes `len` bytes into a new [`Bytes`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Write access to a growable buffer of bytes.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a `u32` in big-endian order.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }
}

/// A cheaply cloneable, immutable, reference-counted byte buffer.
///
/// Cloning shares the underlying allocation; consuming via [`Buf`] only
/// moves this handle's start cursor.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Copies `src` into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes::from_vec(src.to_vec())
    }

    fn from_vec(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-buffer sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(..len);
        self.advance(len);
        out
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.iter() {
            for escaped in std::ascii::escape_default(byte) {
                write!(f, "{}", escaped as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes::from_vec(data)
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Bytes {
        Bytes::copy_from_slice(src)
    }
}

/// A unique, growable byte buffer; freeze it into [`Bytes`] when done.
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut { data: src.to_vec() }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(self), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get_round_trips_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(0xA61D_0001);
        buf.put_u8(7);
        buf.put_slice(b"net");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 8);
        assert_eq!(bytes.get_u32(), 0xA61D_0001);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.copy_to_bytes(3).to_vec(), b"net");
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slice_shares_without_copying_and_bounds_check() {
        let bytes = Bytes::copy_from_slice(b"abcdef");
        let mid = bytes.slice(2..5);
        assert_eq!(&mid[..], b"cde");
        assert_eq!(mid.slice(..0).len(), 0);
        assert_eq!(bytes.len(), 6);
    }

    #[test]
    fn consuming_one_handle_leaves_clones_intact() {
        let original = Bytes::copy_from_slice(&42u32.to_be_bytes());
        let mut cursor = original.clone();
        assert_eq!(cursor.get_u32(), 42);
        assert_eq!(cursor.remaining(), 0);
        assert_eq!(original.remaining(), 4);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut bytes = Bytes::copy_from_slice(b"xy");
        bytes.advance(3);
    }
}
