//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Some` from `inner` three times out of four,
/// `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn of_produces_both_variants() {
        let strat = of(Just(1u8));
        let mut rng = TestRng::from_seed(6);
        let draws: Vec<_> = (0..64).map(|_| strat.new_value(&mut rng)).collect();
        assert!(draws.contains(&None) && draws.contains(&Some(1)));
    }
}
