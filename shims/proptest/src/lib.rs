//! Offline stand-in for the `proptest` crate (see the note in
//! `shims/parking_lot`). Re-creates the strategy combinators, macros and
//! prelude the workspace's property tests use, over a deterministic
//! splitmix64 generator. Two deliberate simplifications versus the real
//! crate: failing cases are not shrunk (the failing case index and seed
//! are reported instead), and regex string strategies support only the
//! subset of syntax the tests use (character classes, `.`, literals and
//! `{m,n}`/`*`/`+`/`?` quantifiers).

#![forbid(unsafe_code)]

pub mod test_runner;

pub mod strategy;

pub mod arbitrary;

pub mod collection;

pub mod num;

pub mod option;

pub mod string;

/// Declares property tests: each `fn` runs `config.cases` times with
/// fresh strategy-drawn arguments, panicking (with the case index and
/// seed) on the first failing case. No shrinking is performed.
#[macro_export]
macro_rules! proptest {
    (@impl $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let name_hash = $crate::test_runner::hash_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let seed = $crate::test_runner::case_seed(name_hash, case);
                    let mut proptest_rng = $crate::test_runner::TestRng::from_seed(seed);
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(
                            &($strat),
                            &mut proptest_rng,
                        );
                    )+
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(error) = outcome {
                        ::core::panic!(
                            "property '{}' failed at case {}/{} (seed {:#018x}): {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            seed,
                            error,
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl $crate::test_runner::ProptestConfig::default();
            $($rest)*
        );
    };
}

/// Uniform choice between strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test, failing the current case
/// (not the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+),
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            left,
            ::std::format!($($fmt)+),
        );
    }};
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` module alias used in strategy expressions.
        pub use crate::collection;
        pub use crate::num;
        pub use crate::option;
    }
}
