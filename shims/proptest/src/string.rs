//! Regex-subset string generation backing `"pattern"` strategies.
//!
//! Supported syntax — the subset the workspace's tests use:
//! character classes `[a-z0-9-]` (ranges, literals, trailing `-`),
//! the any-char dot `.`, literal characters, and the quantifiers
//! `{m}`, `{m,n}`, `*`, `+`, `?`. Anything else panics loudly rather
//! than silently generating the wrong language.

use crate::test_runner::TestRng;

/// Characters `.` can produce: printable ASCII plus a few multi-byte
/// code points so UTF-8 handling gets exercised.
const DOT_EXTRAS: [char; 4] = ['é', 'λ', '→', '名'];

#[derive(Debug, Clone)]
enum Atom {
    /// Inclusive character ranges; single chars are degenerate ranges.
    Class(Vec<(char, char)>),
    /// `.` — any printable character.
    Any,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// A compiled pattern ready to generate strings.
#[derive(Debug, Clone)]
pub struct StringPattern {
    pieces: Vec<Piece>,
}

impl StringPattern {
    /// Compiles `pattern`, panicking on unsupported syntax.
    pub fn compile(pattern: &str) -> StringPattern {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let (class, next) = parse_class(&chars, i + 1, pattern);
                    i = next;
                    Atom::Class(class)
                }
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '\\' => {
                    let escaped = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| unsupported(pattern, "trailing backslash"));
                    i += 2;
                    Atom::Class(vec![(escaped, escaped)])
                }
                c @ ('(' | ')' | '|' | '^' | '$') => {
                    unsupported(pattern, &format!("metacharacter `{c}`"))
                }
                c => {
                    i += 1;
                    Atom::Class(vec![(c, c)])
                }
            };
            let (min, max, next) = parse_quantifier(&chars, i, pattern);
            i = next;
            pieces.push(Piece { atom, min, max });
        }
        StringPattern { pieces }
    }

    /// Draws one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let count = rng.usize_in(piece.min, piece.max + 1);
            for _ in 0..count {
                out.push(match &piece.atom {
                    Atom::Class(ranges) => pick_from_class(ranges, rng),
                    Atom::Any => pick_any(rng),
                });
            }
        }
        out
    }
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<(char, char)>, usize) {
    if chars.get(i) == Some(&'^') {
        unsupported(pattern, "negated character class");
    }
    let mut ranges = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = chars[i];
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
            let hi = chars[i + 2];
            assert!(lo <= hi, "inverted class range in `{pattern}`");
            ranges.push((lo, hi));
            i += 3;
        } else {
            ranges.push((lo, lo));
            i += 1;
        }
    }
    if i >= chars.len() {
        unsupported(pattern, "unterminated character class");
    }
    (ranges, i + 1)
}

fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| unsupported(pattern, "unterminated `{` quantifier"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier min"),
                    hi.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            };
            assert!(min <= max, "inverted quantifier in `{pattern}`");
            (min, max, close + 1)
        }
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        Some('?') => (0, 1, i + 1),
        _ => (1, 1, i),
    }
}

fn pick_from_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
        .sum();
    let mut index = rng.below(total as u64) as u32;
    for &(lo, hi) in ranges {
        let size = hi as u32 - lo as u32 + 1;
        if index < size {
            return char::from_u32(lo as u32 + index).expect("class char");
        }
        index -= size;
    }
    unreachable!("index within total class size")
}

fn pick_any(rng: &mut TestRng) -> char {
    // Printable ASCII 0x20..=0x7E, with a small chance of a multi-byte
    // character.
    if rng.below(16) == 0 {
        DOT_EXTRAS[rng.usize_in(0, DOT_EXTRAS.len())]
    } else {
        char::from_u32(0x20 + rng.below(0x7F - 0x20) as u32).expect("printable ascii")
    }
}

fn unsupported(pattern: &str, what: &str) -> ! {
    panic!("proptest shim: unsupported regex feature ({what}) in `{pattern}`")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_quantifier_respects_bounds_and_alphabet() {
        let pattern = StringPattern::compile("[a-z][a-z0-9-]{0,12}");
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let s = pattern.generate(&mut rng);
            assert!((1..=13).contains(&s.chars().count()), "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn literals_and_dot_compose() {
        let pattern = StringPattern::compile("[a-z]{1,8}@[a-z]{1,8}");
        let mut rng = TestRng::from_seed(4);
        for _ in 0..50 {
            let s = pattern.generate(&mut rng);
            let (local, host) = s.split_once('@').expect("one @");
            assert!(!local.is_empty() && !host.is_empty());
        }
        let dot = StringPattern::compile(".{0,20}");
        for _ in 0..50 {
            assert!(dot.generate(&mut rng).chars().count() <= 20);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex feature")]
    fn alternation_is_rejected() {
        StringPattern::compile("a|b");
    }
}
