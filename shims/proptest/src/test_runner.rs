//! Test execution support: configuration, the deterministic generator
//! and the error type `prop_assert!` returns.

use std::fmt;

/// Per-test configuration, set with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the whole-workspace
        // suite quick while still exercising each invariant broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by the `prop_assert*` macros inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed-case error with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 generator driving all strategies.
///
/// Seeded from the test's full path and the case index, so every run of
/// the suite explores the same cases — failures are reproducible without
/// a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash of a test path, used to derive per-test seeds.
pub fn hash_name(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Seed for one case of one test.
pub fn case_seed(name_hash: u64, case: u32) -> u64 {
    name_hash ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)
}
