//! The [`Strategy`] trait and core combinators.

use std::ops::Range;
use std::rc::Rc;

use crate::string::StringPattern;
use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike the real crate there is no value tree / shrinking machinery:
/// `new_value` draws a single concrete value from the deterministic
/// generator.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Generates a value, then uses it to pick a second strategy to draw
    /// the final value from.
    fn prop_flat_map<S, F>(self, make: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, make }
    }

    /// Builds a recursive strategy: `self` generates leaves and `branch`
    /// wraps an inner strategy into composites. `depth` bounds the
    /// nesting; the `_desired_size`/`_expected_branch_size` hints of the
    /// real API are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            current = Union::new(vec![leaf.clone(), branch(current).boxed()]).boxed();
        }
        current
    }

    /// Erases the concrete strategy type behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A cloneable, type-erased strategy handle.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.new_value(rng)
    }
}

/// Always produces a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies of one value type; what
/// `prop_oneof!` expands to.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let index = rng.usize_in(0, self.options.len());
        self.options[index].new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    make: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.make)(self.source.new_value(rng)).new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                // Widen through i128 so signed spans can't overflow.
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String literals act as regex-subset strategies producing `String`s.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        // Compiling per draw keeps the impl stateless; patterns in the
        // test suite are tiny so this is not a bottleneck.
        StringPattern::compile(self).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident $index:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$index.new_value(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// A `Vec` of strategies generates one value per element, in order.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds_and_are_deterministic() {
        let mut a = TestRng::from_seed(5);
        let mut b = TestRng::from_seed(5);
        for _ in 0..200 {
            let x = (-100i32..100).new_value(&mut a);
            assert!((-100..100).contains(&x));
            assert_eq!(x, (-100i32..100).new_value(&mut b));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let mut rng = TestRng::from_seed(9);
        let strat = (0u8..10).prop_recursive(4, 64, 8, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(|v| v.len() as u8)
        });
        for _ in 0..100 {
            let _ = strat.new_value(&mut rng);
        }
    }

    #[test]
    fn vec_of_strategies_draws_each_element() {
        let mut rng = TestRng::from_seed(1);
        let strategies: Vec<_> = (0..5).map(Just).collect();
        assert_eq!(strategies.new_value(&mut rng), vec![0, 1, 2, 3, 4]);
    }
}
