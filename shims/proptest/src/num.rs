//! Numeric strategies beyond plain ranges.

pub mod f64 {
    //! `f64` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for normal (finite, non-zero, non-subnormal) `f64`s of
    /// either sign, spanning the full exponent range.
    #[derive(Debug, Clone, Copy)]
    pub struct Normal;

    /// Normal floats — mirrors `proptest::num::f64::NORMAL`.
    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let word = rng.next_u64();
            let sign = word & (1 << 63);
            let mantissa = word & ((1 << 52) - 1);
            // Biased exponent 1..=2046 excludes zero/subnormals (0) and
            // infinity/NaN (2047), leaving exactly the normal floats.
            let exponent = 1 + rng.below(2046);
            f64::from_bits(sign | (exponent << 52) | mantissa)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn normal_floats_are_normal_and_signed() {
            let mut rng = TestRng::from_seed(8);
            let mut negatives = 0;
            for _ in 0..500 {
                let x = NORMAL.new_value(&mut rng);
                assert!(x.is_normal(), "{x}");
                if x < 0.0 {
                    negatives += 1;
                }
            }
            assert!(negatives > 100, "sign bit should be uniform");
        }
    }
}
