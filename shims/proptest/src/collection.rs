//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Size bounds for a generated collection (half-open, like `0..6`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.min, self.max_exclusive)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

/// Strategy for `Vec`s whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for `BTreeMap`s with `size.pick()` distinct keys (fewer only
/// if the key space is too small to provide them).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut map = BTreeMap::new();
        // Duplicate keys collapse; bound the retries so tiny key spaces
        // still terminate.
        let mut attempts = 0;
        while map.len() < target && attempts < target * 10 + 16 {
            map.insert(self.key.new_value(rng), self.value.new_value(rng));
            attempts += 1;
        }
        map
    }
}

/// Strategy for `BTreeSet`s, with the same size semantics as
/// [`btree_map`].
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 10 + 16 {
            set.insert(self.element.new_value(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn vec_lengths_cover_the_range() {
        let strat = vec(Just(0u8), 0..4);
        let mut rng = TestRng::from_seed(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.new_value(&mut rng).len()] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn btree_set_tolerates_tiny_key_spaces() {
        // Only 3 possible values but up to 10 requested: must terminate.
        let strat = btree_set(0u8..3, 1..10);
        let mut rng = TestRng::from_seed(12);
        for _ in 0..50 {
            let s = strat.new_value(&mut rng);
            assert!(!s.is_empty() && s.len() <= 3);
        }
    }
}
