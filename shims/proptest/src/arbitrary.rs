//! The `any::<T>()` entry point for types with a canonical strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a default full-range strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// The default strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy for a primitive; `any::<T>()` resolves to this.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T> {
    marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_primitive {
    ($($ty:ty => $draw:expr),+ $(,)?) => {$(
        impl Strategy for AnyPrimitive<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                let draw: fn(&mut TestRng) -> $ty = $draw;
                draw(rng)
            }
        }

        impl Arbitrary for $ty {
            type Strategy = AnyPrimitive<$ty>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { marker: std::marker::PhantomData }
            }
        }
    )+};
}

arbitrary_primitive! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i8 => |rng| rng.next_u64() as i8,
    i16 => |rng| rng.next_u64() as i16,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
    isize => |rng| rng.next_u64() as isize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_produces_both_values() {
        let strat = any::<bool>();
        let mut rng = TestRng::from_seed(2);
        let draws: Vec<bool> = (0..64).map(|_| strat.new_value(&mut rng)).collect();
        assert!(draws.contains(&true) && draws.contains(&false));
    }

    #[test]
    fn any_i64_covers_negative_values() {
        let strat = any::<i64>();
        let mut rng = TestRng::from_seed(3);
        assert!((0..64).any(|_| strat.new_value(&mut rng) < 0));
    }
}
