//! Offline stand-in for the `serde` crate (see the note in
//! `shims/parking_lot`). The workspace derives `Serialize`/`Deserialize`
//! on its data types for downstream consumers but never serializes
//! in-tree (there is no serde_json here), so the traits are pure markers
//! and the `derive` feature emits empty impls. Swapping the real serde
//! back in requires no source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker for types that can be serialized.
///
/// The real trait's `serialize` method is deliberately absent: nothing
/// in this workspace drives serialization, and a marker keeps the no-op
/// derive trivial.
pub trait Serialize {}

/// Marker for types that can be deserialized from borrowed data with
/// lifetime `'de`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
