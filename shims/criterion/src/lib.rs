//! Offline stand-in for the `criterion` crate (see the note in
//! `shims/parking_lot`). Keeps the `criterion_group!`/`criterion_main!`
//! bench-target structure compiling and useful without registry access:
//!
//! - under `cargo bench` (cargo passes `--bench`) each benchmark is
//!   calibrated and timed, reporting mean wall-clock time per iteration —
//!   no statistical analysis, plots or saved baselines;
//! - under `cargo test` (no `--bench` flag) each benchmark body runs
//!   exactly once as a smoke test, so broken benches fail the suite fast;
//! - like real criterion, a positional argument is a substring filter:
//!   `cargo bench --bench foo -- some_group` runs only the benchmarks
//!   whose full label contains `some_group`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility, the
/// shim times every invocation individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Medium per-iteration inputs.
    MediumInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo test`: run each body once, no timing.
    Smoke,
    /// `cargo bench`: calibrate and measure.
    Measure,
}

/// The benchmark harness entry point, passed to every target function.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut bench = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg == "--bench" {
                bench = true;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        Criterion {
            mode: if bench { Mode::Measure } else { Mode::Smoke },
            filter,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self.mode, self.filter.as_deref(), name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            mode: self.mode,
            criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    mode: Mode,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes its own sampling.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim sizes its own sampling.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            self.mode,
            self.criterion.filter.as_deref(),
            &format!("{}/{}", self.name, id.label),
            f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            self.mode,
            self.criterion.filter.as_deref(),
            &format!("{}/{}", self.name, id.label),
            |b| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one(mode: Mode, filter: Option<&str>, label: &str, mut f: impl FnMut(&mut Bencher)) {
    if let Some(filter) = filter {
        if !label.contains(filter) {
            return;
        }
    }
    let mut bencher = Bencher {
        mode,
        mean_ns: None,
    };
    f(&mut bencher);
    if mode == Mode::Measure {
        match bencher.mean_ns {
            Some(mean) => println!("{label:<50} time: [{}]", format_ns(mean)),
            None => println!("{label:<50} (no measurement recorded)"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Total wall-clock budget spent measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(250);

/// Runs the benchmark body handed to it; records the mean iteration
/// time when measuring.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Times `routine`, whole-call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            return;
        }
        // Geometric ramp-up doubles the batch until the time budget is
        // spent, so per-iteration costs from ~1 ns to ~1 s all get a
        // usable estimate.
        let mut batch = 1u64;
        let mut total_iters = 0u64;
        let mut total_time = Duration::ZERO;
        while total_time < MEASURE_BUDGET {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total_time += start.elapsed();
            total_iters += batch;
            batch = batch.saturating_mul(2);
        }
        self.mean_ns = Some(total_time.as_nanos() as f64 / total_iters as f64);
    }

    /// Times `routine` per call, excluding `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.mode == Mode::Smoke {
            black_box(routine(setup()));
            return;
        }
        let mut total_iters = 0u64;
        let mut total_time = Duration::ZERO;
        while total_time < MEASURE_BUDGET {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_time += start.elapsed();
            total_iters += 1;
        }
        self.mean_ns = Some(total_time.as_nanos() as f64 / total_iters as f64);
    }
}

/// Bundles target functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main()` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_mode_records_a_positive_mean() {
        let mut bencher = Bencher {
            mode: Mode::Measure,
            mean_ns: None,
        };
        bencher.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(bencher.mean_ns.unwrap() > 0.0);
    }

    #[test]
    fn smoke_mode_runs_once_without_measuring() {
        let mut calls = 0;
        let mut bencher = Bencher {
            mode: Mode::Smoke,
            mean_ns: None,
        };
        bencher.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(bencher.mean_ns.is_none());
    }

    #[test]
    fn filter_skips_non_matching_labels() {
        let mut calls = 0;
        run_one(Mode::Smoke, Some("fanout"), "fig2_grid/pool/64", |b| {
            b.iter(|| calls += 1)
        });
        assert_eq!(calls, 0);
        run_one(Mode::Smoke, Some("grid"), "fig2_grid/pool/64", |b| {
            b.iter(|| calls += 1)
        });
        assert_eq!(calls, 1);
        run_one(Mode::Smoke, None, "fig2_grid/pool/64", |b| {
            b.iter(|| calls += 1)
        });
        assert_eq!(calls, 2);
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert_eq!(format_ns(12.5), "12.50 ns");
        assert_eq!(format_ns(12_500.0), "12.500 µs");
        assert_eq!(format_ns(12_500_000.0), "12.500 ms");
    }
}
