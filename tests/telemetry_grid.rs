//! Integration tests for the telemetry subsystem on the live grid:
//! conversation tracing across the four grid stages, metrics export,
//! and telemetry-driven ("live") resource profiles.

use agentgrid_suite::net::{Device, DeviceKind, FaultKind, Network, ScheduledFault};
use agentgrid_suite::platform::{Runtime, Telemetry};
use agentgrid_suite::telemetry::measured_load;
use agentgrid_suite::ManagementGrid;

const ALL_SKILLS: [&str; 8] = [
    "cpu",
    "memory",
    "disk",
    "interface",
    "process",
    "system",
    "other",
    "correlation",
];

fn small_network() -> Network {
    let mut net = Network::new();
    for i in 0..3 {
        net.add_device(
            Device::builder(format!("srv-{i}"), DeviceKind::Server)
                .site("hq")
                .seed(i)
                .build(),
        );
    }
    net
}

/// On the threaded runtime, a collector's poll must be traceable hop by
/// hop through the whole pipeline: the batch lands on the classifier,
/// the classifier notifies the root, the root brokers to an analyzer,
/// and the analyzer reports to the interface — all within one
/// conversation, linked by parent spans.
#[test]
fn threaded_grid_trace_covers_collector_to_interface() {
    let telemetry = Telemetry::new();
    let mut grid = ManagementGrid::builder()
        .network(small_network())
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        // A fault makes the analyzer raise an alert, completing the
        // pipeline's last hop into the interface grid.
        .fault(ScheduledFault::from("srv-0", FaultKind::CpuRunaway, 60_000))
        .telemetry(telemetry.clone())
        .build_threaded();
    grid.run(6 * 60_000, 60_000);

    let tracer = telemetry.tracer();
    let full_pipeline = tracer.conversations().into_iter().find(|conversation| {
        let spans = tracer.conversation_spans(conversation);
        let hit = |agent: &str| spans.iter().any(|s| s.receiver.starts_with(agent));
        hit("classifier@") && hit("pg-root@") && hit("analyzer-pg-1@") && hit("interface@")
    });
    let Some(conversation) = full_pipeline else {
        panic!(
            "no conversation covers all four hops; conversations: {:?}",
            tracer.conversations().len()
        );
    };

    // The hops must be causally chained, not merely co-grouped: walking
    // parents from the interface hop must pass through the analyzer,
    // root and classifier hops back to the parentless collector batch.
    let spans = tracer.conversation_spans(&conversation);
    let span_of = |agent: &str| {
        spans
            .iter()
            .find(|s| s.receiver.starts_with(agent))
            .unwrap_or_else(|| panic!("no span to {agent}"))
    };
    let mut chain = Vec::new();
    let mut current = Some(span_of("interface@").id);
    while let Some(id) = current {
        let span = spans
            .iter()
            .find(|s| s.id == id)
            .expect("parent in conversation");
        chain.push(span.receiver.clone());
        current = span.parent;
    }
    assert!(
        chain.len() >= 4,
        "interface hop must chain back through analyzer, root and classifier: {chain:?}"
    );
    assert!(chain[1].starts_with("analyzer-pg-1@"), "{chain:?}");
    assert!(
        chain[chain.len() - 1].starts_with("classifier@"),
        "{chain:?}"
    );

    // Delivery metadata is filled in along the way.
    let classifier_hop = span_of("classifier@");
    assert_eq!(classifier_hop.container.as_deref(), Some("clg"));
    assert!(classifier_hop.delivered_ms.is_some());
    assert!(classifier_hop.handled_ms.is_some());

    // The rendered tree shows the same chain, indented.
    let tree = telemetry.tracer().render_tree(&conversation);
    assert!(tree.contains("classifier@"), "{tree}");
    assert!(tree.contains("interface@"), "{tree}");
}

/// The deterministic grid exports non-zero traffic for every stage in
/// both formats.
#[test]
fn grid_exports_nonzero_counters_for_every_stage() {
    let telemetry = Telemetry::new();
    let mut grid = ManagementGrid::builder()
        .network(small_network())
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .fault(ScheduledFault::from("srv-0", FaultKind::CpuRunaway, 60_000))
        .telemetry(telemetry.clone())
        .build();
    grid.run(6 * 60_000, 60_000);

    let snapshot = telemetry.snapshot();
    for stage in ["collector", "classifier", "root", "analyzer", "interface"] {
        let count = snapshot
            .counter("agentgrid_stage_messages_total", &[("stage", stage)])
            .unwrap_or(0);
        assert!(count > 0, "stage `{stage}` recorded no traffic");
    }
    assert!(telemetry.delivered_total() > 0);
    assert_eq!(telemetry.dead_letter_total(), 0);

    let prom = telemetry.prometheus();
    assert!(prom.contains("agentgrid_stage_messages_total{stage=\"collector\"}"));
    assert!(prom.contains("agentgrid_delivery_latency_ms_bucket"));
    let json = telemetry.json();
    assert!(json.contains("\"agentgrid_stage_messages_total\""));
    assert!(json.contains("\"stage\":\"analyzer\""));

    // Broker outcomes ride along with the runtime counters.
    let assigned = snapshot
        .counter("agentgrid_broker_tasks_total", &[("outcome", "assigned")])
        .unwrap_or(0);
    assert!(assigned > 0, "root brokered nothing");
}

/// The recovery layer's metric families — retry counters, the
/// re-brokered counter and the per-container liveness gauges — must
/// track the run's recovery statistics exactly, and survive the
/// Prometheus text export (including label-value escaping).
#[test]
fn recovery_metrics_track_chaos_and_export_cleanly() {
    use agentgrid_suite::core::chaos::ChaosPlan;
    use agentgrid_suite::core::recovery::RecoveryConfig;

    let telemetry = Telemetry::new();
    let plan = ChaosPlan::new()
        .crash_at(2 * 60_000, "pg-1")
        .restart_at(7 * 60_000, "pg-1");
    let mut grid = ManagementGrid::builder()
        .network(small_network())
        .analyzer("pg-1", 4.0, ALL_SKILLS)
        .analyzer("pg-2", 1.0, ALL_SKILLS)
        .recovery(RecoveryConfig::seeded(5))
        .chaos(plan)
        .telemetry(telemetry.clone())
        .build();
    let report = grid.run(15 * 60_000, 60_000);
    assert!(
        !report.rebrokered.is_empty(),
        "the crash must force re-brokering for the metrics to witness"
    );

    let snapshot = telemetry.snapshot();
    // Counters mirror the report's recovery statistics one-to-one.
    assert_eq!(
        snapshot.counter("agentgrid_retries_total", &[("component", "broker")]),
        Some(report.retries),
        "broker retry counter must match the run's retry count"
    );
    assert_eq!(
        snapshot.counter("agentgrid_rebrokered_tasks_total", &[]),
        Some(report.rebrokered.len() as u64),
    );
    // Collector retries ride the same family under their own label, so
    // the two components never collide.
    let collector_retries = snapshot
        .counter("agentgrid_retries_total", &[("component", "collector")])
        .unwrap_or(0);
    assert!(collector_retries <= report.retries + collector_retries);
    // Liveness gauges exist for both containers with a valid encoding;
    // by the end of the run both are back to alive (0).
    for container in ["pg-1", "pg-2"] {
        let v = snapshot
            .gauge("agentgrid_container_liveness", &[("container", container)])
            .unwrap_or_else(|| panic!("no liveness gauge for {container}"));
        assert!((0..=2).contains(&v), "{container} gauge out of range: {v}");
        assert_eq!(v, 0, "{container} must be alive again at the horizon");
    }

    // The families render in Prometheus text format…
    let prom = telemetry.prometheus();
    assert!(prom.contains("agentgrid_retries_total{component=\"broker\"}"));
    assert!(prom.contains("agentgrid_rebrokered_tasks_total"));
    assert!(prom.contains("agentgrid_container_liveness{container=\"pg-1\"}"));
    // …and a hostile container name is escaped per the text-format spec
    // (backslash, double quote, newline).
    telemetry
        .registry()
        .gauge(
            "agentgrid_container_liveness",
            &[("container", "pg\\3 \"ha\"\nx")],
        )
        .set(2);
    let prom = telemetry.prometheus();
    assert!(
        prom.contains("agentgrid_container_liveness{container=\"pg\\\\3 \\\"ha\\\"\\nx\"} 2"),
        "escaped liveness gauge missing from: {prom}"
    );
}

/// Attaching a telemetry sink (live profiles off) must not perturb the
/// deterministic grid: the runs are byte-for-byte identical.
#[test]
fn telemetry_attachment_preserves_determinism() {
    let run = |with_telemetry: bool| {
        let mut builder = ManagementGrid::builder()
            .network(small_network())
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS);
        if with_telemetry {
            builder = builder.telemetry(Telemetry::new());
        }
        let mut grid = builder.build();
        grid.run(6 * 60_000, 60_000)
    };
    let bare = run(false);
    let observed = run(true);
    assert_eq!(bare.records_stored, observed.records_stored);
    assert_eq!(bare.assignments, observed.assignments);
    assert_eq!(bare.messages_delivered, observed.messages_delivered);
    assert_eq!(bare.alerts.len(), observed.alerts.len());
}

/// With live profiles on, the directory's load figures are the measured
/// ones — [`measured_load`] over each container's telemetry — so
/// `KnowledgeCapacityIdle` ranks by observed idleness, and the pipeline
/// still completes all its work.
#[test]
fn live_profiles_feed_measured_load_into_the_directory() {
    let telemetry = Telemetry::new();
    let mut grid = ManagementGrid::builder()
        .network(small_network())
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .telemetry(telemetry.clone())
        .live_profiles(true)
        .build();
    let tick_ms = 60_000u64;
    let report = grid.run(tick_ms, tick_ms); // exactly one tick

    // After a single tick the refresh window started from zero, so the
    // directory load must equal measured_load over the cumulative stats.
    let window_ns = tick_ms * 1_000_000;
    let stats: Vec<_> = telemetry
        .container_stats()
        .into_iter()
        .filter(|s| s.container.starts_with("pg-1"))
        .collect();
    assert_eq!(stats.len(), 1);
    let expected = measured_load(stats[0].mailbox_depth, stats[0].busy_ns, window_ns);
    let actual = grid.platform_mut().with_df(|df| {
        df.container_profile("pg-1")
            .expect("analyzer registered")
            .load
    });
    assert!(
        (actual - expected).abs() < 1e-9,
        "directory load {actual} must be the measured value {expected}"
    );

    // Brokering keeps working off measured profiles.
    let report2 = grid.run(5 * 60_000, tick_ms);
    assert!(report.records_stored <= report2.records_stored);
    assert!(!report2.assignments.is_empty());
    assert_eq!(report2.unassigned, 0);
    assert_eq!(report2.tasks_completed, report2.assignments.len() as u64);
}
