//! Integration tests for the interface grid's feedback channel (rule
//! learning at runtime) and mobility-driven rebalancing.

use agentgrid_suite::core::mobility::Rebalancer;
use agentgrid_suite::core::ontology::ResourceProfile;
use agentgrid_suite::net::{Device, DeviceKind, Network};
use agentgrid_suite::ManagementGrid;

const ALL_SKILLS: [&str; 8] = [
    "cpu",
    "memory",
    "disk",
    "interface",
    "process",
    "system",
    "other",
    "correlation",
];

fn network(devices: usize, seed: u64) -> Network {
    let mut net = Network::new();
    for d in 0..devices {
        net.add_device(
            Device::builder(format!("dev-{d}"), DeviceKind::Server)
                .site("hq")
                .seed(seed + d as u64)
                .build(),
        );
    }
    net
}

#[test]
fn taught_rules_fire_and_replace_by_name() {
    let mut grid = ManagementGrid::builder()
        .network(network(2, 7))
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .build();
    grid.run(2 * 60_000, 60_000);

    // Teach a very chatty rule.
    grid.teach_rule(
        r#"rule "ops-note" { when procs(device: ?d, value: ?v) if ?v > 0 then emit info ?d "procs ?v" }"#,
    );
    let with_rule = grid.run(3 * 60_000, 60_000);
    let fired = with_rule
        .alerts
        .iter()
        .filter(|a| a.rule == "ops-note")
        .count();
    assert!(fired > 0, "taught rule must fire");

    // Re-teach the same rule name with an impossible guard: it must
    // *replace* the old body, silencing it.
    grid.teach_rule(
        r#"rule "ops-note" { when procs(device: ?d, value: ?v) if ?v < 0 then emit info ?d "never" }"#,
    );
    let alerts_before = grid.alerts().len();
    grid.run(3 * 60_000, 60_000);
    let new_notes = grid.alerts()[alerts_before..]
        .iter()
        .filter(|a| a.rule == "ops-note")
        .count();
    assert_eq!(new_notes, 0, "replaced rule must stop firing");
}

#[test]
fn malformed_taught_rule_is_ignored_gracefully() {
    let mut grid = ManagementGrid::builder()
        .network(network(1, 9))
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .build();
    grid.teach_rule("rule \"broken { this is not the dsl");
    // The grid keeps running and default rules still work.
    let report = grid.run(3 * 60_000, 60_000);
    assert!(report.records_stored > 0);
    assert_eq!(report.dead_letters, 0);
}

#[test]
fn rebalancer_moves_analyzer_to_spare_and_work_follows() {
    let mut grid = ManagementGrid::builder()
        .network(network(4, 21))
        .collectors_per_site(2)
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .build();
    // A spare (faster) container joins with a profile but no agent.
    grid.platform_mut().add_container("spare");
    grid.platform_mut()
        .df_mut()
        .register_container(ResourceProfile::new("spare", 4.0, 1.0, 8192, ALL_SKILLS));

    let before = grid.run(4 * 60_000, 60_000);
    assert!(
        !before.tasks_per_container().contains_key("spare"),
        "no analyzer on the spare yet → no tasks may go there"
    );

    // Force a migration regardless of current load figures.
    let rebalancer = Rebalancer {
        high_watermark: 0.0,
        low_watermark: 1.0,
    };
    let migrations = rebalancer.rebalance(grid.platform_mut());
    assert_eq!(migrations.len(), 1);
    assert_eq!(migrations[0].from, "pg-1");
    assert_eq!(migrations[0].to, "spare");

    let after = grid.run(4 * 60_000, 60_000);
    let new_assignments = &after.assignments[before.assignments.len()..];
    assert!(!new_assignments.is_empty());
    assert!(
        new_assignments.iter().all(|(_, c)| c == "spare"),
        "after migration all work must flow to the spare: {new_assignments:?}"
    );
    assert_eq!(after.unassigned, 0);
    assert_eq!(after.dead_letters, 0, "migration must not lose messages");
}

/// Migration mid-scenario while the network adversary is active: an
/// analyzer moves to a spare container in the middle of a seeded
/// loss/duplication/partition plan with reliable delivery on. No task
/// or message may be lost across the move — retransmit-parked traffic
/// addressed to the migrating agent must follow it to its new
/// container — and the whole run (chaos, migration, recovery) must be
/// bit-identical when replayed with the same seed.
#[test]
fn migration_under_network_adversary_loses_nothing_and_replays_identically() {
    use agentgrid_suite::core::chaos::ChaosPlan;
    use agentgrid_suite::core::recovery::RecoveryConfig;
    use agentgrid_suite::platform::ReliabilityConfig;

    let seed = 5u64;
    let half = 8 * 60_000;
    let containers: Vec<String> = ["pg-1", "pg-2", "pg-root-ct", "clg", "cg-hq"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let plan = ChaosPlan::seeded_net(seed, &containers, 2 * half);
    assert!(!plan.is_empty());
    let run_once = || {
        let mut grid = ManagementGrid::builder()
            .network(network(4, 21))
            .collectors_per_site(2)
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS)
            .recovery(RecoveryConfig::seeded(seed))
            .net_adversary(seed)
            .reliability(ReliabilityConfig::seeded(seed))
            .chaos(plan.clone())
            .build();
        grid.run(half, 60_000);
        // The spare joins mid-scenario — profile, container and a
        // fresh heartbeat (recovery's liveness sweep deregisters
        // containers that never beat; an agentless spare only starts
        // beating once the analyzer moves in).
        grid.platform_mut().add_container("spare");
        grid.platform_mut()
            .df_mut()
            .register_container(ResourceProfile::new("spare", 4.0, 1.0, 8192, ALL_SKILLS));
        grid.platform_mut().df_mut().record_heartbeat("spare", half);
        // Force a migration regardless of current load figures.
        let rebalancer = Rebalancer {
            high_watermark: 0.0,
            low_watermark: 1.0,
        };
        let migrations = rebalancer.rebalance(grid.platform_mut());
        let report = grid.run(half, 60_000);
        (migrations, report)
    };
    let (migrations, report) = run_once();
    assert_eq!(migrations.len(), 1, "one analyzer moves to the spare");
    assert_eq!(migrations[0].to, "spare");

    let lost = report.lost_tasks();
    assert!(lost.is_empty(), "tasks lost across the migration: {lost:?}");
    assert_eq!(report.unassigned, 0);
    assert!(
        report.tasks_per_container().contains_key("spare"),
        "work must follow the migrated analyzer: {:?}",
        report.tasks_per_container()
    );
    let net = report.net.expect("adversary configured");
    assert!(
        net.dropped + net.partition_dropped + net.duplicated > 0,
        "the adversary must actually interfere with the migration run"
    );

    // Same seed, same everything: migration under the adversary is as
    // reproducible as the rest of the simulation.
    let (again_migrations, again) = run_once();
    assert_eq!(migrations, again_migrations);
    assert_eq!(report.render(), again.render());
    assert_eq!(report.assignments, again.assignments);
    assert_eq!(report.completed_ids, again.completed_ids);
    assert_eq!(report.net, again.net);
}

#[test]
fn knowledge_base_merge_shares_rules_across_sites() {
    use agentgrid_suite::rules::{parse_rules, KnowledgeBase};
    // The paper's "shared knowledge" advantage: merging two sites' rule
    // bases yields the union, with name collisions resolved by the
    // newest version.
    let mut site_a = KnowledgeBase::from_rules(
        parse_rules(
            r#"rule "common" salience 1 { when x(v: ?v) }
               rule "a-only" { when y(v: ?v) }"#,
        )
        .unwrap(),
    );
    let site_b = KnowledgeBase::from_rules(
        parse_rules(
            r#"rule "common" salience 9 { when x(v: ?v) }
               rule "b-only" { when z(v: ?v) }"#,
        )
        .unwrap(),
    );
    site_a.absorb(site_b);
    assert_eq!(site_a.len(), 3);
    assert_eq!(site_a.get("common").unwrap().salience_value(), 9);
    assert!(site_a.get("a-only").is_some());
    assert!(site_a.get("b-only").is_some());
}
