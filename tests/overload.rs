//! Property tests for the overload-protection layer: the alert
//! exemption of [`OverflowPolicy::ShedByPriority`] must hold for every
//! burst shape, mailbox cap and container count — an alert-class
//! message is deferred past the cap, never dropped.

use agentgrid_suite::acl::{AclMessage, AgentId, Performative, Value};
use agentgrid_suite::platform::{
    Agent, MailboxConfig, MessageClass, OverflowPolicy, Platform, Runtime,
};
use proptest::prelude::*;

struct Sink;
impl Agent for Sink {}

/// xorshift64 — deterministic burst shapes from a proptest-drawn seed.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// One concept per message class, plus extras that map to the same
/// class, so every rung of the priority lattice shows up in a burst.
const CONCEPTS: [&str; 6] = [
    "alert",
    "collected-batch",
    "analysis-task",
    "done",
    "observation",
    "resource-profile",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever mix of traffic floods a bounded container, zero
    /// alert-class messages are shed: when the lowest-priority victim
    /// in the waiting queue is itself an alert, the incoming message is
    /// deferred instead, and an incoming alert always outranks any
    /// non-alert victim.
    #[test]
    fn shed_by_priority_never_drops_an_alert(
        seed in 0u64..10_000,
        capacity in 1usize..5,
        containers in 1usize..4,
        windows in 2u64..14,
    ) {
        let mut platform = Platform::create("x");
        platform.set_overload(
            MailboxConfig::new(capacity, OverflowPolicy::ShedByPriority),
            None,
        );
        let mut sinks = Vec::new();
        for i in 0..containers {
            let container = format!("c{i}");
            platform.add_container(&container);
            sinks.push(
                platform
                    .spawn_agent(&container, &format!("sink-{i}"), Sink)
                    .unwrap(),
            );
        }
        let mut rng = Lcg(seed | 1);
        let mut alerts_sent = 0u64;
        for window in 1..=windows {
            let t = window * 1_000;
            // Open the window, pour a burst into it, drain.
            platform.run_until_idle(t);
            let burst = 3 + rng.next() % 14;
            for _ in 0..burst {
                let concept = CONCEPTS[(rng.next() % CONCEPTS.len() as u64) as usize];
                if concept == "alert" {
                    alerts_sent += 1;
                }
                let receiver = sinks[(rng.next() % sinks.len() as u64) as usize].clone();
                let message = AclMessage::builder(Performative::Inform)
                    .sender(AgentId::new("driver"))
                    .receiver(receiver)
                    .content(Value::map([("concept", Value::symbol(concept))]))
                    .build()
                    .unwrap();
                platform.post(message);
            }
            platform.run_until_idle(t);
        }
        let stats = platform.overload_stats().expect("overload protection configured");
        prop_assert_eq!(
            stats.shed(MessageClass::Alert),
            0,
            "alerts sent: {}, stats: {:?}",
            alerts_sent,
            stats
        );
        // The property is vacuous unless the burst actually overflowed
        // somewhere: with cap 1 and bursts of >= 3 it always does.
        if capacity == 1 {
            prop_assert!(stats.shed_total() > 0);
        }
    }
}
