//! Federation tests: the grid split into domain shards (devices
//! partitioned by site, one root + broker scope + analyzer tier per
//! shard) connected by the federation protocol — load-digest gossip,
//! task spill-over, cross-domain finding summaries.
//!
//! The properties under test are the federation's contract:
//!
//! * **conservation** — every task in the federation is counted exactly
//!   once: `created == completed + outstanding` (deduplicated, since a
//!   mid-flight spill sits in two shards' outstanding sets), with zero
//!   permanently lost tasks — under admission pressure, under a network
//!   adversary, and under both at once;
//! * **cross-domain correlation** — a peer's summary joined with a
//!   local fact fires the ordinary level-3 rule on a `fed-s…` alias;
//! * **id uniqueness** — shard-qualified task ids never collide, even
//!   after a task crosses a domain boundary.

use agentgrid_suite::core::chaos::ChaosPlan;
use agentgrid_suite::core::grid::GridBuilder;
use agentgrid_suite::core::overload::{AdmissionConfig, OverloadConfig};
use agentgrid_suite::core::recovery::RecoveryConfig;
use agentgrid_suite::net::{Device, DeviceKind, FaultKind, Network, ScheduledFault};
use agentgrid_suite::platform::ReliabilityConfig;
use agentgrid_suite::{GridReport, ManagementGrid};
use std::collections::BTreeSet;

const ALL_SKILLS: [&str; 8] = [
    "cpu",
    "memory",
    "disk",
    "interface",
    "process",
    "system",
    "other",
    "correlation",
];

fn multi_site_network(sites: usize, devices_per_site: usize, seed: u64) -> Network {
    let mut net = Network::new();
    for s in 0..sites {
        for d in 0..devices_per_site {
            let kind = match d % 3 {
                0 => DeviceKind::Router,
                1 => DeviceKind::Switch,
                _ => DeviceKind::Server,
            };
            net.add_device(
                Device::builder(format!("site-{s}-dev{d}"), kind)
                    .site(format!("site-{s}"))
                    .seed(seed + (s * 100 + d) as u64)
                    .build(),
            );
        }
    }
    net
}

fn sharded_builder(shards: usize, sites: usize, devices_per_site: usize, seed: u64) -> GridBuilder {
    let mut builder = ManagementGrid::builder()
        .network(multi_site_network(sites, devices_per_site, seed))
        .collectors_per_site(1)
        .shards(shards)
        .recovery(RecoveryConfig::seeded(seed));
    for a in 0..shards {
        builder = builder.analyzer(format!("pg-{}", a + 1), 1.0, ALL_SKILLS);
    }
    builder
}

/// The token bucket that forces spill-over: two awards up front, one
/// more per window — far below the per-tick task fan-in.
fn tight_admission() -> OverloadConfig {
    OverloadConfig::new().admission(AdmissionConfig {
        bucket_capacity: 2,
        refill_per_window: 1,
        load_threshold: 0.9,
    })
}

/// The conservation contract, federation-wide.
fn assert_conserved(report: &GridReport, context: &str) {
    assert_eq!(
        report.unaccounted_tasks(),
        0,
        "{context}: created {} != completed {} + outstanding (deduped) — tasks vanished or \
         were double-counted",
        report.tasks_created,
        report.tasks_completed,
    );
    let lost = report.lost_tasks();
    assert!(
        lost.is_empty(),
        "{context}: tasks permanently lost: {lost:?}"
    );
    let mut seen = BTreeSet::new();
    for id in &report.completed_ids {
        assert!(
            seen.insert(id),
            "{context}: task {id} counted complete twice"
        );
    }
    assert_eq!(
        report.tasks_created,
        report.shard_created.iter().sum::<u64>(),
        "{context}: per-shard creation counts must sum to the federation total"
    );
}

#[test]
fn spillover_under_admission_pressure_conserves_every_task() {
    for seed in [1u64, 7, 42] {
        let report = sharded_builder(4, 8, 4, seed)
            .overload(tight_admission())
            .build()
            .run(15 * 60_000, 60_000);
        assert!(
            report.federation.spilled_out > 0,
            "seed {seed}: the tight gate must force spill-over"
        );
        assert!(
            report.federation.spill_completed > 0,
            "seed {seed}: spilled tasks must complete at peers and confirm home"
        );
        assert_conserved(&report, &format!("seed {seed}, admission pressure"));
    }
}

#[test]
fn spillover_under_netchaos_conserves_every_task() {
    // The adversary drops, delays, duplicates and reorders every link —
    // including the root-to-root spill, spill-done and summary traffic.
    // Reliable delivery plus the spill-seen ledger must keep the
    // exactly-once count anyway.
    let horizon = 20 * 60_000;
    for seed in [7u64, 42] {
        let containers: Vec<String> = [
            "pg-1",
            "pg-2",
            "pg-3",
            "pg-root-s0",
            "pg-root-s1",
            "pg-root-s2",
        ]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
        let report = sharded_builder(3, 6, 4, seed)
            .overload(tight_admission())
            .net_adversary(seed)
            .reliability(ReliabilityConfig::seeded(seed))
            .chaos(ChaosPlan::seeded_net(seed, &containers, horizon))
            .build()
            .run(horizon, 60_000);
        assert!(
            report.federation.spilled_out > 0,
            "seed {seed}: spill-over must fire under the adversary too"
        );
        let net = report.net.expect("adversary configured");
        assert!(
            net.dropped + net.delayed + net.duplicated > 0,
            "seed {seed}: the adversary must actually interfere"
        );
        assert_conserved(&report, &format!("seed {seed}, netchaos"));
    }
}

#[test]
fn cross_domain_summary_fires_correlation_rule_on_fed_alias() {
    // CPU runaways in two different domains: neither shard alone sees
    // both hot devices, so the correlated-cpu alert can only come from
    // a peer summary injected under the fed-s alias.
    let report = sharded_builder(2, 4, 4, 11)
        .fault(ScheduledFault::from(
            "site-0-dev2",
            FaultKind::CpuRunaway,
            120_000,
        ))
        .fault(ScheduledFault::from(
            "site-1-dev2",
            FaultKind::CpuRunaway,
            180_000,
        ))
        .build()
        .run(15 * 60_000, 60_000);
    assert!(report.federation.summaries_sent > 0, "summaries must flow");
    assert!(
        report.federation.injected_findings > 0,
        "peer findings must land in the local store"
    );
    assert!(
        report
            .alerts
            .iter()
            .any(|a| a.rule == "correlated-cpu" && a.device.starts_with("fed-s")),
        "the level-3 join must correlate a local fact with a peer's summary"
    );
    assert_conserved(&report, "cross-domain correlation");
}

#[test]
fn shard_qualified_task_ids_never_collide() {
    let report = sharded_builder(3, 6, 3, 5)
        .overload(tight_admission())
        .build()
        .run(10 * 60_000, 60_000);
    let mut first_awards = BTreeSet::new();
    for (id, _) in &report.assignments {
        assert!(
            id.starts_with('s'),
            "federated ids must be shard-qualified, got {id}"
        );
        first_awards.insert(id.as_str());
    }
    // Every distinct id resolves to exactly one creation: the count of
    // distinct awarded ids can never exceed the created total.
    assert!(
        first_awards.len() as u64 <= report.tasks_created,
        "more distinct task ids awarded ({}) than created ({})",
        first_awards.len(),
        report.tasks_created
    );
}

#[test]
fn single_shard_grid_reports_no_federation() {
    let report = sharded_builder(1, 2, 4, 3).build().run(10 * 60_000, 60_000);
    assert_eq!(report.shards, 1);
    assert_eq!(report.federation.spilled_out, 0);
    assert_eq!(report.federation.summaries_sent, 0);
    assert!(!report.render().contains("federation:"));
    assert!(!report.render().contains("shards:"));
}
