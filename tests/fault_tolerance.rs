//! Integration tests for failure injection: dying containers, lossy
//! transports, unreachable devices, storage replica failures.

use agentgrid_suite::acl::AgentId;
use agentgrid_suite::core::chaos::ChaosPlan;
use agentgrid_suite::core::recovery::RecoveryConfig;
use agentgrid_suite::net::{Device, DeviceKind, FaultKind, Network, ScheduledFault};
use agentgrid_suite::platform::TransportFault;
use agentgrid_suite::store::{Record, ReplicatedStore};
use agentgrid_suite::ManagementGrid;

const ALL_SKILLS: [&str; 8] = [
    "cpu",
    "memory",
    "disk",
    "interface",
    "process",
    "system",
    "other",
    "correlation",
];

fn network(devices: usize, seed: u64) -> Network {
    let mut net = Network::new();
    for d in 0..devices {
        net.add_device(
            Device::builder(format!("dev-{d}"), DeviceKind::Server)
                .site("hq")
                .seed(seed + d as u64)
                .build(),
        );
    }
    net
}

#[test]
fn analyzer_container_crash_does_not_stop_the_grid() {
    let mut grid = ManagementGrid::builder()
        .network(network(4, 5))
        .analyzer("pg-1", 4.0, ALL_SKILLS)
        .analyzer("pg-2", 1.0, ALL_SKILLS)
        .build();
    let before = grid.run(3 * 60_000, 60_000);
    assert!(before.tasks_per_container().contains_key("pg-1"));

    grid.crash_container("pg-1");
    let after = grid.run(5 * 60_000, 60_000);

    // New work flows to the survivor.
    let new_assignments = &after.assignments[before.assignments.len()..];
    assert!(!new_assignments.is_empty(), "brokering must continue");
    assert!(
        new_assignments.iter().all(|(_, c)| c == "pg-2"),
        "all new tasks must land on the surviving container"
    );
    // Alerts keep coming from the survivor.
    assert!(after.records_stored > before.records_stored);
}

/// Regression: a crashed container's **in-flight** tasks — awarded but
/// not yet reported done — must complete on a surviving container, not
/// just future work. A transport-fault window swallows the awards sent
/// to `pg-1`'s analyzer right before the crash, guaranteeing stranded
/// in-flight tasks; heartbeat detection must then reclaim and re-broker
/// them to `pg-2`, where they finish.
#[test]
fn crashed_containers_in_flight_tasks_complete_elsewhere() {
    // Window [1 min, 4 min): awards to pg-1's analyzer vanish in
    // transit, so its ledger entries stay in flight. Crash at 4 min,
    // detected dead at ~7 min (3 missed 60 s heartbeats).
    let plan = ChaosPlan::new()
        .drop_to_between(60_000, 4 * 60_000, AgentId::new("analyzer-pg-1@grid"))
        .crash_at(4 * 60_000, "pg-1");
    let mut grid = ManagementGrid::builder()
        .network(network(4, 23))
        .collectors_per_site(2)
        // pg-1's higher capacity attracts the early awards.
        .analyzer("pg-1", 4.0, ALL_SKILLS)
        .analyzer("pg-2", 1.0, ALL_SKILLS)
        .recovery(RecoveryConfig::seeded(23))
        .chaos(plan)
        .build();
    let report = grid.run(15 * 60_000, 60_000);

    // Some task was awarded to pg-1, stranded, and completed via pg-2.
    let moved: Vec<&str> = report
        .rebrokered
        .iter()
        .filter(|id| {
            report
                .assignments
                .iter()
                .any(|(t, c)| t == *id && c == "pg-1")
                && report
                    .assignments
                    .iter()
                    .any(|(t, c)| t == *id && c == "pg-2")
        })
        .map(String::as_str)
        .collect();
    assert!(
        !moved.is_empty(),
        "no in-flight task moved from the crashed container to the survivor; \
         rebrokered: {:?}",
        report.rebrokered
    );
    for id in moved {
        assert!(
            report.completed_ids.contains(&id.to_owned()),
            "moved task {id} never completed on the survivor"
        );
    }
    assert!(
        report.lost_tasks().is_empty(),
        "lost: {:?}",
        report.lost_tasks()
    );
    // The death surfaced operationally too.
    assert!(report.alerts.iter().any(|a| a.rule == "container-dead"));
}

#[test]
fn unreachable_device_keeps_the_rest_of_the_fleet_monitored() {
    let mut grid = ManagementGrid::builder()
        .network(network(3, 11))
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .fault(ScheduledFault::from(
            "dev-0",
            FaultKind::Unreachable,
            60_000,
        ))
        .build();
    let report = grid.run(5 * 60_000, 60_000);
    // The outage is reported...
    assert!(report
        .alerts
        .iter()
        .any(|a| a.rule == "device-unreachable" && a.device == "dev-0"));
    // ...and other devices' data still arrives.
    let store = grid.store();
    let store = store.lock();
    assert!(store.latest("dev-1", "cpu.load.1").is_some());
    assert!(store.latest("dev-2", "cpu.load.1").is_some());
}

#[test]
fn fault_clearing_stops_new_alerts() {
    let mut grid = ManagementGrid::builder()
        .network(network(2, 13))
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .fault(ScheduledFault::from("dev-0", FaultKind::CpuRunaway, 60_000).until(4 * 60_000))
        .build();
    grid.run(4 * 60_000, 60_000);
    let during = grid.alerts().len();
    assert!(during > 0, "fault window must alert");
    // Several healthy minutes later, no *new* high-cpu alerts appear.
    grid.run(5 * 60_000, 60_000);
    let after = grid.alerts();
    let new_high_cpu = after[during..]
        .iter()
        .filter(|a| a.rule == "high-cpu")
        .count();
    assert_eq!(new_high_cpu, 0, "cleared fault must stop alerting");
}

#[test]
fn transport_drops_to_classifier_starve_analysis_but_not_collection() {
    let mut grid = ManagementGrid::builder()
        .network(network(2, 17))
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .build();
    let classifier = agentgrid_suite::acl::AgentId::with_platform("classifier", "grid");
    grid.platform_mut()
        .set_fault(TransportFault::DropTo(classifier));
    let report = grid.run(3 * 60_000, 60_000);
    assert_eq!(report.records_stored, 0, "no batch reaches the classifier");
    assert!(report.assignments.is_empty(), "no data-ready → no tasks");

    // Healing the transport restores the pipeline.
    grid.platform_mut().set_fault(TransportFault::None);
    let healed = grid.run(3 * 60_000, 60_000);
    assert!(healed.records_stored > 0);
    assert!(!healed.assignments.is_empty());
}

#[test]
fn replicated_store_survives_rolling_failures() {
    let mut store = ReplicatedStore::new(3);
    for t in 0..100u64 {
        // Roll a failure across replicas every 10 writes.
        if t % 10 == 0 {
            let victim = ((t / 10) % 3) as usize;
            if store.live_count() > 1 {
                store.fail(victim).unwrap();
            }
            let recovered = ((t / 10 + 1) % 3) as usize;
            store.recover(recovered).unwrap();
        }
        store
            .insert(Record::new("d", "cpu.load.1", t as f64, t * 1000))
            .unwrap();
        assert!(store.is_consistent(), "live replicas must agree at t={t}");
    }
    assert_eq!(store.read().unwrap().len(), 100);
}
