//! Integration tests asserting the paper's comparative claims (§4,
//! Figure 6) hold in the reproduction — both on the deterministic cost
//! model and between the live implementations.

use agentgrid_suite::core::scenario::run_architecture;
use agentgrid_suite::des::ResourceKind;
use agentgrid_suite::net::{Device, DeviceKind, FaultKind, Network, ScheduledFault};
use agentgrid_suite::{Architecture, CostModel, ManagementGrid, Workload};

fn reports(rounds: usize) -> [agentgrid_suite::des::SimReport; 3] {
    let costs = CostModel::table1();
    Architecture::paper_configs()
        .map(|arch| run_architecture(arch, Workload::rounds(rounds), &costs))
}

#[test]
fn fig6a_centralized_manager_cpu_is_saturated() {
    let [cen, _, _] = reports(10);
    assert!(
        cen.utilization("manager", ResourceKind::Cpu) > 0.95,
        "the paper: 'its processor becomes the bottleneck'"
    );
    let (host, kind, _) = cen.bottleneck().unwrap();
    assert_eq!((host, kind), ("manager", ResourceKind::Cpu));
}

#[test]
fn fig6a_centralized_has_highest_manager_network_use() {
    let [cen, mas, _] = reports(10);
    assert!(
        cen.busy_time("manager", ResourceKind::Net)
            > 2 * mas.busy_time("manager", ResourceKind::Net),
        "raw-format transmission must dominate the centralized manager's NIC"
    );
}

#[test]
fn fig6b_multiagent_keeps_centralized_analysis_bottleneck() {
    let [_, mas, _] = reports(10);
    let (host, kind, _) = mas.bottleneck().unwrap();
    assert_eq!(
        (host, kind),
        ("manager", ResourceKind::Cpu),
        "the paper: 'keeps a centralized data analysis structure, which, again, is the system bottleneck'"
    );
}

#[test]
fn fig6c_grid_has_lowest_peak_utilization_and_makespan() {
    let [cen, mas, grid] = reports(10);
    assert!(grid.peak_utilization() < mas.peak_utilization());
    assert!(mas.peak_utilization() <= cen.peak_utilization() + 1e-9);
    assert!(grid.makespan() < mas.makespan());
    assert!(mas.makespan() < cen.makespan());
}

#[test]
fn fig6c_no_grid_host_dominates() {
    let [_, _, grid] = reports(10);
    let total_cpu: u64 = grid
        .hosts()
        .iter()
        .map(|h| grid.busy_time(h, ResourceKind::Cpu))
        .sum();
    for host in grid.hosts() {
        assert!(
            grid.busy_time(host, ResourceKind::Cpu) * 2 < total_cpu + 1,
            "no single grid host may carry half the CPU work ({host})"
        );
    }
}

#[test]
fn crossover_exists_and_is_small() {
    // The paper: grids pay off "when the volume of information ... is
    // relatively large"; traditional approaches win in "less busy
    // environments". Both halves must hold.
    let costs = CostModel::table1();
    let mean = |arch, rounds| {
        run_architecture(arch, Workload::rounds(rounds), &costs)
            .mean_completion()
            .unwrap()
    };
    let grid_arch = Architecture::AgentGrid {
        collectors: 3,
        analyzers: 2,
    };
    // Tiny workload: centralized is better (no distribution overhead).
    assert!(
        mean(Architecture::Centralized, 1) < mean(grid_arch, 1),
        "at 1 round the centralized manager must win"
    );
    // Paper-scale workload: the grid must win clearly.
    assert!(
        mean(grid_arch, 10) * 2.0 < mean(Architecture::Centralized, 10),
        "at 10 rounds the grid must be at least 2x better"
    );
}

#[test]
fn scaling_adding_analyzers_never_hurts() {
    let costs = CostModel::table1();
    let mut previous = u64::MAX;
    for analyzers in [1usize, 2, 4, 8] {
        let report = run_architecture(
            Architecture::AgentGrid {
                collectors: 3,
                analyzers,
            },
            Workload::rounds(50),
            &costs,
        );
        assert!(
            report.makespan() <= previous,
            "makespan must be non-increasing in analyzer count"
        );
        previous = report.makespan();
    }
}

#[test]
fn raw_factor_drives_the_centralized_network_penalty() {
    // Ablation: with raw_factor = 1 (pre-parsed data on the wire), the
    // centralized network advantage of collectors disappears.
    let workload = Workload::paper();
    let with_penalty = run_architecture(Architecture::Centralized, workload, &CostModel::table1());
    let without_penalty = run_architecture(
        Architecture::Centralized,
        workload,
        &CostModel::table1().with_raw_factor(1),
    );
    assert_eq!(
        with_penalty.busy_time("manager", ResourceKind::Net),
        3 * without_penalty.busy_time("manager", ResourceKind::Net)
    );
}

/// The full live management grid — identical wiring and agent code —
/// must behave consistently on the deterministic stepper and on the
/// threaded (one-OS-thread-per-container) runtime: same monitoring
/// coverage, the same fault detected, nothing lost in transit.
#[test]
fn live_grid_behaves_consistently_on_both_runtimes() {
    const ALL_SKILLS: [&str; 8] = [
        "cpu",
        "memory",
        "disk",
        "interface",
        "process",
        "system",
        "other",
        "correlation",
    ];
    let network = || {
        let mut net = Network::new();
        for i in 0..3 {
            net.add_device(
                Device::builder(format!("srv-{i}"), DeviceKind::Server)
                    .site("hq")
                    .seed(i)
                    .build(),
            );
        }
        net
    };
    let builder = || {
        ManagementGrid::builder()
            .network(network())
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS)
            .fault(ScheduledFault::from("srv-0", FaultKind::CpuRunaway, 60_000))
    };

    let deterministic = builder().build().run(6 * 60_000, 60_000);
    let threaded = builder().build_threaded().run(6 * 60_000, 60_000);

    for (name, report) in [("deterministic", &deterministic), ("threaded", &threaded)] {
        assert!(
            report.records_stored > 0,
            "{name}: collectors fed the store"
        );
        assert!(
            !report.assignments.is_empty(),
            "{name}: root brokered tasks"
        );
        assert_eq!(report.dead_letters, 0, "{name}: nothing lost in transit");
        assert!(
            report
                .alerts
                .iter()
                .any(|a| a.rule == "high-cpu" && a.device == "srv-0"),
            "{name}: the injected CPU fault must be detected; alerts: {:?}",
            report.alerts
        );
    }
    // Collectors poll on the simulated clock, which both runtimes
    // advance identically — monitoring coverage must match exactly.
    assert_eq!(deterministic.records_stored, threaded.records_stored);
}

/// Telemetry is part of the cross-runtime contract: the same
/// message-driven scenario must produce byte-identical counters —
/// global deliveries, dead letters, per-container delivered/sent and
/// per-stage rollups — whether it runs on the deterministic stepper or
/// on the threaded runtime.
#[test]
fn telemetry_counters_match_across_runtimes() {
    use agentgrid_suite::acl::{AclMessage, AgentId, Performative, Value};
    use agentgrid_suite::platform::{
        Agent, AgentCtx, Platform, Runtime, Telemetry, TelemetryHandle, ThreadedRuntime,
    };

    /// Forwards every request as one multicast to a sink and a ghost
    /// (the ghost leg dead-letters). No tick behaviour, so the threaded
    /// runtime's self-ticking cannot skew any counter.
    struct Forwarder {
        sink: AgentId,
        ghost: AgentId,
    }
    impl Agent for Forwarder {
        fn on_message(&mut self, msg: &AclMessage, ctx: &mut AgentCtx<'_>) {
            if msg.performative() != Performative::Request {
                return;
            }
            let fanout = AclMessage::builder(Performative::Inform)
                .sender(ctx.self_id().clone())
                .receiver(self.sink.clone())
                .receiver(self.ghost.clone())
                .content(msg.content().clone())
                .build()
                .unwrap();
            ctx.send(fanout);
        }
    }
    struct Sink;
    impl Agent for Sink {}

    const REQUESTS: u64 = 5;
    fn scenario<R: Runtime>() -> TelemetryHandle {
        let telemetry = Telemetry::new();
        telemetry.set_stage("front", "ingress");
        telemetry.set_stage("back", "egress");
        let mut rt = R::create("x");
        rt.set_telemetry(telemetry.clone());
        rt.add_container("front");
        rt.add_container("back");
        let sink = rt.spawn_agent("back", "sink", Sink).unwrap();
        rt.spawn_agent(
            "front",
            "fwd",
            Forwarder {
                sink,
                ghost: AgentId::with_platform("ghost", "x"),
            },
        )
        .unwrap();
        for _ in 0..REQUESTS {
            let request = AclMessage::builder(Performative::Request)
                .sender(AgentId::new("driver"))
                .receiver(AgentId::with_platform("fwd", "x"))
                .content(Value::symbol("work"))
                .build()
                .unwrap();
            rt.post(request);
        }
        rt.run_until_idle(0);
        telemetry
    }

    let det = scenario::<Platform>();
    let thr = scenario::<ThreadedRuntime>();

    // 5 requests into fwd + 5 fanouts into sink; each fanout's ghost leg
    // dead-letters.
    assert_eq!(det.delivered_total(), 2 * REQUESTS);
    assert_eq!(det.delivered_total(), thr.delivered_total());
    assert_eq!(det.dead_letter_total(), REQUESTS);
    assert_eq!(det.dead_letter_total(), thr.dead_letter_total());

    let counters = |t: &TelemetryHandle| {
        t.container_stats()
            .into_iter()
            .map(|s| (s.container, s.delivered, s.sent, s.handled, s.mailbox_depth))
            .collect::<Vec<_>>()
    };
    assert_eq!(counters(&det), counters(&thr));

    for stage in ["ingress", "egress"] {
        let labels = [("stage", stage)];
        assert_eq!(
            det.snapshot()
                .counter("agentgrid_stage_messages_total", &labels),
            thr.snapshot()
                .counter("agentgrid_stage_messages_total", &labels),
            "stage `{stage}` counters must match"
        );
    }
}

/// Recovery parity: the same seeded [`ChaosPlan`] — crash, restart,
/// transport-fault windows — must drive both runtimes to the same
/// outcome: identical task-completion sets, the same alert volume, and
/// zero permanently lost tasks. The deterministic runtime must further
/// be bit-identical across two invocations of the same seed.
#[test]
fn chaos_recovery_is_consistent_across_runtimes() {
    use agentgrid_suite::core::chaos::ChaosPlan;
    use agentgrid_suite::core::recovery::RecoveryConfig;

    const ALL_SKILLS: [&str; 8] = [
        "cpu",
        "memory",
        "disk",
        "interface",
        "process",
        "system",
        "other",
        "correlation",
    ];
    let seed = 42u64;
    let horizon = 18 * 60_000;
    let plan = ChaosPlan::seeded(seed, &["pg-1".into(), "pg-2".into()], horizon);
    assert!(!plan.is_empty());
    let builder = || {
        let mut net = Network::new();
        for i in 0..3 {
            net.add_device(
                Device::builder(format!("srv-{i}"), DeviceKind::Server)
                    .site("hq")
                    .seed(i)
                    .build(),
            );
        }
        ManagementGrid::builder()
            .network(net)
            .collectors_per_site(1)
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS)
            .recovery(RecoveryConfig::seeded(seed))
            .chaos(plan.clone())
    };

    let det = builder().build().run(horizon, 60_000);
    let det_again = builder().build().run(horizon, 60_000);
    let thr = builder().build_threaded().run(horizon, 60_000);

    // Determinism first: same seed, same everything, to the byte.
    assert_eq!(det.assignments, det_again.assignments);
    assert_eq!(det.completed_ids, det_again.completed_ids);
    assert_eq!(det.rebrokered, det_again.rebrokered);
    assert_eq!(det.retries, det_again.retries);
    assert_eq!(det.alerts, det_again.alerts);
    assert_eq!(det.render(), det_again.render());

    // Cross-runtime parity: the chaos schedule runs on simulated time
    // on both runtimes, so the *sets* of completed tasks and the alert
    // volume must match (delivery order within a tick may differ).
    fn completed_set(r: &agentgrid_suite::GridReport) -> Vec<&str> {
        let mut ids: Vec<&str> = r.completed_ids.iter().map(String::as_str).collect();
        ids.sort_unstable();
        ids
    }
    assert_eq!(
        completed_set(&det),
        completed_set(&thr),
        "both runtimes must complete the same task set under the same chaos plan"
    );
    assert_eq!(det.alerts.len(), thr.alerts.len(), "same alert volume");
    assert_eq!(det.escalations, thr.escalations, "same escalations");
    for (name, report) in [("deterministic", &det), ("threaded", &thr)] {
        assert!(
            report.lost_tasks().is_empty(),
            "{name}: tasks permanently lost: {:?}",
            report.lost_tasks()
        );
        assert!(
            !report.rebrokered.is_empty(),
            "{name}: the crash must force at least one re-brokering"
        );
    }
}

/// Network-adversary parity: the same seeded fault plan (loss,
/// duplication, delay, reordering, a healing partition) with reliable
/// delivery produces byte-identical reports on the deterministic
/// stepper and the pool runtime — the whole misbehavior sequence is a
/// pure function of `(seed, link, sequence)`, and the pool preserves
/// the stepper's delivery order exactly. The threaded runtime cannot
/// promise byte-identity (per-link sequence numbers depend on router
/// interleaving), but the conservation contract must still hold there:
/// nothing lost, the injected device fault's alert delivered.
#[test]
fn network_adversary_is_consistent_across_runtimes() {
    use agentgrid_suite::core::chaos::ChaosPlan;
    use agentgrid_suite::core::recovery::RecoveryConfig;
    use agentgrid_suite::platform::ReliabilityConfig;

    const ALL_SKILLS: [&str; 8] = [
        "cpu",
        "memory",
        "disk",
        "interface",
        "process",
        "system",
        "other",
        "correlation",
    ];
    let seed = 42u64;
    let horizon = 18 * 60_000;
    let containers: Vec<String> = ["pg-1", "pg-2", "pg-root-ct", "clg", "ig", "cg-hq"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let plan = ChaosPlan::seeded_net(seed, &containers, horizon);
    assert!(!plan.is_empty());
    let builder = || {
        let mut net = Network::new();
        for i in 0..4 {
            net.add_device(
                Device::builder(format!("srv-{i}"), DeviceKind::Server)
                    .site("hq")
                    .seed(i)
                    .build(),
            );
        }
        ManagementGrid::builder()
            .network(net)
            .collectors_per_site(2)
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS)
            .recovery(RecoveryConfig::seeded(seed))
            .net_adversary(seed)
            .reliability(ReliabilityConfig::seeded(seed))
            .chaos(plan.clone())
            .fault(ScheduledFault::from(
                "srv-1",
                FaultKind::CpuRunaway,
                120_000,
            ))
    };

    let det = builder().build().run(horizon, 60_000);
    let det_again = builder().build().run(horizon, 60_000);
    let pool = builder().build_pool().run(horizon, 60_000);
    let thr = builder().build_threaded().run(horizon, 60_000);

    // Determinism first: same seed, same misbehavior, to the byte.
    assert_eq!(det.render(), det_again.render());
    assert_eq!(det.assignments, det_again.assignments);
    assert_eq!(det.completed_ids, det_again.completed_ids);
    assert_eq!(det.net, det_again.net, "same adversary counters");

    // The pool preserves the stepper's delivery order exactly, so the
    // adversary's decisions — and everything downstream — match byte
    // for byte.
    assert_eq!(det.render(), pool.render());
    assert_eq!(det.assignments, pool.assignments);
    assert_eq!(det.completed_ids, pool.completed_ids);
    assert_eq!(det.net, pool.net);

    let net = det.net.expect("adversary configured");
    assert!(net.retransmits > 0, "reliability layer must be exercised");
    assert!(net.dup_suppressed > 0, "dedup window must be exercised");

    for (name, report) in [("deterministic", &det), ("pool", &pool), ("threaded", &thr)] {
        assert!(
            report.lost_tasks().is_empty(),
            "{name}: tasks permanently lost: {:?}",
            report.lost_tasks()
        );
        assert!(
            report
                .alerts
                .iter()
                .any(|a| a.rule == "high-cpu" && a.device == "srv-1"),
            "{name}: the device fault's alert was lost to the adversary"
        );
    }
}

/// Overflow-policy parity: the same seeded burst against the same
/// [`MailboxConfig`] must shed the same messages on both runtimes.
/// Mailbox budgets are window credits keyed to the simulated clock, so
/// every counter — per-class sheds, deferrals, the high-water mark — is
/// a function of per-window traffic counts, not of within-window
/// delivery order. Sink agents never reply, so no feedback loop can
/// reshape the traffic between runtimes.
#[test]
fn overload_shedding_is_consistent_across_runtimes() {
    use agentgrid_suite::acl::{AclMessage, AgentId, Performative, Value};
    use agentgrid_suite::platform::{
        Agent, MailboxConfig, MessageClass, OverflowPolicy, OverloadStats, Platform, Runtime,
        ThreadedRuntime,
    };

    struct Sink;
    impl Agent for Sink {}

    /// xorshift64 — the same pseudo-random burst for every runtime.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }
    const CONCEPTS: [&str; 5] = [
        "alert",
        "collected-batch",
        "analysis-task",
        "observation",
        "resource-profile",
    ];
    fn traffic(seed: u64) -> Vec<Vec<(usize, &'static str)>> {
        let mut rng = Lcg(seed | 1);
        (0..12)
            .map(|_| {
                let burst = (5 + rng.next() % 12) as usize;
                (0..burst)
                    .map(|_| {
                        let receiver = (rng.next() % 3) as usize;
                        let concept = CONCEPTS[(rng.next() % 5) as usize];
                        (receiver, concept)
                    })
                    .collect()
            })
            .collect()
    }

    fn scenario<R: Runtime>(seed: u64) -> OverloadStats {
        let mut rt = R::create("x");
        rt.set_overload(MailboxConfig::new(2, OverflowPolicy::ShedByPriority), None);
        let sinks: Vec<AgentId> = (0..3)
            .map(|i| {
                let container = format!("c{i}");
                rt.add_container(&container);
                rt.spawn_agent(&container, &format!("sink-{i}"), Sink)
                    .unwrap()
            })
            .collect();
        for (window, burst) in traffic(seed).into_iter().enumerate() {
            let t = (window as u64 + 1) * 1_000;
            // Open the window first, then pour the burst into it — both
            // runtimes then admit every message against the same budget.
            rt.run_until_idle(t);
            for (receiver, concept) in burst {
                let message = AclMessage::builder(Performative::Inform)
                    .sender(AgentId::new("driver"))
                    .receiver(sinks[receiver].clone())
                    .content(Value::map([("concept", Value::symbol(concept))]))
                    .build()
                    .unwrap();
                rt.post(message);
            }
            rt.run_until_idle(t);
        }
        rt.overload_stats().expect("overload protection configured")
    }

    for seed in [7u64, 42, 1009] {
        let det = scenario::<Platform>(seed);
        let det_again = scenario::<Platform>(seed);
        let thr = scenario::<ThreadedRuntime>(seed);
        assert_eq!(det, det_again, "seed {seed}: deterministic replay");
        assert_eq!(
            det, thr,
            "seed {seed}: window-credit shedding must not depend on the runtime"
        );
        assert!(det.shed_total() > 0, "seed {seed}: the burst must overflow");
        assert_eq!(
            det.shed(MessageClass::Alert),
            0,
            "seed {seed}: alerts are never shed"
        );
    }
}

/// Admission-control parity: with the root's token-bucket gate
/// configured identically (and mailboxes unbounded, so no deferral can
/// shift traffic between windows), both runtimes must turn away the
/// same number of awards. The bucket refills per clock window and
/// counts attempts, both of which are clock-driven; a single analyzer
/// keeps award targets order-independent.
#[test]
fn admission_gate_is_consistent_across_runtimes() {
    use agentgrid_suite::core::overload::{AdmissionConfig, OverloadConfig};

    const ALL_SKILLS: [&str; 8] = [
        "cpu",
        "memory",
        "disk",
        "interface",
        "process",
        "system",
        "other",
        "correlation",
    ];
    let builder = || {
        let mut net = Network::new();
        for site in 0..2 {
            for i in 0..4 {
                net.add_device(
                    Device::builder(format!("s{site}-dev{i}"), DeviceKind::Server)
                        .site(format!("site-{site}"))
                        .seed(site * 10 + i)
                        .build(),
                );
            }
        }
        ManagementGrid::builder()
            .network(net)
            .collectors_per_site(3)
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .overload(OverloadConfig::new().admission(AdmissionConfig {
                bucket_capacity: 2,
                refill_per_window: 1,
                load_threshold: 1.0,
            }))
    };
    let horizon = 10 * 60_000;

    let det = builder().build().run(horizon, 60_000);
    let det_again = builder().build().run(horizon, 60_000);
    let thr = builder().build_threaded().run(horizon, 60_000);

    assert_eq!(det.render(), det_again.render());
    assert_eq!(det.rejected, det_again.rejected);
    assert!(det.rejected > 0, "the token bucket must reject awards");
    assert_eq!(
        det.rejected, thr.rejected,
        "the admission gate must not depend on the runtime"
    );
    // Mailboxes are unbounded here: nothing may be shed on either side.
    assert_eq!(det.shed, 0);
    assert_eq!(thr.shed, 0);
}

/// Three-way runtime parity matrix: the same seeded scenario —
/// optionally with a chaos plan and optionally behind the overload
/// defences — runs on the deterministic stepper, the threaded runtime
/// and the work-stealing pool.
///
/// The pool is held to the strongest contract: a byte-identical
/// [`GridReport`] render versus the deterministic stepper, because its
/// name-ordered outbox merge makes the parallel phase observationally
/// sequential. The threaded runtime retries on wall-clock heartbeats,
/// so count-level fields (`retries`, `rebrokered`) are scheduler-
/// dependent under chaos; it is held to the set-level contract the
/// earlier tests in this file establish: same completed-task set, same
/// alert volume, nothing permanently lost.
mod parity_matrix {
    use super::*;
    use agentgrid_suite::core::chaos::ChaosPlan;
    use agentgrid_suite::core::overload::{AdmissionConfig, OverflowPolicy, OverloadConfig};
    use agentgrid_suite::core::recovery::RecoveryConfig;
    use agentgrid_suite::net::{Device, DeviceKind, Network};
    use agentgrid_suite::GridReport;
    use proptest::prelude::*;

    const ALL_SKILLS: [&str; 8] = [
        "cpu",
        "memory",
        "disk",
        "interface",
        "process",
        "system",
        "other",
        "correlation",
    ];

    fn network(sites: usize, devices: usize, seed: u64) -> Network {
        let mut net = Network::new();
        for s in 0..sites {
            let site = format!("site-{s}");
            for d in 0..devices {
                net.add_device(
                    Device::builder(format!("{site}-dev{d}"), DeviceKind::Server)
                        .site(&site)
                        .seed(seed.wrapping_add((s * 100 + d) as u64))
                        .build(),
                );
            }
        }
        net
    }

    fn completed_set(report: &GridReport) -> Vec<&str> {
        let mut ids: Vec<&str> = report.completed_ids.iter().map(String::as_str).collect();
        ids.sort_unstable();
        ids
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn reports_agree_across_all_three_runtimes(
            seed in 0u64..500,
            sites in 1usize..3,
            devices in 2usize..5,
            chaos_on in 0u8..2,
            overload_on in 0u8..2,
        ) {
            let horizon = 12 * 60_000;
            let analyzers = vec!["pg-1".to_string(), "pg-2".to_string()];
            let plan = (chaos_on == 1)
                .then(|| ChaosPlan::seeded(seed, &analyzers, horizon));
            let protection = (overload_on == 1).then(|| {
                OverloadConfig::new()
                    .mailbox(3, OverflowPolicy::ShedByPriority)
                    .admission(AdmissionConfig {
                        bucket_capacity: 4,
                        refill_per_window: 2,
                        load_threshold: 0.9,
                    })
            });
            let builder = || {
                let mut b = ManagementGrid::builder()
                    .network(network(sites, devices, seed))
                    .collectors_per_site(2)
                    .analyzer("pg-1", 1.0, ALL_SKILLS)
                    .analyzer("pg-2", 1.0, ALL_SKILLS);
                if plan.is_some() || protection.is_some() {
                    // Recovery re-brokers awards lost to crashes *and*
                    // to shedding, making the zero-loss invariant hold
                    // under every sampled combination.
                    b = b.recovery(RecoveryConfig::seeded(seed));
                }
                if let Some(plan) = &plan {
                    b = b.chaos(plan.clone());
                }
                if let Some(cfg) = &protection {
                    b = b.overload(cfg.clone());
                }
                b
            };

            let det = builder().build().run(horizon, 60_000);
            let det_again = builder().build().run(horizon, 60_000);
            let pool = builder().build_pool().run(horizon, 60_000);
            let threaded = builder().build_threaded().run(horizon, 60_000);

            // Deterministic replay, then pool byte-identity.
            prop_assert_eq!(det.render(), det_again.render());
            prop_assert_eq!(det.render(), pool.render(),
                "pool must render byte-identically to the stepper");
            prop_assert_eq!(&det.assignments, &pool.assignments);
            prop_assert_eq!(&det.completed_ids, &pool.completed_ids);
            prop_assert_eq!(&det.alerts, &pool.alerts);
            prop_assert_eq!(det.rejected, pool.rejected);
            prop_assert_eq!(det.shed, pool.shed);

            // Threaded: set-level parity — but only without the
            // admission gate. With two analyzers the token bucket
            // counts attempts in arrival order, so *which* awards it
            // rejects is genuinely scheduler-dependent; under overload
            // the threaded runtime is held to liveness instead.
            if protection.is_none() {
                prop_assert_eq!(completed_set(&det), completed_set(&threaded));
                prop_assert_eq!(det.alerts.len(), threaded.alerts.len());
                prop_assert_eq!(det.records_stored, threaded.records_stored);
                prop_assert!(
                    threaded.lost_tasks().is_empty(),
                    "threaded: tasks permanently lost: {:?}",
                    threaded.lost_tasks()
                );
            } else {
                prop_assert!(threaded.tasks_completed > 0);
                prop_assert!(threaded.records_stored > 0);
            }

            for (name, report) in [("deterministic", &det), ("pool", &pool)] {
                prop_assert!(
                    report.lost_tasks().is_empty(),
                    "{}: tasks permanently lost: {:?}",
                    name,
                    report.lost_tasks()
                );
            }
        }
    }
}

/// Observability parity: with telemetry attached and the flight
/// recorder enabled, the deterministic stepper and the work-stealing
/// pool must agree on everything stamped in *simulated* time under the
/// same seeded chaos plan — the rendered report (including the
/// task-latency percentiles), the completed task-latency distribution,
/// and the flight-recorder event set (compared via [`Event::sim_view`],
/// which drops the wall-clock stamp). Any divergence means scheduling
/// leaked into recorded state.
#[test]
fn flight_recorder_and_task_spans_agree_across_runtimes() {
    use agentgrid_suite::core::chaos::ChaosPlan;
    use agentgrid_suite::core::recovery::RecoveryConfig;
    use agentgrid_suite::telemetry::{Event, EventKind, Telemetry, TelemetryHandle};

    const ALL_SKILLS: [&str; 8] = [
        "cpu",
        "memory",
        "disk",
        "interface",
        "process",
        "system",
        "other",
        "correlation",
    ];
    let seed = 42u64;
    let horizon = 18 * 60_000;
    let plan = ChaosPlan::seeded(seed, &["pg-1".into(), "pg-2".into()], horizon);
    assert!(!plan.is_empty());
    let builder = |telemetry: TelemetryHandle| {
        let mut net = Network::new();
        for i in 0..3 {
            net.add_device(
                Device::builder(format!("srv-{i}"), DeviceKind::Server)
                    .site("hq")
                    .seed(i)
                    .build(),
            );
        }
        ManagementGrid::builder()
            .network(net)
            .collectors_per_site(1)
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS)
            .recovery(RecoveryConfig::seeded(seed))
            .chaos(plan.clone())
            .telemetry(telemetry)
    };

    let det_t = Telemetry::new();
    det_t.flight_recorder().enable();
    let det = builder(det_t.clone()).build().run(horizon, 60_000);

    let pool_t = Telemetry::new();
    pool_t.flight_recorder().enable();
    let pool = builder(pool_t.clone()).build_pool().run(horizon, 60_000);

    // Both sides must have actually recorded something, or the parity
    // assertions below would pass vacuously.
    assert!(
        det.task_latency.is_some(),
        "telemetry attached: the report must carry latency percentiles"
    );
    assert!(!det_t.flight_recorder().is_empty());
    let crashes = det_t
        .flight_recorder()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Crash { .. }))
        .count();
    assert!(crashes > 0, "the chaos plan must flight-record its crash");

    // Reports byte-identical, latency summaries and full distributions
    // equal — all simulated-time quantities.
    assert_eq!(det.render(), pool.render(), "reports must match");
    assert_eq!(det.task_latency, pool.task_latency);
    assert_eq!(
        det_t.task_spans().completed_latencies(),
        pool_t.task_spans().completed_latencies(),
        "end-to-end latency distributions must match"
    );

    // Flight-recorder parity on the (sim-time, kind) view; wall-clock
    // stamps differ run to run by construction. Sorted: within one
    // timestamp the pool merges outboxes by container name, so ordering
    // of same-instant events is not part of the contract.
    let sim_events = |t: &TelemetryHandle| {
        let mut events: Vec<(u64, EventKind)> = t
            .flight_recorder()
            .events()
            .iter()
            .map(Event::sim_view)
            .collect();
        events.sort();
        events
    };
    assert_eq!(
        sim_events(&det_t),
        sim_events(&pool_t),
        "flight-recorder event sets must match across runtimes"
    );
}

#[test]
fn workload_pacing_reduces_contention_not_work() {
    let costs = CostModel::table1();
    let burst = run_architecture(Architecture::Centralized, Workload::rounds(10), &costs);
    let paced = run_architecture(
        Architecture::Centralized,
        Workload {
            rounds: 10,
            inter_arrival: 500,
        },
        &costs,
    );
    assert_eq!(
        burst.busy_time("manager", ResourceKind::Cpu),
        paced.busy_time("manager", ResourceKind::Cpu),
        "same total work"
    );
    assert!(paced.peak_utilization() < burst.peak_utilization());
}

/// The federated (sharded) grid — every shard its own root, broker
/// scope and analyzer tier, connected by the federation protocol —
/// must produce byte-identical reports on the deterministic stepper
/// and the work-stealing pool: the shards tick concurrently on the
/// pool (one group per shard), but gossip, spill and summary traffic
/// merge deterministically. The wall-clock threaded runtime keeps the
/// task-level invariants (same tasks, same awards, same records) but
/// its alert values can shift: a peer summary lands whenever the
/// thread is scheduled, racing live collection, so the snapshot a
/// rule sees is timing-dependent there by design.
#[test]
fn sharded_grid_is_byte_identical_across_runtimes() {
    const ALL_SKILLS: [&str; 8] = [
        "cpu",
        "memory",
        "disk",
        "interface",
        "process",
        "system",
        "other",
        "correlation",
    ];
    let network = || {
        let mut net = Network::new();
        for s in 0..6 {
            for d in 0..3 {
                net.add_device(
                    Device::builder(format!("site-{s}-dev{d}"), DeviceKind::Server)
                        .site(format!("site-{s}"))
                        .seed((s * 10 + d) as u64)
                        .build(),
                );
            }
        }
        net
    };
    let builder = || {
        ManagementGrid::builder()
            .network(network())
            .collectors_per_site(1)
            .shards(3)
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS)
            .analyzer("pg-3", 1.0, ALL_SKILLS)
            .fault(ScheduledFault::from(
                "site-0-dev1",
                FaultKind::CpuRunaway,
                120_000,
            ))
    };
    let horizon = 10 * 60_000;
    let det = builder().build().run(horizon, 60_000);
    let pool = builder().build_pool().run(horizon, 60_000);
    let threaded = builder().build_threaded().run(horizon, 60_000);
    assert_eq!(det.shards, 3);
    assert!(
        det.federation.summaries_sent > 0,
        "the federation must actually be exercised"
    );
    assert_eq!(det.render(), pool.render(), "pool report must match");
    assert_eq!(det.completed_ids, pool.completed_ids);
    assert_eq!(det.assignments, pool.assignments);
    assert_eq!(det.completed_ids, threaded.completed_ids);
    assert_eq!(det.assignments, threaded.assignments);
    assert_eq!(det.records_stored, threaded.records_stored);
}
