//! Integration tests: the full pipeline across every crate — simulated
//! devices → collectors → classifier/store → broker → analyzers →
//! interface grid.

use agentgrid_suite::net::{Device, DeviceKind, FaultKind, Network, ScheduledFault};
use agentgrid_suite::ManagementGrid;

const ALL_SKILLS: [&str; 8] = [
    "cpu",
    "memory",
    "disk",
    "interface",
    "process",
    "system",
    "other",
    "correlation",
];

fn network(sites: usize, per_site: usize, seed: u64) -> Network {
    let mut net = Network::new();
    for s in 0..sites {
        for d in 0..per_site {
            let kind = match d % 3 {
                0 => DeviceKind::Router,
                1 => DeviceKind::Switch,
                _ => DeviceKind::Server,
            };
            net.add_device(
                Device::builder(format!("s{s}d{d}"), kind)
                    .site(format!("site-{s}"))
                    .seed(seed + (s * 100 + d) as u64)
                    .build(),
            );
        }
    }
    net
}

#[test]
fn every_fault_kind_is_detected_by_its_rule() {
    let cases = [
        (FaultKind::CpuRunaway, "high-cpu"),
        (FaultKind::LinkDown(1), "link-down"),
        (FaultKind::DiskFilling, "disk-pressure"),
        (FaultKind::MemoryLeak, "memory-pressure"),
        (FaultKind::Unreachable, "device-unreachable"),
    ];
    for (fault, expected_rule) in cases {
        let mut grid = ManagementGrid::builder()
            .network(network(1, 3, 7))
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .fault(ScheduledFault::from("s0d2", fault, 2 * 60_000))
            .build();
        // Long enough for ramp faults (disk fills ~2 %/min) to cross
        // their thresholds.
        let report = grid.run(40 * 60_000, 60_000);
        assert!(
            report
                .alerts
                .iter()
                .any(|a| a.rule == expected_rule && a.device == "s0d2"),
            "fault {fault} must raise `{expected_rule}`; got rules {:?}",
            report
                .alerts
                .iter()
                .map(|a| a.rule.as_str())
                .collect::<std::collections::BTreeSet<_>>()
        );
    }
}

#[test]
fn trend_rule_catches_disk_filling_before_the_threshold() {
    // A slow-filling disk trips the level-2 trend rule (slope) even in
    // the window where the absolute used-pct threshold has not yet been
    // crossed.
    let mut grid = ManagementGrid::builder()
        .network(network(1, 3, 57))
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .fault(ScheduledFault::from(
            "s0d2",
            FaultKind::DiskFilling,
            2 * 60_000,
        ))
        .build();
    let report = grid.run(20 * 60_000, 60_000);
    let trend_alert = report
        .alerts
        .iter()
        .find(|a| a.rule == "disk-filling-fast" && a.device == "s0d2");
    assert!(trend_alert.is_some(), "alerts: {:?}", report.alerts);
}

#[test]
fn healthy_network_raises_no_critical_alerts() {
    let mut grid = ManagementGrid::builder()
        .network(network(1, 3, 99))
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .build();
    let report = grid.run(5 * 60_000, 60_000);
    use agentgrid_suite::acl::ontology::Severity;
    assert!(
        report
            .alerts
            .iter()
            .all(|a| a.severity != Severity::Critical),
        "unexpected critical alerts: {:?}",
        report.alerts
    );
}

#[test]
fn multi_site_data_is_integrated_in_one_store() {
    let mut grid = ManagementGrid::builder()
        .network(network(3, 2, 17))
        .collectors_per_site(2)
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .build();
    grid.run(3 * 60_000, 60_000);
    let store = grid.store();
    let store = store.lock();
    // Devices of all three sites are present in the single shared store
    // — the integration Fig. 5 architectures lack.
    for site in ["site-0", "site-1", "site-2"] {
        assert!(
            store.devices_at(site).count() > 0,
            "store must hold {site} devices"
        );
    }
}

#[test]
fn grid_pipeline_conserves_tasks_and_messages() {
    let mut grid = ManagementGrid::builder()
        .network(network(2, 3, 31))
        .collectors_per_site(2)
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .analyzer("pg-2", 2.0, ALL_SKILLS)
        .build();
    let report = grid.run(10 * 60_000, 60_000);
    assert_eq!(report.dead_letters, 0, "no message may be lost");
    assert_eq!(
        report.unassigned, 0,
        "every partition has a skilled container"
    );
    assert_eq!(
        report.tasks_completed,
        report.assignments.len() as u64,
        "every brokered task completes"
    );
    // Records keep flowing: 10 polls × devices × metrics.
    assert!(report.records_stored >= 6 * 10);
}

#[test]
fn collectors_with_different_interfaces_feed_identical_partitions() {
    // Two collectors (SNMP + CLI via collectors_per_site=2) must produce
    // records that classify into the same partition set.
    let mut grid = ManagementGrid::builder()
        .network(network(1, 4, 23))
        .collectors_per_site(2)
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .build();
    grid.run(2 * 60_000, 60_000);
    let store = grid.store();
    let store = store.lock();
    let partitions = store.partitions();
    for expected in ["cpu", "disk", "memory", "interface", "process"] {
        assert!(
            partitions.contains(&expected),
            "partition {expected} missing from {partitions:?}"
        );
    }
}

#[test]
fn incremental_runs_accumulate_consistently() {
    let mut grid = ManagementGrid::builder()
        .network(network(1, 3, 41))
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .build();
    let first = grid.run(3 * 60_000, 60_000);
    let second = grid.run(3 * 60_000, 60_000);
    assert!(second.records_stored > first.records_stored);
    assert!(second.assignments.len() > first.assignments.len());
}
