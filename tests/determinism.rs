//! Reproducibility and end-to-end robustness properties of the whole
//! system.

use agentgrid_suite::net::{Device, DeviceKind, FaultKind, Network, ScheduledFault};
use agentgrid_suite::ManagementGrid;
use proptest::prelude::*;

const ALL_SKILLS: [&str; 8] = [
    "cpu",
    "memory",
    "disk",
    "interface",
    "process",
    "system",
    "other",
    "correlation",
];

fn network(devices: usize, seed: u64) -> Network {
    let mut net = Network::new();
    for d in 0..devices {
        let kind = match d % 3 {
            0 => DeviceKind::Router,
            1 => DeviceKind::Switch,
            _ => DeviceKind::Server,
        };
        net.add_device(
            Device::builder(format!("dev-{d}"), kind)
                .site("hq")
                .seed(seed + d as u64)
                .build(),
        );
    }
    net
}

fn run_once(seed: u64, minutes: u64) -> agentgrid_suite::GridReport {
    let mut grid = ManagementGrid::builder()
        .network(network(4, seed))
        .collectors_per_site(2)
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .analyzer("pg-2", 2.0, ALL_SKILLS)
        .fault(ScheduledFault::from(
            "dev-2",
            FaultKind::CpuRunaway,
            2 * 60_000,
        ))
        .build();
    grid.run(minutes * 60_000, 60_000)
}

/// The Figure-2 experiment's grid, reconstructed here so the test pins
/// the same shape `repro fig2` runs: two sites of four devices, two
/// collectors per site, two analyzers, a CPU fault and a link fault.
fn fig2_builder(
    store: agentgrid_suite::store::StoreBackend,
) -> agentgrid_suite::core::grid::GridBuilder {
    let mut net = Network::new();
    for s in 0..2 {
        let site = format!("site-{s}");
        for d in 0..4 {
            let kind = match d % 3 {
                0 => DeviceKind::Router,
                1 => DeviceKind::Switch,
                _ => DeviceKind::Server,
            };
            net.add_device(
                Device::builder(format!("{site}-dev{d}"), kind)
                    .site(&site)
                    .seed(11u64.wrapping_add((s * 100 + d) as u64))
                    .build(),
            );
        }
    }
    ManagementGrid::builder()
        .network(net)
        .store_backend(store)
        .collectors_per_site(2)
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .analyzer("pg-2", 1.0, ALL_SKILLS)
        .fault(ScheduledFault::from(
            "site-0-dev2",
            FaultKind::CpuRunaway,
            120_000,
        ))
        .fault(ScheduledFault::from(
            "site-1-dev0",
            FaultKind::LinkDown(2),
            180_000,
        ))
}

/// Two same-seed Figure-2 runs must diff clean — the rendered report is
/// compared as a whole string, the same artifact `repro fig2` prints —
/// on every runtime, at the strongest level each one guarantees. The
/// stepper and the work-stealing pool document byte-identical reports
/// (to themselves and to each other), so any nondeterminism the chunked
/// store introduced would surface here. The threaded runtime schedules
/// on real OS threads, so its task *division* is timing-dependent by
/// design; what it does guarantee — simulated-clock monitoring coverage
/// and lossless completion — must still match run to run.
#[test]
fn fig2_runs_diff_clean_across_all_three_runtimes() {
    use agentgrid_suite::store::StoreBackend;

    let horizon = 10 * 60_000;
    let stepper = || {
        fig2_builder(StoreBackend::Chunked)
            .build()
            .run(horizon, 60_000)
            .render()
    };
    let pool = || {
        fig2_builder(StoreBackend::Chunked)
            .build_pool()
            .run(horizon, 60_000)
            .render()
    };
    let threaded = || {
        fig2_builder(StoreBackend::Chunked)
            .build_threaded()
            .run(horizon, 60_000)
    };

    let reference_report = fig2_builder(StoreBackend::Chunked)
        .build()
        .run(horizon, 60_000);
    let reference = reference_report.render();
    assert!(!reference.is_empty(), "the report must render something");
    assert_eq!(reference, stepper(), "stepper: same seed, same report");
    assert_eq!(pool(), pool(), "pool: same seed, same report");
    assert_eq!(reference, pool(), "stepper and pool must diff clean");

    let (a, b) = (threaded(), threaded());
    assert_eq!(
        a.records_stored, b.records_stored,
        "threaded: clock-driven monitoring coverage must match"
    );
    // Collection is driven by the simulated clock on every runtime, so
    // the threaded grid stores exactly the stepper's points too.
    assert_eq!(a.records_stored, reference_report.records_stored);
    assert_eq!(a.tasks_completed, b.tasks_completed);
    assert_eq!(a.assignments.len(), b.assignments.len());
    assert_eq!((a.dead_letters, a.unassigned), (0, 0));
    assert_eq!((b.dead_letters, b.unassigned), (0, 0));
}

/// The record-per-point naive engine is the executable spec of the
/// chunked engine: a grid run on either backend must render the exact
/// same report (CI's store-parity smoke diffs the real `repro fig2`
/// output the same way).
#[test]
fn fig2_report_is_identical_on_chunked_and_naive_backends() {
    use agentgrid_suite::store::StoreBackend;

    let run = |store| {
        fig2_builder(store)
            .build()
            .run(10 * 60_000, 60_000)
            .render()
    };
    assert_eq!(run(StoreBackend::Chunked), run(StoreBackend::Naive));
}

#[test]
fn identical_configurations_produce_identical_runs() {
    let a = run_once(33, 8);
    let b = run_once(33, 8);
    assert_eq!(a.records_stored, b.records_stored);
    assert_eq!(a.messages_delivered, b.messages_delivered);
    assert_eq!(a.assignments, b.assignments);
    assert_eq!(a.alerts.len(), b.alerts.len());
    for (x, y) in a.alerts.iter().zip(&b.alerts) {
        assert_eq!(x, y, "alert streams must match exactly");
    }
}

#[test]
fn different_seeds_produce_different_telemetry() {
    let a = run_once(1, 5);
    let b = run_once(2, 5);
    // Structure matches (same topology) but the sampled values differ,
    // which shows the seed actually drives the generators.
    assert_eq!(a.records_stored, b.records_stored);
    assert_ne!(
        a.alerts, b.alerts,
        "different metric streams should alert differently (statistically certain)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever fault schedule is thrown at it, the grid never loses
    /// messages, never leaves a task unfinished, and keeps storing data.
    #[test]
    fn grid_is_robust_to_arbitrary_fault_schedules(
        seed in 0u64..1000,
        faults in prop::collection::vec(
            (0usize..4, 0u8..5, 1u64..10, 0u64..8),
            0..6,
        ),
    ) {
        let mut builder = ManagementGrid::builder()
            .network(network(4, seed))
            .collectors_per_site(2)
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS);
        for (device, kind, start_min, duration_min) in faults {
            let fault = match kind {
                0 => FaultKind::CpuRunaway,
                1 => FaultKind::LinkDown(1),
                2 => FaultKind::DiskFilling,
                3 => FaultKind::MemoryLeak,
                _ => FaultKind::Unreachable,
            };
            let mut scheduled =
                ScheduledFault::from(format!("dev-{device}"), fault, start_min * 60_000);
            if duration_min > 0 {
                scheduled = scheduled.until((start_min + duration_min) * 60_000);
            }
            builder = builder.fault(scheduled);
        }
        let mut grid = builder.build();
        let report = grid.run(12 * 60_000, 60_000);
        prop_assert_eq!(report.dead_letters, 0);
        prop_assert_eq!(report.unassigned, 0);
        prop_assert_eq!(report.tasks_completed, report.assignments.len() as u64);
        prop_assert!(report.records_stored > 0);
    }
}
