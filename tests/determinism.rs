//! Reproducibility and end-to-end robustness properties of the whole
//! system.

use agentgrid_suite::net::{Device, DeviceKind, FaultKind, Network, ScheduledFault};
use agentgrid_suite::ManagementGrid;
use proptest::prelude::*;

const ALL_SKILLS: [&str; 8] = [
    "cpu",
    "memory",
    "disk",
    "interface",
    "process",
    "system",
    "other",
    "correlation",
];

fn network(devices: usize, seed: u64) -> Network {
    let mut net = Network::new();
    for d in 0..devices {
        let kind = match d % 3 {
            0 => DeviceKind::Router,
            1 => DeviceKind::Switch,
            _ => DeviceKind::Server,
        };
        net.add_device(
            Device::builder(format!("dev-{d}"), kind)
                .site("hq")
                .seed(seed + d as u64)
                .build(),
        );
    }
    net
}

fn run_once(seed: u64, minutes: u64) -> agentgrid_suite::GridReport {
    let mut grid = ManagementGrid::builder()
        .network(network(4, seed))
        .collectors_per_site(2)
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .analyzer("pg-2", 2.0, ALL_SKILLS)
        .fault(ScheduledFault::from(
            "dev-2",
            FaultKind::CpuRunaway,
            2 * 60_000,
        ))
        .build();
    grid.run(minutes * 60_000, 60_000)
}

#[test]
fn identical_configurations_produce_identical_runs() {
    let a = run_once(33, 8);
    let b = run_once(33, 8);
    assert_eq!(a.records_stored, b.records_stored);
    assert_eq!(a.messages_delivered, b.messages_delivered);
    assert_eq!(a.assignments, b.assignments);
    assert_eq!(a.alerts.len(), b.alerts.len());
    for (x, y) in a.alerts.iter().zip(&b.alerts) {
        assert_eq!(x, y, "alert streams must match exactly");
    }
}

#[test]
fn different_seeds_produce_different_telemetry() {
    let a = run_once(1, 5);
    let b = run_once(2, 5);
    // Structure matches (same topology) but the sampled values differ,
    // which shows the seed actually drives the generators.
    assert_eq!(a.records_stored, b.records_stored);
    assert_ne!(
        a.alerts, b.alerts,
        "different metric streams should alert differently (statistically certain)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever fault schedule is thrown at it, the grid never loses
    /// messages, never leaves a task unfinished, and keeps storing data.
    #[test]
    fn grid_is_robust_to_arbitrary_fault_schedules(
        seed in 0u64..1000,
        faults in prop::collection::vec(
            (0usize..4, 0u8..5, 1u64..10, 0u64..8),
            0..6,
        ),
    ) {
        let mut builder = ManagementGrid::builder()
            .network(network(4, seed))
            .collectors_per_site(2)
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS);
        for (device, kind, start_min, duration_min) in faults {
            let fault = match kind {
                0 => FaultKind::CpuRunaway,
                1 => FaultKind::LinkDown(1),
                2 => FaultKind::DiskFilling,
                3 => FaultKind::MemoryLeak,
                _ => FaultKind::Unreachable,
            };
            let mut scheduled =
                ScheduledFault::from(format!("dev-{device}"), fault, start_min * 60_000);
            if duration_min > 0 {
                scheduled = scheduled.until((start_min + duration_min) * 60_000);
            }
            builder = builder.fault(scheduled);
        }
        let mut grid = builder.build();
        let report = grid.run(12 * 60_000, 60_000);
        prop_assert_eq!(report.dead_letters, 0);
        prop_assert_eq!(report.unassigned, 0);
        prop_assert_eq!(report.tasks_completed, report.assignments.len() as u64);
        prop_assert!(report.records_stored > 0);
    }
}
