//! The same agent implementations that power the deterministic grid run
//! unmodified on the threaded (one-OS-thread-per-container) runtime.

use std::sync::Arc;

use agentgrid_suite::acl::ontology::{CollectedBatch, Observation, ToContent};
use agentgrid_suite::acl::{AclMessage, AgentId, Performative};
use agentgrid_suite::core::grid::{AnalyzerAgent, ClassifierAgent, InterfaceAgent, DEFAULT_RULES};
use agentgrid_suite::platform::threaded::ThreadedPlatform;
use agentgrid_suite::rules::{parse_rules, KnowledgeBase};
use agentgrid_suite::store::ManagementStore;
use parking_lot::Mutex;

#[test]
fn classify_analyze_alert_pipeline_works_across_threads() {
    let store = Arc::new(Mutex::new(ManagementStore::default()));
    let alerts = Arc::new(Mutex::new(Vec::new()));
    let kb = KnowledgeBase::from_rules(parse_rules(DEFAULT_RULES).unwrap());

    let mut platform = ThreadedPlatform::new("rt");
    platform.add_container("clg");
    platform.add_container("pg-1");
    platform.add_container("ig");

    let interface_id = platform
        .spawn("ig", "interface", InterfaceAgent::new(Arc::clone(&alerts)))
        .unwrap();
    let analyzer_id = platform
        .spawn(
            "pg-1",
            "analyzer",
            AnalyzerAgent::new(Arc::clone(&store), kb, interface_id),
        )
        .unwrap();
    // The classifier notifies a root agent; here we point it at the
    // analyzer directly — the analyzer ignores `data-ready` content, so
    // the notification simply dead-letters nothing and proves routing.
    let classifier_id = platform
        .spawn(
            "clg",
            "classifier",
            ClassifierAgent::new(Arc::clone(&store), analyzer_id.clone()),
        )
        .unwrap();

    let mut handle = platform.start();

    // A hot-CPU batch arrives from a (simulated) collector.
    let batch = CollectedBatch::new(
        "b1",
        "collector-x",
        "hq",
        vec![
            Observation::new("srv-1", "cpu.load.1", 97.0, 1_000),
            Observation::new("srv-2", "cpu.load.1", 12.0, 1_000),
        ],
    );
    let inform = AclMessage::builder(Performative::Inform)
        .sender(AgentId::new("collector-x@rt"))
        .receiver(classifier_id)
        .content(batch.to_content())
        .build()
        .unwrap();
    handle.post(inform);
    assert!(handle.wait_idle(), "pipeline must quiesce");

    // The classifier stored both observations (visible cross-thread).
    assert_eq!(store.lock().len(), 2);

    // Now hand the analyzer a task directly, as the root would.
    let task = agentgrid_suite::acl::ontology::AnalysisTask::new("t1", "cpu", "cpu", 1, 2);
    let request = AclMessage::builder(Performative::Request)
        .sender(AgentId::new("pg-root@rt"))
        .receiver(analyzer_id)
        .reply_with("task-t1")
        .content(task.to_content())
        .build()
        .unwrap();
    handle.post(request);
    assert!(handle.wait_idle(), "analysis must quiesce");

    let stats = handle.shutdown();
    let alerts = alerts.lock();
    assert_eq!(alerts.len(), 1, "only srv-1 is hot");
    assert_eq!(alerts[0].rule, "high-cpu");
    assert_eq!(alerts[0].device, "srv-1");
    // batch→classifier, data-ready→analyzer (ignored), task→analyzer,
    // alert→interface all delivered; the done-reply to the absent root
    // dead-letters.
    assert!(stats.delivered >= 4);
    assert_eq!(stats.dead_letters.len(), 1);
}

/// A message to an unknown agent must appear in `shutdown().dead_letters`
/// exactly once — the router used to clone per receiver and containers
/// re-scanned the full receiver list, so multicasts could duplicate.
#[test]
fn unknown_receiver_dead_letters_exactly_once() {
    use agentgrid_suite::platform::{Agent, AgentCtx};
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Sink {
        hits: Arc<AtomicUsize>,
    }
    impl Agent for Sink {
        fn on_message(&mut self, _msg: &AclMessage, _ctx: &mut AgentCtx<'_>) {
            self.hits.fetch_add(1, Ordering::SeqCst);
        }
    }

    let hits = Arc::new(AtomicUsize::new(0));
    let mut platform = ThreadedPlatform::new("rt");
    platform.add_container("a");
    // Two residents of ONE container: the regression case where a
    // per-receiver clone plus a full receiver-list scan in the container
    // delivered (and dead-lettered) multicasts more than once.
    let s1 = platform
        .spawn(
            "a",
            "s1",
            Sink {
                hits: Arc::clone(&hits),
            },
        )
        .unwrap();
    let s2 = platform
        .spawn(
            "a",
            "s2",
            Sink {
                hits: Arc::clone(&hits),
            },
        )
        .unwrap();
    let mut handle = platform.start();

    let multicast = AclMessage::builder(Performative::Inform)
        .sender(AgentId::new("driver"))
        .receiver(s1)
        .receiver(s2)
        .receiver(AgentId::new("ghost@rt"))
        .build()
        .unwrap();
    handle.post(multicast);
    assert!(handle.wait_idle(), "must quiesce");

    let stats = handle.shutdown();
    assert_eq!(
        hits.load(Ordering::SeqCst),
        2,
        "each live receiver hears the multicast exactly once"
    );
    assert_eq!(stats.delivered, 2);
    assert_eq!(
        stats.dead_letters.len(),
        1,
        "the unknown receiver dead-letters exactly once"
    );
    assert_eq!(stats.dead_letters[0].receivers().len(), 3);
}

/// A handler stuck in one container must not stall routing into other
/// containers. The router used to hold the `routes` mutex across its
/// whole delivery loop; it now resolves receivers under the lock, drops
/// it, and only then hands batches to container threads — so a slow
/// container can back up its own inbox but never the router.
#[test]
fn slow_handler_does_not_block_unrelated_routing() {
    use agentgrid_suite::platform::{Agent, AgentCtx};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    const SLOW_HANDLER: Duration = Duration::from_millis(800);

    struct Slow;
    impl Agent for Slow {
        fn on_message(&mut self, _msg: &AclMessage, _ctx: &mut AgentCtx<'_>) {
            std::thread::sleep(SLOW_HANDLER);
        }
    }
    struct Flag {
        hit: Arc<AtomicBool>,
    }
    impl Agent for Flag {
        fn on_message(&mut self, _msg: &AclMessage, _ctx: &mut AgentCtx<'_>) {
            self.hit.store(true, Ordering::SeqCst);
        }
    }

    let hit = Arc::new(AtomicBool::new(false));
    let mut platform = ThreadedPlatform::new("rt");
    platform.add_container("busy");
    platform.add_container("idle");
    let slow_id = platform.spawn("busy", "slow", Slow).unwrap();
    let fast_id = platform
        .spawn(
            "idle",
            "fast",
            Flag {
                hit: Arc::clone(&hit),
            },
        )
        .unwrap();
    let mut handle = platform.start();

    let to = |receiver: &AgentId| {
        AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("driver"))
            .receiver(receiver.clone())
            .build()
            .unwrap()
    };
    let start = Instant::now();
    handle.post(to(&slow_id));
    // Give the router time to hand the slow message over, so the busy
    // container is provably inside its handler when the next message
    // goes through the router.
    std::thread::sleep(Duration::from_millis(100));
    handle.post(to(&fast_id));
    let deadline = start + SLOW_HANDLER;
    while !hit.load(Ordering::SeqCst) {
        assert!(
            Instant::now() < deadline,
            "routing to the idle container stalled behind the busy one"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        start.elapsed() < SLOW_HANDLER,
        "the fast delivery must complete while the slow handler still runs"
    );
    assert!(handle.wait_idle(), "must quiesce");
    let stats = handle.shutdown();
    assert_eq!(stats.delivered, 2);
}
