//! Chaos tests for the recovery layer: seeded crash/restart schedules
//! and transport-fault windows against the recovering grid.
//!
//! The properties under test are the recovery layer's contract:
//!
//! * **no task is permanently lost** — every assigned task either
//!   completes or is still tracked (in flight or parked) at the horizon;
//! * **exactly-once re-brokering** — for every task id, the assignment
//!   log holds exactly `1 + (times the id was re-brokered)` entries;
//! * **dead letters stay bounded** — undeliverable mail is proportional
//!   to the traffic aimed at dead containers, never unbounded.

use agentgrid_suite::core::chaos::ChaosPlan;
use agentgrid_suite::core::recovery::RecoveryConfig;
use agentgrid_suite::net::{Device, DeviceKind, FaultKind, Network, ScheduledFault};
use agentgrid_suite::platform::ReliabilityConfig;
use agentgrid_suite::{GridReport, ManagementGrid};
use proptest::prelude::*;
use std::collections::BTreeMap;

const ALL_SKILLS: [&str; 8] = [
    "cpu",
    "memory",
    "disk",
    "interface",
    "process",
    "system",
    "other",
    "correlation",
];

fn network(devices: usize, seed: u64) -> Network {
    let mut net = Network::new();
    for d in 0..devices {
        let kind = match d % 3 {
            0 => DeviceKind::Router,
            1 => DeviceKind::Switch,
            _ => DeviceKind::Server,
        };
        net.add_device(
            Device::builder(format!("dev-{d}"), kind)
                .site("hq")
                .seed(seed + d as u64)
                .build(),
        );
    }
    net
}

/// `assignments(id) == 1 + rebrokered(id)` for every task id: a task is
/// first-awarded exactly once, and every further award corresponds to
/// exactly one logged re-brokering.
fn assert_exactly_once(report: &GridReport) {
    let mut awards: BTreeMap<&str, usize> = BTreeMap::new();
    for (id, _) in &report.assignments {
        *awards.entry(id).or_insert(0) += 1;
    }
    let mut rebrokered: BTreeMap<&str, usize> = BTreeMap::new();
    for id in &report.rebrokered {
        *rebrokered.entry(id).or_insert(0) += 1;
    }
    for (id, count) in &awards {
        assert_eq!(
            *count,
            1 + rebrokered.get(id).copied().unwrap_or(0),
            "task {id}: every award beyond the first must be a logged re-brokering"
        );
    }
    for id in rebrokered.keys() {
        assert!(
            awards.contains_key(id),
            "re-brokered task {id} never appears in the assignment log"
        );
    }
}

/// No assigned task may vanish: it completed, or it is still tracked.
fn assert_nothing_lost(report: &GridReport) {
    let lost = report.lost_tasks();
    assert!(
        lost.is_empty(),
        "tasks permanently lost: {lost:?} (assigned {} / completed {} / outstanding {})",
        report.assignments.len(),
        report.completed_ids.len(),
        report.outstanding.len(),
    );
    // Completion dedup: a retried task may report done twice, but it
    // must be counted once.
    let mut seen = std::collections::BTreeSet::new();
    for id in &report.completed_ids {
        assert!(seen.insert(id), "task {id} counted complete twice");
    }
}

#[test]
fn seeded_crash_mid_scenario_loses_nothing_and_rebrokers_exactly_once() {
    // Seed 42's plan crashes an analyzer at minute 2 and restarts it at
    // minute 5 — tasks in flight on the victim must finish elsewhere.
    let plan = ChaosPlan::seeded(42, &["pg-1".into(), "pg-2".into()], 20 * 60_000);
    assert!(!plan.is_empty(), "seed 42 must schedule failures");
    let mut grid = ManagementGrid::builder()
        .network(network(4, 7))
        .collectors_per_site(2)
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .analyzer("pg-2", 1.0, ALL_SKILLS)
        .recovery(RecoveryConfig::seeded(42))
        .chaos(plan)
        .build();
    let report = grid.run(20 * 60_000, 60_000);

    assert_nothing_lost(&report);
    assert_exactly_once(&report);
    assert!(
        !report.rebrokered.is_empty(),
        "the crash must strand at least one in-flight task"
    );
    // Every reclaimed task actually finished somewhere.
    for id in &report.rebrokered {
        assert!(
            report.completed_ids.contains(id),
            "re-brokered task {id} never completed"
        );
    }
    // The death was escalated to the interface grid.
    assert!(report.escalations >= 1);
    assert!(
        report.alerts.iter().any(|a| a.rule == "container-dead"),
        "death alert must surface"
    );
}

#[test]
fn restarted_container_rejoins_the_brokering_pool() {
    let plan = ChaosPlan::new()
        .crash_at(2 * 60_000, "pg-1")
        .restart_at(7 * 60_000, "pg-1");
    let mut grid = ManagementGrid::builder()
        .network(network(3, 3))
        .collectors_per_site(1)
        .analyzer("pg-1", 4.0, ALL_SKILLS)
        .analyzer("pg-2", 1.0, ALL_SKILLS)
        .recovery(RecoveryConfig::seeded(1))
        .chaos(plan)
        .build();
    let report = grid.run(20 * 60_000, 60_000);

    assert_nothing_lost(&report);
    assert_exactly_once(&report);
    // After the restart the (higher-capacity) victim receives awards
    // again: some assignment to pg-1 must postdate one to pg-2 that was
    // made while pg-1 was down. Cheap proxy: pg-1 appears in the last
    // quarter of the assignment log.
    let tail = &report.assignments[report.assignments.len() * 3 / 4..];
    assert!(
        tail.iter().any(|(_, c)| c == "pg-1"),
        "restarted container never rejoined: tail {tail:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Whatever seeded crash schedule and topology chaos throws at the
    /// recovering grid, no task is permanently lost, re-brokering is
    /// exactly-once, and dead letters stay bounded by the traffic aimed
    /// at dead containers.
    #[test]
    fn recovery_holds_under_random_seeds_and_topologies(
        chaos_seed in 0u64..500,
        net_seed in 0u64..100,
        devices in 2usize..6,
        analyzers in 2usize..4,
        horizon_min in 12u64..24,
    ) {
        let containers: Vec<String> =
            (1..=analyzers).map(|i| format!("pg-{i}")).collect();
        let plan = ChaosPlan::seeded(chaos_seed, &containers, horizon_min * 60_000);
        let mut builder = ManagementGrid::builder()
            .network(network(devices, net_seed))
            .collectors_per_site(2)
            .recovery(RecoveryConfig::seeded(chaos_seed))
            .chaos(plan);
        for name in &containers {
            builder = builder.analyzer(name, 1.0, ALL_SKILLS);
        }
        let mut grid = builder.build();
        let report = grid.run(horizon_min * 60_000, 60_000);

        assert_nothing_lost(&report);
        assert_exactly_once(&report);
        prop_assert_eq!(report.unassigned, 0);
        prop_assert!(report.records_stored > 0);
        // Dead letters only come from mail aimed at a dead container
        // (awards, retries) plus its own undeliverable replies — each
        // requeued once, so at most 2 undeliverable messages per such
        // send. Bound by the observable recovery traffic.
        let recovery_traffic =
            report.retries + report.rebrokered.len() as u64 + report.escalations;
        prop_assert!(
            (report.dead_letters as u64) <= 2 * (recovery_traffic + 4),
            "dead letters unbounded: {} vs traffic {}",
            report.dead_letters,
            recovery_traffic,
        );
    }
}

/// Conservation under the full network adversary: 64 seeded fault
/// plans (probabilistic loss and duplication on every link, delay +
/// jitter + reordering into one analyzer, a named partition that
/// heals) against reliable delivery and the recovery layer. For every
/// seed no task is permanently lost, re-brokering stays exactly-once,
/// and the Alert-class traffic survives end-to-end — the device fault
/// injected mid-run must surface at the interface grid despite the
/// adversary. Every eighth seed additionally replays on the
/// deterministic stepper and the pool runtime to prove the whole
/// misbehavior sequence is a pure function of the seed.
#[test]
fn network_adversary_with_reliability_loses_nothing_across_64_seeds() {
    let horizon = 15 * 60_000;
    let containers: Vec<String> = ["pg-1", "pg-2", "pg-root-ct", "clg", "ig", "cg-hq"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    for seed in 0..64u64 {
        let plan = ChaosPlan::seeded_net(seed, &containers, horizon);
        assert!(!plan.is_empty(), "seed {seed} must schedule faults");
        let build = || {
            ManagementGrid::builder()
                .network(network(4, seed))
                .collectors_per_site(2)
                .analyzer("pg-1", 1.0, ALL_SKILLS)
                .analyzer("pg-2", 1.0, ALL_SKILLS)
                .recovery(RecoveryConfig::seeded(seed))
                .net_adversary(seed)
                .reliability(ReliabilityConfig::seeded(seed))
                .chaos(plan.clone())
                // dev-2 is a server: its runaway CPU must alert through
                // the lossy network — reliable delivery lands every
                // Alert-class message.
                .fault(ScheduledFault::from(
                    "dev-2",
                    FaultKind::CpuRunaway,
                    120_000,
                ))
        };
        let report = build().build().run(horizon, 60_000);
        assert_nothing_lost(&report);
        assert_exactly_once(&report);
        assert_eq!(report.unassigned, 0, "seed {seed}");
        assert!(
            report
                .alerts
                .iter()
                .any(|a| a.rule == "high-cpu" && a.device == "dev-2"),
            "seed {seed}: the device fault's alert was lost to the adversary"
        );
        let net = report.net.expect("adversary configured");
        assert!(
            net.dropped + net.partition_dropped + net.delayed + net.duplicated > 0,
            "seed {seed}: the adversary never interfered — the run proves nothing"
        );
        if seed % 8 == 0 {
            let replay = build().build().run(horizon, 60_000);
            assert_eq!(
                report.render(),
                replay.render(),
                "seed {seed}: deterministic replay diverged"
            );
            assert_eq!(report.assignments, replay.assignments, "seed {seed}");
            assert_eq!(report.completed_ids, replay.completed_ids, "seed {seed}");
            let pool = build().build_pool().run(horizon, 60_000);
            assert_eq!(
                report.render(),
                pool.render(),
                "seed {seed}: pool runtime diverged from the stepper"
            );
            assert_eq!(report.assignments, pool.assignments, "seed {seed}");
            assert_eq!(report.completed_ids, pool.completed_ids, "seed {seed}");
        }
    }
}

/// The work-stealing pool runtime under the same seeded chaos plan: the
/// recovery contract holds unchanged, and the report renders
/// byte-identically to the deterministic stepper. Also the scenario the
/// CI ThreadSanitizer job drives, so the pool's steal/merge phase runs
/// under a data-race detector with containers dying mid-run.
#[test]
fn pool_runtime_survives_chaos_and_matches_the_stepper() {
    let horizon = 20 * 60_000;
    let plan = ChaosPlan::seeded(42, &["pg-1".into(), "pg-2".into()], horizon);
    assert!(!plan.is_empty(), "seed 42 must schedule failures");
    let builder = || {
        ManagementGrid::builder()
            .network(network(4, 7))
            .collectors_per_site(2)
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS)
            .recovery(RecoveryConfig::seeded(42))
            .chaos(plan.clone())
    };
    let pool = builder().build_pool().run(horizon, 60_000);
    let det = builder().build().run(horizon, 60_000);

    assert_nothing_lost(&pool);
    assert_exactly_once(&pool);
    assert!(
        !pool.rebrokered.is_empty(),
        "the crash must force at least one re-brokering"
    );
    assert_eq!(
        det.render(),
        pool.render(),
        "pool must render byte-identically to the stepper under chaos"
    );
    assert_eq!(det.assignments, pool.assignments);
    assert_eq!(det.completed_ids, pool.completed_ids);
}
