//! End-to-end task spans: one span per brokered analysis task.
//!
//! The conversation tracer records per-hop spans; this module stitches
//! the hops of one task into a single timeline keyed by task id —
//! collector observation (the classifier's `data-ready` timestamp) →
//! root creation → award → analyzer verdict (`done`). All timestamps are
//! **simulated time**, so the resulting latencies are deterministic for
//! a seeded run and identical across the deterministic and pool
//! runtimes; wall-clock stamps are kept alongside purely for the
//! Perfetto timeline.
//!
//! The store is populated by the grid root (the only agent that sees a
//! task's full lifecycle) and read by `GridReport` (p50/p95/p99) and the
//! Perfetto exporter.

use std::collections::BTreeMap;
use std::time::Instant;

use parking_lot::Mutex;

/// One task's stitched timeline, simulated-time fields throughout
/// except the `wall_*` pair.
#[derive(Clone, Debug)]
pub struct TaskSpan {
    /// Task id (`t1`, `t2`, …).
    pub task: String,
    /// When the underlying data was observed — the classifier's
    /// `data-ready` timestamp (falls back to creation time when the
    /// notification carried none).
    pub observed_ms: u64,
    /// When the root created the task.
    pub created_ms: u64,
    /// When the task was last awarded to a container.
    pub awarded_ms: Option<u64>,
    /// Container holding the most recent award.
    pub container: Option<String>,
    /// Times the task was re-awarded after its first award.
    pub reawards: u32,
    /// When the analyzer's `done` report cleared the task.
    pub done_ms: Option<u64>,
    /// Wall-clock µs (store epoch) at creation — Perfetto only.
    pub wall_created_us: u64,
    /// Wall-clock µs (store epoch) at completion — Perfetto only.
    pub wall_done_us: Option<u64>,
}

impl TaskSpan {
    /// End-to-end simulated latency: observation → done. `None` until
    /// the task completes.
    pub fn latency_ms(&self) -> Option<u64> {
        self.done_ms
            .map(|done| done.saturating_sub(self.observed_ms))
    }
}

/// Deterministic percentile summary of completed task spans
/// (nearest-rank over the exact simulated latencies — not a bucket
/// approximation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskLatencySummary {
    /// Completed spans the percentiles cover.
    pub count: u64,
    /// Median latency, ms of simulated time.
    pub p50_ms: u64,
    /// 95th percentile latency.
    pub p95_ms: u64,
    /// 99th percentile latency.
    pub p99_ms: u64,
}

/// Nearest-rank percentile over a **sorted** slice.
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (pct * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// The task-span store behind the [`Telemetry`](crate::Telemetry)
/// facade. Always on when telemetry is attached: one `BTreeMap` entry
/// per task is orders of magnitude below the conversation tracer's
/// footprint.
pub struct TaskSpanStore {
    epoch: Instant,
    inner: Mutex<BTreeMap<String, TaskSpan>>,
}

impl std::fmt::Debug for TaskSpanStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSpanStore")
            .field("tasks", &self.inner.lock().len())
            .finish()
    }
}

impl Default for TaskSpanStore {
    fn default() -> Self {
        TaskSpanStore {
            epoch: Instant::now(),
            inner: Mutex::new(BTreeMap::new()),
        }
    }
}

impl TaskSpanStore {
    /// Opens the span for a freshly created task. `observed_ms` anchors
    /// the span at the data's observation time.
    pub fn task_created(&self, task: &str, observed_ms: u64, now_ms: u64) {
        let wall_created_us = self.epoch.elapsed().as_micros() as u64;
        self.inner
            .lock()
            .entry(task.to_owned())
            .or_insert(TaskSpan {
                task: task.to_owned(),
                observed_ms: observed_ms.min(now_ms),
                created_ms: now_ms,
                awarded_ms: None,
                container: None,
                reawards: 0,
                done_ms: None,
                wall_created_us,
                wall_done_us: None,
            });
    }

    /// Records an award (or re-award) of `task` to `container`.
    pub fn task_awarded(&self, task: &str, container: &str, now_ms: u64, reaward: bool) {
        let mut inner = self.inner.lock();
        let Some(span) = inner.get_mut(task) else {
            return;
        };
        span.awarded_ms = Some(now_ms);
        span.container = Some(container.to_owned());
        if reaward {
            span.reawards += 1;
        }
    }

    /// Closes `task`'s span at its `done` report; returns the
    /// end-to-end simulated latency for histogram observation. Repeat
    /// completions (a retried request answered twice) return `None`.
    pub fn task_done(&self, task: &str, now_ms: u64) -> Option<u64> {
        let wall_done_us = self.epoch.elapsed().as_micros() as u64;
        let mut inner = self.inner.lock();
        let span = inner.get_mut(task)?;
        if span.done_ms.is_some() {
            return None;
        }
        span.done_ms = Some(now_ms);
        span.wall_done_us = Some(wall_done_us);
        span.latency_ms()
    }

    /// All spans, by task id order.
    pub fn spans(&self) -> Vec<TaskSpan> {
        self.inner.lock().values().cloned().collect()
    }

    /// The sorted latencies of completed spans (ms of simulated time) —
    /// the exact data behind [`summary`](Self::summary), exposed so
    /// parity tests can compare whole distributions.
    pub fn completed_latencies(&self) -> Vec<u64> {
        let mut latencies: Vec<u64> = self
            .inner
            .lock()
            .values()
            .filter_map(TaskSpan::latency_ms)
            .collect();
        latencies.sort_unstable();
        latencies
    }

    /// Deterministic p50/p95/p99 over completed spans; `None` until at
    /// least one task completed.
    pub fn summary(&self) -> Option<TaskLatencySummary> {
        let latencies = self.completed_latencies();
        if latencies.is_empty() {
            return None;
        }
        Some(TaskLatencySummary {
            count: latencies.len() as u64,
            p50_ms: percentile(&latencies, 50),
            p95_ms: percentile(&latencies, 95),
            p99_ms: percentile(&latencies, 99),
        })
    }

    /// Number of tracked tasks (completed or not).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no task was ever tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_yields_latency_once() {
        let store = TaskSpanStore::default();
        store.task_created("t1", 60_000, 60_000);
        store.task_awarded("t1", "pg-1", 60_000, false);
        assert_eq!(store.task_done("t1", 180_000), Some(120_000));
        assert_eq!(store.task_done("t1", 240_000), None, "second done ignored");
        let span = &store.spans()[0];
        assert_eq!(span.container.as_deref(), Some("pg-1"));
        assert_eq!(span.reawards, 0);
        assert_eq!(span.latency_ms(), Some(120_000));
    }

    #[test]
    fn reawards_are_counted() {
        let store = TaskSpanStore::default();
        store.task_created("t1", 0, 0);
        store.task_awarded("t1", "pg-1", 0, false);
        store.task_awarded("t1", "pg-2", 120_000, true);
        let span = &store.spans()[0];
        assert_eq!(span.reawards, 1);
        assert_eq!(span.container.as_deref(), Some("pg-2"));
    }

    #[test]
    fn summary_is_nearest_rank_and_deterministic() {
        let store = TaskSpanStore::default();
        for (i, latency) in [0u64, 0, 0, 60_000].iter().enumerate() {
            let task = format!("t{i}");
            store.task_created(&task, 0, 0);
            store.task_done(&task, *latency);
        }
        let summary = store.summary().unwrap();
        assert_eq!(summary.count, 4);
        assert_eq!(summary.p50_ms, 0);
        assert_eq!(summary.p95_ms, 60_000);
        assert_eq!(summary.p99_ms, 60_000);
    }

    #[test]
    fn empty_store_has_no_summary() {
        let store = TaskSpanStore::default();
        assert!(store.summary().is_none());
        store.task_created("t1", 0, 0);
        assert!(store.summary().is_none(), "uncompleted tasks excluded");
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[1, 2], 50), 1);
        assert_eq!(percentile(&[1, 2], 99), 2);
    }
}
