//! Conversation tracing: per-hop spans over FIPA-ACL message flow.
//!
//! Every `(message, receiver)` pair becomes one [`Span`] recording the
//! enqueue → deliver → handle timeline on the simulated clock, the
//! handler's wall-clock busy time, and a parent link to the span whose
//! handling produced the message. Runtimes report the causal parent
//! explicitly (they know which message an agent was handling when it
//! sent), so a Type-C request can be followed collector → classifier →
//! analyzer → interface even though the agents never set a
//! `conversation_id` themselves.
//!
//! Conversations are keyed by the message's declared
//! [`conversation_id`](agentgrid_acl::AclMessage::conversation_id) when
//! present; otherwise children inherit the root span's synthetic
//! `conv-<id>` key, so one cascade groups under one key either way.
//!
//! In-flight spans are looked up by the message's shared-allocation
//! identity (the `Arc` pointer) plus the receiver. The tracer retains a
//! clone of every traced message until [`clear`](ConversationTracer::clear),
//! which keeps those allocations alive and therefore keeps pointer keys
//! unique. A capacity cap bounds memory: past it, new spans are counted
//! as dropped instead of recorded.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use agentgrid_acl::{AgentId, SharedMessage};
use parking_lot::Mutex;

/// Identifier of one span (unique within a tracer).
pub type SpanId = u64;

/// Default maximum number of spans retained by a tracer.
pub const DEFAULT_SPAN_CAPACITY: usize = 100_000;

/// One hop of one conversation: a message en route to one receiver.
#[derive(Clone, Debug)]
pub struct Span {
    /// Unique id within the tracer.
    pub id: SpanId,
    /// The span whose handling produced this message, if any.
    pub parent: Option<SpanId>,
    /// Conversation key (declared `conversation_id` or inherited
    /// synthetic key).
    pub conversation: String,
    /// Sending agent.
    pub sender: String,
    /// Receiving agent this span tracks.
    pub receiver: String,
    /// FIPA performative of the message.
    pub performative: String,
    /// Container that hosted the receiver, once delivered.
    pub container: Option<String>,
    /// Simulated time the message was enqueued for routing.
    pub enqueued_ms: u64,
    /// Simulated time the message reached the receiver's mailbox.
    pub delivered_ms: Option<u64>,
    /// Simulated time the receiver finished handling it.
    pub handled_ms: Option<u64>,
    /// Wall-clock nanoseconds the receiver's handler ran.
    pub busy_ns: u64,
    /// Whether the receiver was unreachable.
    pub dead_lettered: bool,
}

#[derive(Default)]
struct TracerInner {
    next_id: SpanId,
    spans: BTreeMap<SpanId, Span>,
    /// `(allocation identity, receiver)` → span, for hops whose
    /// delivery/handling is still ahead.
    pending: BTreeMap<(usize, String), SpanId>,
    /// Clones that keep traced allocations (and thus pointer keys)
    /// alive.
    retained: Vec<SharedMessage>,
    dropped: u64,
}

/// Records spans; shared by reference between runtime internals and the
/// exporting caller.
pub struct ConversationTracer {
    inner: Mutex<TracerInner>,
    capacity: usize,
}

impl std::fmt::Debug for ConversationTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ConversationTracer")
            .field("spans", &inner.spans.len())
            .field("dropped", &inner.dropped)
            .finish()
    }
}

impl Default for ConversationTracer {
    fn default() -> Self {
        ConversationTracer::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

fn message_key(message: &SharedMessage) -> usize {
    Arc::as_ptr(message) as usize
}

impl ConversationTracer {
    /// Creates a tracer retaining at most `capacity` spans.
    pub fn with_capacity(capacity: usize) -> Self {
        ConversationTracer {
            inner: Mutex::new(TracerInner::default()),
            capacity,
        }
    }

    /// Records that `message` was enqueued for routing, creating one
    /// span per receiver. `parent` is the span being handled when the
    /// send happened (`None` for external posts and tick/setup sends).
    /// Returns the number of spans the capacity cap dropped during
    /// *this* call (0 in the common case), so the caller can surface
    /// drops instead of losing them silently.
    pub fn on_send(&self, message: &SharedMessage, parent: Option<SpanId>, now_ms: u64) -> u64 {
        let mut inner = self.inner.lock();
        let mut dropped_now = 0u64;
        let parent_conversation = parent
            .and_then(|id| inner.spans.get(&id))
            .map(|span| span.conversation.clone());
        for receiver in message.receivers() {
            if inner.spans.len() >= self.capacity {
                inner.dropped += 1;
                dropped_now += 1;
                continue;
            }
            let id = inner.next_id;
            inner.next_id += 1;
            let conversation = message
                .conversation_id()
                .map(|c| c.as_str().to_owned())
                .or_else(|| parent_conversation.clone())
                .unwrap_or_else(|| format!("conv-{id}"));
            inner.spans.insert(
                id,
                Span {
                    id,
                    parent,
                    conversation,
                    sender: message.sender().to_string(),
                    receiver: receiver.to_string(),
                    performative: message.performative().to_string(),
                    container: None,
                    enqueued_ms: now_ms,
                    delivered_ms: None,
                    handled_ms: None,
                    busy_ns: 0,
                    dead_lettered: false,
                },
            );
            inner
                .pending
                .insert((message_key(message), receiver.to_string()), id);
            inner.retained.push(SharedMessage::clone(message));
        }
        dropped_now
    }

    /// Marks the hop to `receiver` as delivered into `container`'s
    /// mailbox.
    pub fn on_deliver(
        &self,
        message: &SharedMessage,
        receiver: &AgentId,
        container: &str,
        now_ms: u64,
    ) {
        let mut inner = self.inner.lock();
        let key = (message_key(message), receiver.to_string());
        if let Some(id) = inner.pending.get(&key).copied() {
            if let Some(span) = inner.spans.get_mut(&id) {
                span.delivered_ms = Some(now_ms);
                span.container = Some(container.to_owned());
            }
        }
    }

    /// Marks the hop to `receiver` as dead-lettered and closes it.
    pub fn on_dead_letter(&self, message: &SharedMessage, receiver: &AgentId, now_ms: u64) {
        let mut inner = self.inner.lock();
        let key = (message_key(message), receiver.to_string());
        if let Some(id) = inner.pending.remove(&key) {
            if let Some(span) = inner.spans.get_mut(&id) {
                span.dead_lettered = true;
                span.handled_ms = Some(now_ms);
            }
        }
    }

    /// Claims the span for `receiver`'s handling of `message`; returns
    /// it so the runtime can report sends made during the handler as
    /// children, then close it with
    /// [`finish_handle`](Self::finish_handle).
    pub fn start_handle(&self, message: &SharedMessage, receiver: &AgentId) -> Option<SpanId> {
        let mut inner = self.inner.lock();
        inner
            .pending
            .remove(&(message_key(message), receiver.to_string()))
    }

    /// The simulated enqueue time of a span, if it exists.
    pub fn enqueued_ms(&self, span: SpanId) -> Option<u64> {
        self.inner.lock().spans.get(&span).map(|s| s.enqueued_ms)
    }

    /// Closes a claimed span with its handling time.
    pub fn finish_handle(&self, span: SpanId, now_ms: u64, busy_ns: u64) {
        let mut inner = self.inner.lock();
        if let Some(span) = inner.spans.get_mut(&span) {
            span.handled_ms = Some(now_ms);
            span.busy_ns = busy_ns;
        }
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.inner.lock().spans.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans not recorded because the capacity cap was reached.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// All spans, by id (creation) order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.lock().spans.values().cloned().collect()
    }

    /// Distinct conversation keys, sorted.
    pub fn conversations(&self) -> Vec<String> {
        let inner = self.inner.lock();
        let mut keys: Vec<String> = inner
            .spans
            .values()
            .map(|s| s.conversation.clone())
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// The spans of one conversation, by id order.
    pub fn conversation_spans(&self, conversation: &str) -> Vec<Span> {
        self.inner
            .lock()
            .spans
            .values()
            .filter(|s| s.conversation == conversation)
            .cloned()
            .collect()
    }

    /// Discards all spans, pending hops and retained messages.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        *inner = TracerInner::default();
    }

    /// Renders the span tree of one conversation: indentation is causal
    /// depth, each line showing `sender -> receiver [container]
    /// performative` with the enqueue/deliver/handle timeline.
    pub fn render_tree(&self, conversation: &str) -> String {
        let spans = self.conversation_spans(conversation);
        let mut children: BTreeMap<Option<SpanId>, Vec<&Span>> = BTreeMap::new();
        let ids: std::collections::BTreeSet<SpanId> = spans.iter().map(|s| s.id).collect();
        for span in &spans {
            // A parent outside this conversation (or missing) makes the
            // span a root of this tree.
            let parent = span.parent.filter(|p| ids.contains(p));
            children.entry(parent).or_default().push(span);
        }
        let mut out = format!("conversation {conversation}\n");
        fn walk(
            out: &mut String,
            children: &BTreeMap<Option<SpanId>, Vec<&Span>>,
            parent: Option<SpanId>,
            depth: usize,
        ) {
            let Some(list) = children.get(&parent) else {
                return;
            };
            for span in list {
                let status = if span.dead_lettered {
                    " DEAD-LETTER".to_owned()
                } else {
                    let delivered = span.delivered_ms.map_or("?".to_owned(), |t| t.to_string());
                    let handled = span.handled_ms.map_or("?".to_owned(), |t| t.to_string());
                    format!(
                        " enqueued@{} delivered@{delivered} handled@{handled} busy {}ns",
                        span.enqueued_ms, span.busy_ns
                    )
                };
                let container = span.container.as_deref().unwrap_or("-");
                let _ = writeln!(
                    out,
                    "{:indent$}{} -> {} [{container}] {}{status}",
                    "",
                    span.sender,
                    span.receiver,
                    span.performative,
                    indent = depth * 2,
                );
                walk(out, children, Some(span.id), depth + 1);
            }
        }
        walk(&mut out, &children, None, 1);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentgrid_acl::{AclMessage, ConversationId, Performative, Value};

    fn msg(from: &str, to: &[&str]) -> SharedMessage {
        let mut builder = AclMessage::builder(Performative::Inform).sender(AgentId::new(from));
        for to in to {
            builder = builder.receiver(AgentId::new(*to));
        }
        builder
            .content(Value::symbol("x"))
            .build()
            .unwrap()
            .into_shared()
    }

    #[test]
    fn send_deliver_handle_lifecycle() {
        let tracer = ConversationTracer::default();
        let m = msg("a", &["b"]);
        tracer.on_send(&m, None, 10);
        tracer.on_deliver(&m, &AgentId::new("b"), "c1", 10);
        let span = tracer.start_handle(&m, &AgentId::new("b")).unwrap();
        tracer.finish_handle(span, 10, 1234);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.enqueued_ms, 10);
        assert_eq!(s.delivered_ms, Some(10));
        assert_eq!(s.handled_ms, Some(10));
        assert_eq!(s.busy_ns, 1234);
        assert_eq!(s.container.as_deref(), Some("c1"));
        // A second claim of the same hop finds nothing.
        assert!(tracer.start_handle(&m, &AgentId::new("b")).is_none());
    }

    #[test]
    fn children_inherit_the_root_conversation() {
        let tracer = ConversationTracer::default();
        let root = msg("collector", &["classifier"]);
        tracer.on_send(&root, None, 0);
        tracer.on_deliver(&root, &AgentId::new("classifier"), "clg", 0);
        let parent = tracer
            .start_handle(&root, &AgentId::new("classifier"))
            .unwrap();
        let child = msg("classifier", &["root"]);
        tracer.on_send(&child, Some(parent), 0);
        tracer.finish_handle(parent, 0, 0);

        let conversations = tracer.conversations();
        assert_eq!(conversations.len(), 1, "{conversations:?}");
        let spans = tracer.conversation_spans(&conversations[0]);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent, Some(spans[0].id));
    }

    #[test]
    fn declared_conversation_id_wins() {
        let tracer = ConversationTracer::default();
        let m = AclMessage::builder(Performative::Request)
            .sender(AgentId::new("a"))
            .receiver(AgentId::new("b"))
            .conversation(ConversationId::new("cfp-7"))
            .build()
            .unwrap()
            .into_shared();
        tracer.on_send(&m, None, 0);
        assert_eq!(tracer.conversations(), vec!["cfp-7".to_owned()]);
    }

    #[test]
    fn multicast_creates_one_span_per_receiver() {
        let tracer = ConversationTracer::default();
        let m = msg("a", &["b", "c"]);
        tracer.on_send(&m, None, 5);
        assert_eq!(tracer.len(), 2);
        tracer.on_dead_letter(&m, &AgentId::new("c"), 5);
        let spans = tracer.spans();
        assert!(spans.iter().any(|s| s.receiver == "c" && s.dead_lettered));
        assert!(spans.iter().any(|s| s.receiver == "b" && !s.dead_lettered));
    }

    #[test]
    fn capacity_caps_spans_and_counts_drops() {
        let tracer = ConversationTracer::with_capacity(2);
        assert_eq!(tracer.on_send(&msg("a", &["b"]), None, 0), 0);
        assert_eq!(tracer.on_send(&msg("a", &["b"]), None, 0), 0);
        assert_eq!(
            tracer.on_send(&msg("a", &["b"]), None, 0),
            1,
            "drops are reported per call"
        );
        assert_eq!(tracer.len(), 2);
        assert_eq!(tracer.dropped(), 1);
        tracer.clear();
        assert!(tracer.is_empty());
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn render_tree_shows_causal_depth() {
        let tracer = ConversationTracer::default();
        let root = msg("collector", &["classifier"]);
        tracer.on_send(&root, None, 0);
        tracer.on_deliver(&root, &AgentId::new("classifier"), "clg", 0);
        let parent = tracer
            .start_handle(&root, &AgentId::new("classifier"))
            .unwrap();
        let child = msg("classifier", &["pg-root"]);
        tracer.on_send(&child, Some(parent), 0);
        tracer.finish_handle(parent, 0, 9);
        let tree = tracer.render_tree(&tracer.conversations()[0]);
        assert!(tree.contains("collector -> classifier [clg]"));
        assert!(tree.contains("\n    classifier -> pg-root"), "{tree}");
    }
}
