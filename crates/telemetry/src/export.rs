//! Export of a metrics [`Snapshot`]: Prometheus text format and a JSON
//! document, both dependency-free.

use std::fmt::Write as _;

use crate::metrics::{SampleValue, Snapshot};

/// Escapes a Prometheus label value: backslash, double quote and
/// newline, per the text-format spec.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders the snapshot in the Prometheus text exposition format.
/// Histograms expand into cumulative `_bucket` series plus `_sum` and
/// `_count`.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for sample in &snapshot.samples {
        match &sample.value {
            SampleValue::Counter(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {v}",
                    sample.name,
                    label_block(&sample.labels, None)
                );
            }
            SampleValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {v}",
                    sample.name,
                    label_block(&sample.labels, None)
                );
            }
            SampleValue::Histogram {
                bounds,
                buckets,
                sum,
                count,
            } => {
                let mut cumulative = 0u64;
                for (bound, bucket) in bounds.iter().zip(buckets) {
                    cumulative += bucket;
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cumulative}",
                        sample.name,
                        label_block(&sample.labels, Some(("le", &bound.to_string()))),
                    );
                }
                cumulative += buckets.last().copied().unwrap_or(0);
                let _ = writeln!(
                    out,
                    "{}_bucket{} {cumulative}",
                    sample.name,
                    label_block(&sample.labels, Some(("le", "+Inf"))),
                );
                let _ = writeln!(
                    out,
                    "{}_sum{} {sum}",
                    sample.name,
                    label_block(&sample.labels, None)
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {count}",
                    sample.name,
                    label_block(&sample.labels, None)
                );
            }
        }
    }
    out
}

/// Escapes a string for embedding in a JSON string literal: quote,
/// backslash, and all control characters below `0x20`.
pub fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            other => out.push(other),
        }
    }
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

fn json_u64_array(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

/// Renders the snapshot as one JSON document:
/// `{"samples":[{"name":...,"labels":{...},"type":...,...}]}`.
pub fn to_json(snapshot: &Snapshot) -> String {
    let mut entries = Vec::with_capacity(snapshot.samples.len());
    for sample in &snapshot.samples {
        let body = match &sample.value {
            SampleValue::Counter(v) => format!("\"type\":\"counter\",\"value\":{v}"),
            SampleValue::Gauge(v) => format!("\"type\":\"gauge\",\"value\":{v}"),
            SampleValue::Histogram {
                bounds,
                buckets,
                sum,
                count,
            } => format!(
                "\"type\":\"histogram\",\"bounds\":{},\"buckets\":{},\"sum\":{sum},\"count\":{count}",
                json_u64_array(bounds),
                json_u64_array(buckets),
            ),
        };
        entries.push(format!(
            "{{\"name\":\"{}\",\"labels\":{},{body}}}",
            json_escape(&sample.name),
            json_labels(&sample.labels),
        ));
    }
    format!("{{\"samples\":[{}]}}", entries.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn prometheus_renders_counters_and_gauges_with_labels() {
        let registry = MetricsRegistry::new();
        registry
            .counter("msgs_total", &[("container", "pg-1")])
            .add(3);
        registry.gauge("depth", &[]).set(-2);
        let text = to_prometheus(&registry.snapshot());
        assert!(text.contains("msgs_total{container=\"pg-1\"} 3"));
        assert!(text.contains("depth -2"));
    }

    #[test]
    fn prometheus_escapes_label_values() {
        assert_eq!(escape_label_value(r#"a\b"#), r#"a\\b"#);
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        let registry = MetricsRegistry::new();
        registry
            .counter("esc_total", &[("path", "c:\\x\n\"q\"")])
            .inc();
        let text = to_prometheus(&registry.snapshot());
        assert!(
            text.contains(r#"esc_total{path="c:\\x\n\"q\""} 1"#),
            "{text}"
        );
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative_with_inf() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat_ms", &[], &[10, 100]);
        h.observe(0);
        h.observe(50);
        h.observe(1_000);
        let text = to_prometheus(&registry.snapshot());
        assert!(text.contains("lat_ms_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_ms_bucket{le=\"100\"} 2"));
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ms_sum 1050"));
        assert!(text.contains("lat_ms_count 3"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let registry = MetricsRegistry::new();
        registry.counter("a_total", &[("k", "v\"w\\x\ny")]).add(7);
        registry.histogram("h", &[], &[5]).observe(3);
        let json = to_json(&registry.snapshot());
        assert!(json.starts_with("{\"samples\":["));
        assert!(json.contains("\"type\":\"counter\",\"value\":7"));
        assert!(json.contains(r#""k":"v\"w\\x\ny""#), "{json}");
        assert!(json.contains("\"bounds\":[5],\"buckets\":[1,0]"));
        // No raw control characters may survive escaping.
        assert!(!json.chars().any(|c| (c as u32) < 0x20));
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let snapshot = Snapshot::default();
        assert_eq!(to_prometheus(&snapshot), "");
        assert_eq!(to_json(&snapshot), "{\"samples\":[]}");
    }

    /// Property tests: arbitrary label values — including control
    /// characters, quotes and backslashes — must round-trip through the
    /// escapers without producing invalid Prometheus text or invalid
    /// JSON. The JSON check *parses* the output with a dependency-free
    /// recursive-descent validator rather than pattern-matching it.
    mod properties {
        use super::*;
        use crate::metrics::MetricsRegistry;
        use proptest::prelude::*;

        /// Inverse of [`escape_label_value`]; errors on raw newlines or
        /// dangling/unknown escapes.
        fn prom_unescape(escaped: &str) -> Result<String, String> {
            let mut out = String::new();
            let mut chars = escaped.chars();
            while let Some(c) = chars.next() {
                match c {
                    '\n' => return Err("raw newline in label value".into()),
                    '\\' => match chars.next() {
                        Some('\\') => out.push('\\'),
                        Some('"') => out.push('"'),
                        Some('n') => out.push('\n'),
                        other => return Err(format!("bad escape {other:?}")),
                    },
                    other => out.push(other),
                }
            }
            Ok(out)
        }

        /// Inverse of [`json_escape`] for the escapes it produces.
        fn json_unescape(escaped: &str) -> Result<String, String> {
            let mut out = String::new();
            let mut chars = escaped.chars();
            while let Some(c) = chars.next() {
                if (c as u32) < 0x20 {
                    return Err("raw control character".into());
                }
                if c != '\\' {
                    out.push(c);
                    continue;
                }
                match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let hex: String = (0..4)
                            .map(|_| chars.next().ok_or("short \\u escape"))
                            .collect::<Result<_, _>>()?;
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
            }
            Ok(out)
        }

        /// Minimal recursive-descent JSON syntax validator (the
        /// workspace bans JSON dependencies, so the test carries its
        /// own parser).
        fn json_ok(text: &str) -> Result<(), String> {
            let chars: Vec<char> = text.chars().collect();
            let mut i = 0;
            parse_value(&chars, &mut i)?;
            skip_ws(&chars, &mut i);
            if i != chars.len() {
                return Err(format!("trailing data at char {i}"));
            }
            Ok(())
        }

        fn skip_ws(chars: &[char], i: &mut usize) {
            while chars
                .get(*i)
                .is_some_and(|c| matches!(c, ' ' | '\t' | '\n' | '\r'))
            {
                *i += 1;
            }
        }

        fn expect(chars: &[char], i: &mut usize, want: char) -> Result<(), String> {
            if chars.get(*i) == Some(&want) {
                *i += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected {want:?} at char {i}, got {:?}",
                    chars.get(*i)
                ))
            }
        }

        fn parse_value(chars: &[char], i: &mut usize) -> Result<(), String> {
            skip_ws(chars, i);
            match chars.get(*i) {
                Some('{') => parse_object(chars, i),
                Some('[') => parse_array(chars, i),
                Some('"') => parse_string(chars, i),
                Some('t') => parse_literal(chars, i, "true"),
                Some('f') => parse_literal(chars, i, "false"),
                Some('n') => parse_literal(chars, i, "null"),
                Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(chars, i),
                other => Err(format!("unexpected {other:?} at char {i}")),
            }
        }

        fn parse_object(chars: &[char], i: &mut usize) -> Result<(), String> {
            expect(chars, i, '{')?;
            skip_ws(chars, i);
            if chars.get(*i) == Some(&'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(chars, i);
                parse_string(chars, i)?;
                skip_ws(chars, i);
                expect(chars, i, ':')?;
                parse_value(chars, i)?;
                skip_ws(chars, i);
                match chars.get(*i) {
                    Some(',') => *i += 1,
                    Some('}') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected , or }} got {other:?}")),
                }
            }
        }

        fn parse_array(chars: &[char], i: &mut usize) -> Result<(), String> {
            expect(chars, i, '[')?;
            skip_ws(chars, i);
            if chars.get(*i) == Some(&']') {
                *i += 1;
                return Ok(());
            }
            loop {
                parse_value(chars, i)?;
                skip_ws(chars, i);
                match chars.get(*i) {
                    Some(',') => *i += 1,
                    Some(']') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected , or ] got {other:?}")),
                }
            }
        }

        fn parse_string(chars: &[char], i: &mut usize) -> Result<(), String> {
            expect(chars, i, '"')?;
            while let Some(&c) = chars.get(*i) {
                *i += 1;
                match c {
                    '"' => return Ok(()),
                    '\\' => match chars.get(*i) {
                        Some('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') => *i += 1,
                        Some('u') => {
                            *i += 1;
                            for _ in 0..4 {
                                if !chars.get(*i).is_some_and(char::is_ascii_hexdigit) {
                                    return Err("bad \\u escape".into());
                                }
                                *i += 1;
                            }
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    },
                    c if (c as u32) < 0x20 => {
                        return Err(format!("raw control char {:#04x} in string", c as u32))
                    }
                    _ => {}
                }
            }
            Err("unterminated string".into())
        }

        fn parse_number(chars: &[char], i: &mut usize) -> Result<(), String> {
            if chars.get(*i) == Some(&'-') {
                *i += 1;
            }
            let digits_from = *i;
            while chars.get(*i).is_some_and(char::is_ascii_digit) {
                *i += 1;
            }
            if *i == digits_from {
                return Err("number without digits".into());
            }
            if chars.get(*i) == Some(&'.') {
                *i += 1;
                while chars.get(*i).is_some_and(char::is_ascii_digit) {
                    *i += 1;
                }
            }
            if matches!(chars.get(*i), Some('e' | 'E')) {
                *i += 1;
                if matches!(chars.get(*i), Some('+' | '-')) {
                    *i += 1;
                }
                while chars.get(*i).is_some_and(char::is_ascii_digit) {
                    *i += 1;
                }
            }
            Ok(())
        }

        fn parse_literal(chars: &[char], i: &mut usize, word: &str) -> Result<(), String> {
            for want in word.chars() {
                expect(chars, i, want)?;
            }
            Ok(())
        }

        #[test]
        fn validator_accepts_and_rejects_correctly() {
            assert!(json_ok(r#"{"a":[1,-2.5e3,"x\n",true,null],"b":{}}"#).is_ok());
            assert!(json_ok(r#"{"a":1,}"#).is_err());
            assert!(json_ok("{\"a\":\"raw\ncontrol\"}").is_err());
            assert!(json_ok(r#"{"a":"\q"}"#).is_err());
            assert!(json_ok(r#"{"a":1} trailing"#).is_err());
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // `.` draws printable ASCII (quotes and backslashes
            // included) plus multi-byte characters; the class splices
            // in raw control characters the dot never produces.
            #[test]
            fn label_values_round_trip_through_both_escapers(
                printable in ".{0,24}",
                nasty in "[\u{0}-\u{1f}\"\\\\`{}é ]{0,16}",
            ) {
                let value = format!("{printable}{nasty}");

                // Prometheus: escaping is invertible and newline-free.
                let escaped = escape_label_value(&value);
                prop_assert!(!escaped.contains('\n'));
                prop_assert_eq!(prom_unescape(&escaped).unwrap(), value.clone());

                // JSON: escaping is invertible, control-char-free, and
                // embedding it in a string literal stays parseable.
                let jescaped = json_escape(&value);
                prop_assert_eq!(json_unescape(&jescaped).unwrap(), value.clone());
                prop_assert!(json_ok(&format!("{{\"v\":\"{jescaped}\"}}")).is_ok());
            }

            #[test]
            fn exports_stay_well_formed_for_any_label_value(
                printable in ".{0,24}",
                nasty in "[\u{0}-\u{1f}\"\\\\`{}é ]{0,16}",
            ) {
                let value = format!("{printable}{nasty}");
                let registry = MetricsRegistry::new();
                registry.counter("prop_total", &[("k", &value)]).add(3);
                registry.histogram("prop_ms", &[("k", &value)], &[10]).observe(4);
                let snapshot = registry.snapshot();

                // The counter's Prometheus line structure survives any
                // label value: one line, ending in the count, with the
                // original value recoverable from between the quotes.
                let text = to_prometheus(&snapshot);
                let line = text
                    .lines()
                    .find(|l| l.starts_with("prop_total{"))
                    .expect("counter line present");
                let quoted = line
                    .strip_prefix("prop_total{k=\"")
                    .and_then(|rest| rest.strip_suffix("\"} 3"))
                    .expect("line matches name{k=\"...\"} value");
                prop_assert_eq!(prom_unescape(quoted).unwrap(), value.clone());

                // The whole JSON document must parse.
                let json = to_json(&snapshot);
                prop_assert!(json_ok(&json).is_ok(), "invalid JSON: {}", json);
                prop_assert!(!json.chars().any(|c| (c as u32) < 0x20));
            }

            /// The network EventKinds carry free-form link and
            /// partition names into the Perfetto export — spans and
            /// instants alike must survive any value and still render
            /// a parseable trace document.
            #[test]
            fn chrome_trace_stays_well_formed_for_any_net_event_value(
                printable in ".{0,24}",
                nasty in "[\u{0}-\u{1f}\"\\\\`{}é ]{0,16}",
            ) {
                use crate::events::EventKind;
                let value = format!("{printable}{nasty}");
                let telemetry = crate::Telemetry::new();
                telemetry.flight_recorder().enable();
                let recorder = telemetry.flight_recorder();
                recorder.record(1_000, EventKind::Delayed { link: value.clone(), ms: 250 });
                recorder.record(2_000, EventKind::Duplicated { link: value.clone() });
                recorder.record(3_000, EventKind::Retransmit { link: value.clone(), attempt: 2 });
                // One healed partition (span) and one left open
                // (unhealed span) named by the raw value.
                recorder.record(4_000, EventKind::PartitionOpen { name: value.clone() });
                recorder.record(5_000, EventKind::PartitionHeal { name: value.clone() });
                recorder.record(6_000, EventKind::PartitionOpen { name: value.clone() });
                let trace = crate::perfetto::chrome_trace(&telemetry);
                prop_assert!(json_ok(&trace).is_ok(), "invalid JSON: {}", trace);
                prop_assert!(!trace.chars().any(|c| (c as u32) < 0x20));
            }
        }
    }
}
