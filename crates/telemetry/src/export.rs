//! Export of a metrics [`Snapshot`]: Prometheus text format and a JSON
//! document, both dependency-free.

use std::fmt::Write as _;

use crate::metrics::{SampleValue, Snapshot};

/// Escapes a Prometheus label value: backslash, double quote and
/// newline, per the text-format spec.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders the snapshot in the Prometheus text exposition format.
/// Histograms expand into cumulative `_bucket` series plus `_sum` and
/// `_count`.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for sample in &snapshot.samples {
        match &sample.value {
            SampleValue::Counter(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {v}",
                    sample.name,
                    label_block(&sample.labels, None)
                );
            }
            SampleValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {v}",
                    sample.name,
                    label_block(&sample.labels, None)
                );
            }
            SampleValue::Histogram {
                bounds,
                buckets,
                sum,
                count,
            } => {
                let mut cumulative = 0u64;
                for (bound, bucket) in bounds.iter().zip(buckets) {
                    cumulative += bucket;
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cumulative}",
                        sample.name,
                        label_block(&sample.labels, Some(("le", &bound.to_string()))),
                    );
                }
                cumulative += buckets.last().copied().unwrap_or(0);
                let _ = writeln!(
                    out,
                    "{}_bucket{} {cumulative}",
                    sample.name,
                    label_block(&sample.labels, Some(("le", "+Inf"))),
                );
                let _ = writeln!(
                    out,
                    "{}_sum{} {sum}",
                    sample.name,
                    label_block(&sample.labels, None)
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {count}",
                    sample.name,
                    label_block(&sample.labels, None)
                );
            }
        }
    }
    out
}

fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            other => out.push(other),
        }
    }
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

fn json_u64_array(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

/// Renders the snapshot as one JSON document:
/// `{"samples":[{"name":...,"labels":{...},"type":...,...}]}`.
pub fn to_json(snapshot: &Snapshot) -> String {
    let mut entries = Vec::with_capacity(snapshot.samples.len());
    for sample in &snapshot.samples {
        let body = match &sample.value {
            SampleValue::Counter(v) => format!("\"type\":\"counter\",\"value\":{v}"),
            SampleValue::Gauge(v) => format!("\"type\":\"gauge\",\"value\":{v}"),
            SampleValue::Histogram {
                bounds,
                buckets,
                sum,
                count,
            } => format!(
                "\"type\":\"histogram\",\"bounds\":{},\"buckets\":{},\"sum\":{sum},\"count\":{count}",
                json_u64_array(bounds),
                json_u64_array(buckets),
            ),
        };
        entries.push(format!(
            "{{\"name\":\"{}\",\"labels\":{},{body}}}",
            json_escape(&sample.name),
            json_labels(&sample.labels),
        ));
    }
    format!("{{\"samples\":[{}]}}", entries.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn prometheus_renders_counters_and_gauges_with_labels() {
        let registry = MetricsRegistry::new();
        registry
            .counter("msgs_total", &[("container", "pg-1")])
            .add(3);
        registry.gauge("depth", &[]).set(-2);
        let text = to_prometheus(&registry.snapshot());
        assert!(text.contains("msgs_total{container=\"pg-1\"} 3"));
        assert!(text.contains("depth -2"));
    }

    #[test]
    fn prometheus_escapes_label_values() {
        assert_eq!(escape_label_value(r#"a\b"#), r#"a\\b"#);
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        let registry = MetricsRegistry::new();
        registry
            .counter("esc_total", &[("path", "c:\\x\n\"q\"")])
            .inc();
        let text = to_prometheus(&registry.snapshot());
        assert!(
            text.contains(r#"esc_total{path="c:\\x\n\"q\""} 1"#),
            "{text}"
        );
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative_with_inf() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat_ms", &[], &[10, 100]);
        h.observe(0);
        h.observe(50);
        h.observe(1_000);
        let text = to_prometheus(&registry.snapshot());
        assert!(text.contains("lat_ms_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_ms_bucket{le=\"100\"} 2"));
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ms_sum 1050"));
        assert!(text.contains("lat_ms_count 3"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let registry = MetricsRegistry::new();
        registry.counter("a_total", &[("k", "v\"w\\x\ny")]).add(7);
        registry.histogram("h", &[], &[5]).observe(3);
        let json = to_json(&registry.snapshot());
        assert!(json.starts_with("{\"samples\":["));
        assert!(json.contains("\"type\":\"counter\",\"value\":7"));
        assert!(json.contains(r#""k":"v\"w\\x\ny""#), "{json}");
        assert!(json.contains("\"bounds\":[5],\"buckets\":[1,0]"));
        // No raw control characters may survive escaping.
        assert!(!json.chars().any(|c| (c as u32) < 0x20));
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let snapshot = Snapshot::default();
        assert_eq!(to_prometheus(&snapshot), "");
        assert_eq!(to_json(&snapshot), "{\"samples\":[]}");
    }
}
