//! Chrome-trace / Perfetto JSON export and the pool runtime profiler.
//!
//! [`chrome_trace`] renders everything the telemetry facade holds into
//! one JSON document in the Chrome trace-event format, loadable directly
//! in `ui.perfetto.dev` (or `chrome://tracing`). The document carries
//! up to three synthetic processes:
//!
//! * **pid 1 — simulated time**: task spans (one complete event per
//!   task, observation → done), conversation spans (one lane per
//!   destination container) and flight-recorder instants. Timestamps
//!   are simulated milliseconds rendered as microseconds, so the
//!   timeline reads in grid time and is identical across runtimes.
//! * **pid 2 — pool wall clock**: the [`PoolProfiler`]'s phase slices
//!   (route / tick / merge, lane 0) and per-worker job slices (lane
//!   `1 + worker`). Timestamps are real microseconds since the
//!   profiler's epoch; gaps between job slices on a worker lane are its
//!   idle time, and stolen jobs are flagged in the event args.
//! * **pid 3 — network adversary** (simulated time, present only when
//!   the adversary fired): each named partition renders as one
//!   complete span from open to heal on the `partitions` lane, and
//!   delays, duplications and retransmissions render as instants on
//!   the `adversary` lane.
//!
//! The profiler is disabled by default and costs one relaxed atomic
//! load per check, preserving the byte-identical-default discipline.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::events::EventKind;
use crate::export::json_escape;
use crate::Telemetry;

/// One job executed by a pool worker during a tick phase.
#[derive(Clone, Debug)]
pub struct WorkerSlice {
    /// Worker index within the phase (lane `1 + worker` in the trace).
    pub worker: usize,
    /// Container the job ticked.
    pub container: String,
    /// Start, µs since the profiler's epoch.
    pub start_us: u64,
    /// End, µs since the profiler's epoch.
    pub end_us: u64,
    /// Whether the job was stolen from a sibling's deque.
    pub stolen: bool,
}

/// One runtime phase (route / tick / merge) of a pool step.
#[derive(Clone, Debug)]
pub struct PhaseSlice {
    /// Phase label: `"route"`, `"tick"` or `"merge"`.
    pub phase: &'static str,
    /// Start, µs since the profiler's epoch.
    pub start_us: u64,
    /// End, µs since the profiler's epoch.
    pub end_us: u64,
}

#[derive(Default)]
struct ProfilerInner {
    slices: Vec<WorkerSlice>,
    phases: Vec<PhaseSlice>,
}

/// Wall-clock profiler for the work-stealing pool runtime: jobs run,
/// steals, per-worker busy slices and route/tick/merge phase timing.
/// Disabled by default (one relaxed load per check).
pub struct PoolProfiler {
    enabled: AtomicBool,
    epoch: Instant,
    jobs: AtomicU64,
    steals: AtomicU64,
    inner: Mutex<ProfilerInner>,
}

impl std::fmt::Debug for PoolProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolProfiler")
            .field("enabled", &self.is_enabled())
            .field("jobs", &self.jobs())
            .field("steals", &self.steals())
            .finish()
    }
}

impl Default for PoolProfiler {
    fn default() -> Self {
        PoolProfiler {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            jobs: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            inner: Mutex::new(ProfilerInner::default()),
        }
    }
}

impl PoolProfiler {
    /// Starts profiling. Slices recorded before this call are lost.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Whether the profiler is currently recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Microseconds elapsed since the profiler's epoch — the time base
    /// every slice uses.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records one executed job. A no-op while disabled.
    pub fn record_job(&self, worker: usize, container: &str, start_us: u64, stolen: bool) {
        if !self.is_enabled() {
            return;
        }
        let end_us = self.now_us();
        self.jobs.fetch_add(1, Ordering::Relaxed);
        if stolen {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.lock().slices.push(WorkerSlice {
            worker,
            container: container.to_owned(),
            start_us,
            end_us,
            stolen,
        });
    }

    /// Records one runtime phase. A no-op while disabled.
    pub fn record_phase(&self, phase: &'static str, start_us: u64) {
        if !self.is_enabled() {
            return;
        }
        let end_us = self.now_us();
        self.inner.lock().phases.push(PhaseSlice {
            phase,
            start_us,
            end_us,
        });
    }

    /// Jobs executed since enabling.
    pub fn jobs(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Jobs that arrived by stealing since enabling.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// All recorded worker slices.
    pub fn slices(&self) -> Vec<WorkerSlice> {
        self.inner.lock().slices.clone()
    }

    /// All recorded phase slices.
    pub fn phases(&self) -> Vec<PhaseSlice> {
        self.inner.lock().phases.clone()
    }
}

/// Simulated-time process and its lanes.
const PID_SIM: u64 = 1;
const TID_TASKS: u64 = 1;
const TID_EVENTS: u64 = 2;
const TID_CONVERSATIONS_BASE: u64 = 3;
/// Pool wall-clock process and its lanes.
const PID_POOL: u64 = 2;
const TID_PHASES: u64 = 0;
const TID_WORKERS_BASE: u64 = 1;
/// Network-adversary process (simulated time) and its lanes. A
/// separate pid because the conversation lanes on [`PID_SIM`] grow
/// unbounded from [`TID_CONVERSATIONS_BASE`].
const PID_NET: u64 = 3;
const TID_PARTITIONS: u64 = 1;
const TID_NET_FLOW: u64 = 2;

fn metadata(pid: u64, tid: Option<u64>, what: &str, name: &str) -> String {
    let tid = tid.unwrap_or(0);
    format!(
        "{{\"name\":\"{what}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        json_escape(name)
    )
}

fn complete(pid: u64, tid: u64, name: &str, ts_us: u64, dur_us: u64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
         \"ts\":{ts_us},\"dur\":{},\"args\":{{{args}}}}}",
        json_escape(name),
        dur_us.max(1),
    )
}

fn instant(pid: u64, tid: u64, name: &str, ts_us: u64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\
         \"ts\":{ts_us},\"args\":{{{args}}}}}",
        json_escape(name),
    )
}

fn str_arg(key: &str, value: &str) -> String {
    format!("\"{key}\":\"{}\"", json_escape(value))
}

/// Renders the telemetry facade's spans, events and pool profile as one
/// Chrome trace-event JSON document (`{"traceEvents":[...]}`), loadable
/// in `ui.perfetto.dev`. See the [module docs](self) for the layout.
pub fn chrome_trace(telemetry: &Telemetry) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(metadata(
        PID_SIM,
        None,
        "process_name",
        "grid (simulated time)",
    ));
    events.push(metadata(PID_SIM, Some(TID_TASKS), "thread_name", "tasks"));
    events.push(metadata(
        PID_SIM,
        Some(TID_EVENTS),
        "thread_name",
        "flight recorder",
    ));

    // Task spans: observation -> done, one complete event per finished
    // task; unfinished tasks render as instants at creation time.
    for span in telemetry.task_spans().spans() {
        let name = format!("task {}", span.task);
        let mut args = vec![format!("\"observed_ms\":{}", span.observed_ms)];
        if let Some(container) = &span.container {
            args.push(str_arg("container", container));
        }
        args.push(format!("\"reawards\":{}", span.reawards));
        let args = args.join(",");
        match span.done_ms {
            Some(done_ms) => events.push(complete(
                PID_SIM,
                TID_TASKS,
                &name,
                span.observed_ms * 1_000,
                done_ms.saturating_sub(span.observed_ms) * 1_000,
                &args,
            )),
            None => events.push(instant(
                PID_SIM,
                TID_TASKS,
                &name,
                span.created_ms * 1_000,
                &args,
            )),
        }
    }

    // Flight-recorder instants. Network-adversary events are split out
    // onto their own process: partition open/heal pairs (matched by
    // name, first-open-first-healed) become complete spans covering the
    // partition window, and per-leg interference becomes instants on a
    // dedicated lane.
    let mut net_events: Vec<String> = Vec::new();
    let mut open_partitions: Vec<(String, u64)> = Vec::new();
    let mut net_last_ms: u64 = 0;
    for event in telemetry.flight_recorder().events() {
        match &event.kind {
            EventKind::PartitionOpen { name } => {
                net_last_ms = net_last_ms.max(event.sim_ms);
                open_partitions.push((name.clone(), event.sim_ms));
            }
            EventKind::PartitionHeal { name } => {
                net_last_ms = net_last_ms.max(event.sim_ms);
                match open_partitions.iter().position(|(n, _)| n == name) {
                    Some(i) => {
                        let (name, opened_ms) = open_partitions.remove(i);
                        net_events.push(complete(
                            PID_NET,
                            TID_PARTITIONS,
                            &format!("partition {name}"),
                            opened_ms * 1_000,
                            event.sim_ms.saturating_sub(opened_ms) * 1_000,
                            "\"healed\":true",
                        ));
                    }
                    // A heal with no recorded open still shows up,
                    // just without a window.
                    None => net_events.push(instant(
                        PID_NET,
                        TID_PARTITIONS,
                        event.kind.label(),
                        event.sim_ms * 1_000,
                        &str_arg("detail", &event.kind.detail()),
                    )),
                }
            }
            EventKind::Delayed { .. }
            | EventKind::Duplicated { .. }
            | EventKind::Retransmit { .. } => {
                net_last_ms = net_last_ms.max(event.sim_ms);
                net_events.push(instant(
                    PID_NET,
                    TID_NET_FLOW,
                    event.kind.label(),
                    event.sim_ms * 1_000,
                    &str_arg("detail", &event.kind.detail()),
                ));
            }
            _ => events.push(instant(
                PID_SIM,
                TID_EVENTS,
                event.kind.label(),
                event.sim_ms * 1_000,
                &str_arg("detail", &event.kind.detail()),
            )),
        }
    }
    // Partitions still open at the end of the recording render as a
    // span to the last network event, flagged unhealed.
    for (name, opened_ms) in open_partitions {
        net_events.push(complete(
            PID_NET,
            TID_PARTITIONS,
            &format!("partition {name}"),
            opened_ms * 1_000,
            net_last_ms.saturating_sub(opened_ms) * 1_000,
            "\"healed\":false",
        ));
    }
    if !net_events.is_empty() {
        events.push(metadata(PID_NET, None, "process_name", "network adversary"));
        events.push(metadata(
            PID_NET,
            Some(TID_PARTITIONS),
            "thread_name",
            "partitions",
        ));
        events.push(metadata(
            PID_NET,
            Some(TID_NET_FLOW),
            "thread_name",
            "adversary",
        ));
        events.append(&mut net_events);
    }

    // Conversation spans: one lane per destination container, named
    // lanes assigned in first-seen order.
    let mut container_tids: Vec<String> = Vec::new();
    for span in telemetry.tracer().spans() {
        let container = span.container.as_deref().unwrap_or("(external)");
        let tid = match container_tids.iter().position(|c| c == container) {
            Some(i) => TID_CONVERSATIONS_BASE + i as u64,
            None => {
                container_tids.push(container.to_owned());
                let tid = TID_CONVERSATIONS_BASE + (container_tids.len() - 1) as u64;
                events.push(metadata(
                    PID_SIM,
                    Some(tid),
                    "thread_name",
                    &format!("mail {container}"),
                ));
                tid
            }
        };
        let end_ms = span
            .handled_ms
            .or(span.delivered_ms)
            .unwrap_or(span.enqueued_ms);
        let args = [
            str_arg("sender", &span.sender),
            str_arg("receiver", &span.receiver),
            str_arg("conversation", &span.conversation),
            format!("\"dead_lettered\":{}", span.dead_lettered),
        ]
        .join(",");
        events.push(complete(
            PID_SIM,
            tid,
            &span.performative,
            span.enqueued_ms * 1_000,
            end_ms.saturating_sub(span.enqueued_ms) * 1_000,
            &args,
        ));
    }

    // Pool profile: phases on lane 0, one lane per worker above it.
    let profiler = telemetry.pool_profiler();
    let phases = profiler.phases();
    let slices = profiler.slices();
    if !phases.is_empty() || !slices.is_empty() {
        events.push(metadata(
            PID_POOL,
            None,
            "process_name",
            "pool runtime (wall clock)",
        ));
        events.push(metadata(
            PID_POOL,
            Some(TID_PHASES),
            "thread_name",
            "phases",
        ));
        let lanes = slices.iter().map(|s| s.worker + 1).max().unwrap_or(0);
        for worker in 0..lanes {
            events.push(metadata(
                PID_POOL,
                Some(TID_WORKERS_BASE + worker as u64),
                "thread_name",
                &format!("worker {worker}"),
            ));
        }
        for phase in &phases {
            events.push(complete(
                PID_POOL,
                TID_PHASES,
                phase.phase,
                phase.start_us,
                phase.end_us.saturating_sub(phase.start_us),
                "",
            ));
        }
        for slice in &slices {
            events.push(complete(
                PID_POOL,
                TID_WORKERS_BASE + slice.worker as u64,
                &slice.container,
                slice.start_us,
                slice.end_us.saturating_sub(slice.start_us),
                &format!("\"stolen\":{}", slice.stolen),
            ));
        }
    }

    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;

    #[test]
    fn disabled_profiler_records_nothing() {
        let profiler = PoolProfiler::default();
        let start = profiler.now_us();
        profiler.record_job(0, "cg-1", start, false);
        profiler.record_phase("tick", start);
        assert_eq!(profiler.jobs(), 0);
        assert!(profiler.slices().is_empty());
        assert!(profiler.phases().is_empty());
    }

    #[test]
    fn enabled_profiler_counts_jobs_and_steals() {
        let profiler = PoolProfiler::default();
        profiler.enable();
        let start = profiler.now_us();
        profiler.record_job(0, "cg-1", start, false);
        profiler.record_job(1, "cg-2", start, true);
        profiler.record_phase("route", start);
        assert_eq!(profiler.jobs(), 2);
        assert_eq!(profiler.steals(), 1);
        let slices = profiler.slices();
        assert_eq!(slices.len(), 2);
        assert!(slices.iter().all(|s| s.end_us >= s.start_us));
        assert_eq!(profiler.phases()[0].phase, "route");
    }

    #[test]
    fn chrome_trace_renders_every_pillar() {
        let telemetry = Telemetry::new();
        telemetry.task_spans().task_created("t1", 0, 0);
        telemetry.task_spans().task_awarded("t1", "pg-1", 0, false);
        telemetry.task_spans().task_done("t1", 120_000);
        telemetry.flight_recorder().enable();
        telemetry.flight_recorder().record(
            60_000,
            EventKind::Crash {
                container: "pg-1".into(),
            },
        );
        telemetry.pool_profiler().enable();
        let start = telemetry.pool_profiler().now_us();
        telemetry
            .pool_profiler()
            .record_job(0, "cg-hq", start, true);
        telemetry.pool_profiler().record_phase("tick", start);
        let trace = chrome_trace(&telemetry);
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.ends_with("]}"));
        assert!(trace.contains("\"name\":\"task t1\""));
        assert!(trace.contains("\"dur\":120000000"), "{trace}");
        assert!(trace.contains("\"name\":\"crash\""));
        assert!(trace.contains("\"name\":\"worker 0\""));
        assert!(trace.contains("\"stolen\":true"));
        assert!(trace.contains("grid (simulated time)"));
        assert!(trace.contains("pool runtime (wall clock)"));
        // No raw control characters may survive into the document.
        assert!(!trace.chars().any(|c| (c as u32) < 0x20));
    }

    #[test]
    fn partition_windows_render_as_spans_on_the_net_track() {
        let telemetry = Telemetry::new();
        telemetry.flight_recorder().enable();
        let recorder = telemetry.flight_recorder();
        recorder.record(
            60_000,
            EventKind::PartitionOpen {
                name: "seeded-net".into(),
            },
        );
        recorder.record(
            90_000,
            EventKind::Delayed {
                link: "a@x->b@y".into(),
                ms: 2_500,
            },
        );
        recorder.record(
            100_000,
            EventKind::Retransmit {
                link: "a@x->b@y".into(),
                attempt: 2,
            },
        );
        recorder.record(
            180_000,
            EventKind::PartitionHeal {
                name: "seeded-net".into(),
            },
        );
        recorder.record(
            200_000,
            EventKind::PartitionOpen {
                name: "forever".into(),
            },
        );
        let trace = chrome_trace(&telemetry);
        assert!(trace.contains("\"name\":\"network adversary\""));
        // Healed partition: one complete span covering open -> heal.
        assert!(
            trace.contains(
                "{\"name\":\"partition seeded-net\",\"ph\":\"X\",\"pid\":3,\"tid\":1,\
                 \"ts\":60000000,\"dur\":120000000,\"args\":{\"healed\":true}}"
            ),
            "{trace}"
        );
        // Unhealed partition: span to the last net event, flagged.
        assert!(trace.contains("\"name\":\"partition forever\""), "{trace}");
        assert!(trace.contains("\"healed\":false"));
        // Per-leg interference lands on the adversary lane of pid 3.
        assert!(trace
            .contains("{\"name\":\"net-delayed\",\"ph\":\"i\",\"s\":\"t\",\"pid\":3,\"tid\":2,"));
        assert!(trace.contains(
            "{\"name\":\"net-retransmit\",\"ph\":\"i\",\"s\":\"t\",\"pid\":3,\"tid\":2,"
        ));
    }

    #[test]
    fn trace_without_net_events_omits_pid_3() {
        let telemetry = Telemetry::new();
        telemetry.flight_recorder().enable();
        telemetry.flight_recorder().record(
            60_000,
            EventKind::Crash {
                container: "pg-1".into(),
            },
        );
        let trace = chrome_trace(&telemetry);
        assert!(!trace.contains("network adversary"));
        assert!(trace.contains("\"name\":\"crash\""));
    }

    #[test]
    fn trace_without_pool_profile_omits_pid_2() {
        let telemetry = Telemetry::new();
        telemetry.task_spans().task_created("t1", 0, 0);
        let trace = chrome_trace(&telemetry);
        assert!(!trace.contains("pool runtime"));
        // Unfinished task renders as an instant, not a complete event.
        assert!(trace.contains("\"ph\":\"i\""));
    }
}
