//! Flight recorder: a bounded ring buffer of structured runtime events.
//!
//! The metrics pillar answers "how many", the conversation trace answers
//! "which hops" — the flight recorder answers "what *sequence* of
//! overload and recovery decisions preceded this outcome". Every event
//! carries both the simulated timestamp (deterministic, compared across
//! runtimes by the parity tests) and a wall-clock offset from the
//! recorder's epoch (for the Perfetto timeline; never compared).
//!
//! Recording is **off by default**: a disabled recorder costs one
//! relaxed atomic load per emission site, so attaching telemetry without
//! enabling the recorder keeps the hot path unchanged. Past the
//! capacity the buffer drops its oldest events (it is a *flight*
//! recorder: the most recent history is the valuable part).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// Default maximum number of events retained.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// What happened. Every variant is cheap to construct and carries only
/// the identifiers a diagnostic timeline needs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A bounded mailbox shed one message of `class` bound for
    /// `container` (overflow policy decision).
    DeliveryShed {
        /// Destination container whose window overflowed.
        container: String,
        /// Message class label (`bulk`/`report`/`broker`/`alert`).
        class: &'static str,
    },
    /// The root's admission gate turned a first award away.
    AdmissionReject {
        /// Task id that was not admitted.
        task: String,
    },
    /// A per-container circuit breaker changed state.
    BreakerTransition {
        /// Container the breaker guards.
        container: String,
        /// New state label (`open`/`half-open`/`closed`).
        to: &'static str,
    },
    /// A container's heartbeat-derived liveness classification changed.
    HeartbeatChange {
        /// Container whose liveness changed.
        container: String,
        /// New state label (`alive`/`suspect`/`dead`).
        state: &'static str,
    },
    /// A chaos crash took a container down.
    Crash {
        /// Crashed container.
        container: String,
    },
    /// A chaos restart brought a container back.
    Restart {
        /// Restarted container.
        container: String,
    },
    /// The root awarded a task for the first time.
    TaskBrokered {
        /// Task id.
        task: String,
        /// Container that won the award.
        container: String,
    },
    /// The root re-awarded a reclaimed or retry-exhausted task.
    TaskRebrokered {
        /// Task id.
        task: String,
        /// Container that won the re-award.
        container: String,
    },
    /// The root escalated an alert to the interface grid.
    TaskEscalated {
        /// Escalation rule (`task-retry-exhausted`/`container-dead`).
        rule: String,
        /// Device or container the alert names.
        device: String,
    },
    /// A federated shard's root forwarded a rejected task to a peer
    /// shard (spill-over).
    TaskSpilled {
        /// Task id (globally unique across shards).
        task: String,
        /// Shard index the task originated on.
        from_shard: usize,
        /// Shard index that accepted the spill.
        to_shard: usize,
    },
    /// A spilled task completed on its host shard and the origin root
    /// was notified (exactly-once via its `done_seen` ledger).
    SpillCompleted {
        /// Task id.
        task: String,
        /// Shard index the task originated on.
        origin_shard: usize,
    },
    /// The conversation tracer hit its span-capacity cap for the first
    /// time (subsequent drops only move the counter).
    TraceDropped,
    /// The network adversary held a delivery leg back for `ms` of
    /// simulated time before letting it through.
    Delayed {
        /// Link the leg travelled, as `sender->receiver`.
        link: String,
        /// How long the leg was held, in simulated milliseconds.
        ms: u64,
    },
    /// The network adversary injected a duplicate of a delivery leg.
    Duplicated {
        /// Link the leg travelled, as `sender->receiver`.
        link: String,
    },
    /// The reliable-delivery layer retransmitted an unacknowledged leg.
    Retransmit {
        /// Link the leg travels, as `sender->receiver`.
        link: String,
        /// 1-based retransmission attempt.
        attempt: u32,
    },
    /// A named network partition opened: containers in different groups
    /// can no longer exchange messages.
    PartitionOpen {
        /// Partition name (pairs with the matching [`PartitionHeal`]).
        ///
        /// [`PartitionHeal`]: EventKind::PartitionHeal
        name: String,
    },
    /// A named network partition healed.
    PartitionHeal {
        /// Partition name.
        name: String,
    },
}

impl EventKind {
    /// Short stable label for the event family (Perfetto event name,
    /// parity-test grouping key).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::DeliveryShed { .. } => "delivery-shed",
            EventKind::AdmissionReject { .. } => "admission-reject",
            EventKind::BreakerTransition { .. } => "breaker-transition",
            EventKind::HeartbeatChange { .. } => "heartbeat-change",
            EventKind::Crash { .. } => "crash",
            EventKind::Restart { .. } => "restart",
            EventKind::TaskBrokered { .. } => "task-brokered",
            EventKind::TaskRebrokered { .. } => "task-rebrokered",
            EventKind::TaskEscalated { .. } => "task-escalated",
            EventKind::TaskSpilled { .. } => "task-spilled",
            EventKind::SpillCompleted { .. } => "spill-completed",
            EventKind::TraceDropped => "trace-dropped",
            EventKind::Delayed { .. } => "net-delayed",
            EventKind::Duplicated { .. } => "net-duplicated",
            EventKind::Retransmit { .. } => "net-retransmit",
            EventKind::PartitionOpen { .. } => "partition-open",
            EventKind::PartitionHeal { .. } => "partition-heal",
        }
    }

    /// Human-readable detail string (Perfetto args, log lines).
    pub fn detail(&self) -> String {
        match self {
            EventKind::DeliveryShed { container, class } => format!("{container} {class}"),
            EventKind::AdmissionReject { task } => task.clone(),
            EventKind::BreakerTransition { container, to } => format!("{container} -> {to}"),
            EventKind::HeartbeatChange { container, state } => format!("{container} -> {state}"),
            EventKind::Crash { container } | EventKind::Restart { container } => container.clone(),
            EventKind::TaskBrokered { task, container }
            | EventKind::TaskRebrokered { task, container } => format!("{task} @ {container}"),
            EventKind::TaskEscalated { rule, device } => format!("{rule} {device}"),
            EventKind::TaskSpilled {
                task,
                from_shard,
                to_shard,
            } => format!("{task} s{from_shard} -> s{to_shard}"),
            EventKind::SpillCompleted { task, origin_shard } => {
                format!("{task} -> s{origin_shard}")
            }
            EventKind::TraceDropped => "span capacity reached".to_owned(),
            EventKind::Delayed { link, ms } => format!("{link} +{ms}ms"),
            EventKind::Duplicated { link } => link.clone(),
            EventKind::Retransmit { link, attempt } => format!("{link} attempt {attempt}"),
            EventKind::PartitionOpen { name } | EventKind::PartitionHeal { name } => name.clone(),
        }
    }
}

/// One recorded event: what happened, when in simulated time, and when
/// on the wall clock (µs since the recorder's epoch).
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic sequence number (total events ever recorded, including
    /// ones later evicted by the ring).
    pub seq: u64,
    /// Simulated time of the event — deterministic across runs and
    /// runtimes for the same seed.
    pub sim_ms: u64,
    /// Wall-clock microseconds since the recorder's epoch — display
    /// only, never compared.
    pub wall_us: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// The deterministic projection of this event: simulated time plus
    /// the structured kind, with the wall-clock field ignored. Parity
    /// tests compare these across runtimes.
    pub fn sim_view(&self) -> (u64, EventKind) {
        (self.sim_ms, self.kind.clone())
    }
}

#[derive(Default)]
struct RecorderInner {
    events: VecDeque<Event>,
    seq: u64,
    evicted: u64,
}

/// The flight recorder: bounded, lock-cheap, disabled by default.
///
/// `record` takes one relaxed atomic load when disabled; when enabled it
/// takes a short mutex to push into the ring. Emission sites therefore
/// do not need their own gating.
pub struct FlightRecorder {
    enabled: AtomicBool,
    capacity: usize,
    epoch: Instant,
    inner: Mutex<RecorderInner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.is_enabled())
            .field("events", &inner.events.len())
            .field("evicted", &inner.evicted)
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Creates a disabled recorder retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            enabled: AtomicBool::new(false),
            capacity: capacity.max(1),
            epoch: Instant::now(),
            inner: Mutex::new(RecorderInner::default()),
        }
    }

    /// Starts recording. Events emitted before this call are lost — the
    /// recorder is opt-in by design.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Whether the recorder is currently recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one event at simulated time `sim_ms`. A no-op (one
    /// relaxed load) while disabled.
    pub fn record(&self, sim_ms: u64, kind: EventKind) {
        if !self.is_enabled() {
            return;
        }
        let wall_us = self.epoch.elapsed().as_micros() as u64;
        let mut inner = self.inner.lock();
        let seq = inner.seq;
        inner.seq += 1;
        if inner.events.len() >= self.capacity {
            inner.events.pop_front();
            inner.evicted += 1;
        }
        inner.events.push_back(Event {
            seq,
            sim_ms,
            wall_us,
            kind,
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the ring after the capacity was reached.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().evicted
    }

    /// Discards all retained events (the enabled flag is untouched).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shed(container: &str) -> EventKind {
        EventKind::DeliveryShed {
            container: container.to_owned(),
            class: "bulk",
        }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let recorder = FlightRecorder::default();
        recorder.record(0, shed("c1"));
        assert!(recorder.is_empty());
    }

    #[test]
    fn enabled_recorder_keeps_order_and_sim_time() {
        let recorder = FlightRecorder::default();
        recorder.enable();
        recorder.record(10, shed("c1"));
        recorder.record(
            20,
            EventKind::TaskBrokered {
                task: "t1".into(),
                container: "pg-1".into(),
            },
        );
        let events = recorder.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].sim_ms, 10);
        assert_eq!(events[0].kind.label(), "delivery-shed");
        assert_eq!(events[1].sim_view().0, 20);
        assert_eq!(events[1].kind.label(), "task-brokered");
        assert!(events[0].seq < events[1].seq);
    }

    #[test]
    fn ring_evicts_oldest_past_capacity() {
        let recorder = FlightRecorder::with_capacity(2);
        recorder.enable();
        for t in 0..4u64 {
            recorder.record(t, shed("c"));
        }
        let events = recorder.events();
        assert_eq!(events.len(), 2);
        assert_eq!(recorder.evicted(), 2);
        // The *newest* history survives.
        assert_eq!(events[0].sim_ms, 2);
        assert_eq!(events[1].sim_ms, 3);
    }

    #[test]
    fn labels_and_details_are_stable() {
        let kind = EventKind::BreakerTransition {
            container: "pg-1".into(),
            to: "open",
        };
        assert_eq!(kind.label(), "breaker-transition");
        assert_eq!(kind.detail(), "pg-1 -> open");
        assert_eq!(EventKind::TraceDropped.label(), "trace-dropped");
    }
}
