//! Lock-free metric primitives and the registry that names them.
//!
//! The hot path — incrementing a [`Counter`], moving a [`Gauge`],
//! observing into a [`Histogram`] — is a single atomic operation on a
//! handle the caller keeps. The registry lock is only taken on the cold
//! path: creating (or re-fetching) a handle by name, and taking a
//! [`Snapshot`] for export. Handles are `Arc`-backed and cheap to clone,
//! so agents and container threads hold their own copies and never
//! contend.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A monotonically increasing counter (e.g. messages delivered).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a detached counter (not registered anywhere).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (e.g. mailbox depth).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates a detached gauge (not registered anywhere).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Moves the value by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets, strictly increasing. A value
    /// `v` lands in the first bucket with `v <= bound`; larger values
    /// land in the implicit overflow (`+Inf`) bucket.
    bounds: Vec<u64>,
    /// One count per finite bound, plus the trailing overflow bucket.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram of non-negative integer observations
/// (durations in ns/ms, sizes, depths).
///
/// Buckets are chosen at creation and never reallocated, so `observe` is
/// a bounded scan plus two atomic adds — safe to call from any thread
/// with no locking.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

/// Default bucket bounds for millisecond latencies.
pub const LATENCY_BUCKETS_MS: [u64; 10] = [1, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000, 60_000];

/// Default bucket bounds for delivery batch sizes (legs per container
/// flush).
pub const BATCH_SIZE_BUCKETS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 256];

/// Default bucket bounds for nanosecond handler durations.
pub const DURATION_BUCKETS_NS: [u64; 10] = [
    1_000,
    10_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

impl Histogram {
    /// Creates a histogram with the given finite bucket bounds (an
    /// overflow bucket is always appended). Bounds are sorted and
    /// deduplicated; an empty list leaves just the overflow bucket.
    pub fn new(bounds: impl IntoIterator<Item = u64>) -> Self {
        let mut bounds: Vec<u64> = bounds.into_iter().collect();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds,
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation. Zero is a valid observation (it lands in
    /// the first bucket); values above every bound land in the overflow
    /// bucket.
    pub fn observe(&self, value: u64) {
        let inner = &self.0;
        let index = inner
            .bounds
            .iter()
            .position(|bound| value <= *bound)
            .unwrap_or(inner.bounds.len());
        inner.buckets[index].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The finite bucket bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.0.bounds
    }

    /// Per-bucket counts: one entry per finite bound plus the trailing
    /// overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Identity of one metric: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect();
    labels.sort();
    MetricKey {
        name: name.to_owned(),
        labels,
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The value of one exported sample.
#[derive(Clone, Debug, PartialEq)]
pub enum SampleValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's instantaneous value.
    Gauge(i64),
    /// A histogram's full state.
    Histogram {
        /// Finite bucket bounds.
        bounds: Vec<u64>,
        /// Per-bucket counts (finite bounds, then overflow).
        buckets: Vec<u64>,
        /// Sum of observations.
        sum: u64,
        /// Observation count.
        count: u64,
    },
}

/// One metric at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (`snake_case`, conventionally `agentgrid_*`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: SampleValue,
}

/// A point-in-time copy of every registered metric, ready for export
/// (see [`crate::export`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// All samples, ordered by name then labels.
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// Finds a sample by name and exact label set (order-insensitive).
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        let wanted = key(name, labels);
        self.samples
            .iter()
            .find(|s| s.name == wanted.name && s.labels == wanted.labels)
    }

    /// The value of a counter sample, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)?.value {
            SampleValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// The value of a gauge sample, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.find(name, labels)?.value {
            SampleValue::Gauge(v) => Some(v),
            _ => None,
        }
    }
}

/// Names metrics and hands out shared handles.
///
/// ```
/// use agentgrid_telemetry::metrics::MetricsRegistry;
///
/// let registry = MetricsRegistry::default();
/// let delivered = registry.counter("messages_delivered_total", &[("container", "pg-1")]);
/// delivered.inc();
/// // The same (name, labels) pair always resolves to the same handle.
/// let again = registry.counter("messages_delivered_total", &[("container", "pg-1")]);
/// again.add(2);
/// assert_eq!(delivered.get(), 3);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Gets or creates the counter `(name, labels)`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is registered as a non-counter"),
        }
    }

    /// Gets or creates the gauge `(name, labels)`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is registered as a non-gauge"),
        }
    }

    /// Gets or creates the histogram `(name, labels)`; `bounds` only
    /// applies on first creation.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds.iter().copied())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is registered as a non-histogram"),
        }
    }

    /// Copies every metric into an export-ready [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock();
        let samples = metrics
            .iter()
            .map(|(key, metric)| Sample {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram {
                        bounds: h.bounds().to_vec(),
                        buckets: h.bucket_counts(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                },
            })
            .collect();
        Snapshot { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("c_total", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = registry.gauge("g", &[("k", "v")]);
        g.add(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn same_key_returns_same_handle_and_labels_are_order_insensitive() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x_total", &[("a", "1"), ("b", "2")]);
        let b = registry.counter("x_total", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(registry.snapshot().samples.len(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as a non-counter")]
    fn kind_clash_panics() {
        let registry = MetricsRegistry::new();
        registry.gauge("clash", &[]);
        registry.counter("clash", &[]);
    }

    #[test]
    fn histogram_zero_duration_lands_in_first_bucket() {
        let h = Histogram::new([10, 100]);
        h.observe(0);
        assert_eq!(h.bucket_counts(), vec![1, 0, 0]);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn histogram_boundary_values_are_inclusive() {
        let h = Histogram::new([10, 100]);
        h.observe(10); // exactly on the first bound → first bucket
        h.observe(11);
        h.observe(100); // exactly on the last finite bound
        assert_eq!(h.bucket_counts(), vec![1, 2, 0]);
    }

    #[test]
    fn histogram_overflow_bucket_catches_everything_above() {
        let h = Histogram::new([10, 100]);
        h.observe(101);
        h.observe(u64::MAX);
        assert_eq!(h.bucket_counts(), vec![0, 0, 2]);
        assert_eq!(h.count(), 2);
        // Sum saturates modulo 2^64 by design of fetch_add; the counts
        // stay exact, which is what the export layer relies on.
    }

    #[test]
    fn histogram_with_no_bounds_is_a_single_overflow_bucket() {
        let h = Histogram::new([]);
        h.observe(0);
        h.observe(123);
        assert_eq!(h.bucket_counts(), vec![2]);
    }

    #[test]
    fn histogram_bounds_are_sorted_and_deduped() {
        let h = Histogram::new([100, 10, 100, 1]);
        assert_eq!(h.bounds(), &[1, 10, 100]);
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let registry = MetricsRegistry::new();
        registry.counter("a_total", &[("x", "1")]).add(9);
        registry.gauge("b", &[]).set(-4);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("a_total", &[("x", "1")]), Some(9));
        assert_eq!(snap.gauge("b", &[]), Some(-4));
        assert_eq!(snap.counter("missing", &[]), None);
    }
}
