//! Telemetry for the agentgrid runtimes: metrics, conversation tracing
//! and live resource profiles.
//!
//! The paper's grid root drives load balancing from per-container
//! **resource profiles** (Fig. 4) and a knowledge / capacity / idleness
//! ranking (§3.5). This crate supplies the measurement substrate those
//! profiles need on the live runtimes:
//!
//! * [`metrics`] — lock-free counters, gauges and fixed-bucket
//!   histograms behind a [`MetricsRegistry`], with cheap clonable
//!   handles;
//! * [`trace`] — per-hop conversation spans with causal parent links,
//!   so one collector batch can be followed through classifier, root,
//!   analyzer and interface;
//! * [`events`] — the **flight recorder**: a bounded ring of structured
//!   overload/recovery events (sheds, breaker trips, crashes,
//!   brokerings) with simulated + wall timestamps, off by default;
//! * [`spans`] — end-to-end **task spans** stitching collector
//!   observation → root award → analyzer verdict into one timeline per
//!   task, feeding the `agentgrid_task_latency_ms` histogram and the
//!   grid report's p50/p95/p99;
//! * [`export`] — Prometheus text format and JSON snapshots;
//! * [`perfetto`] — Chrome-trace JSON export of all of the above plus
//!   the [`PoolProfiler`]'s per-worker lanes, loadable in
//!   `ui.perfetto.dev`;
//! * [`Telemetry`] — the facade both runtimes call, aggregating
//!   per-container [`ContainerScope`]s (mailbox depth, deliveries,
//!   handler busy time) that [`measured_load`] turns into the load
//!   figure `ResourceProfile` consumers read.
//!
//! Everything is opt-in: a runtime without a [`TelemetryHandle`]
//! attached pays nothing.
//!
//! # Examples
//!
//! ```
//! use agentgrid_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::new();
//! let scope = telemetry.container_scope("pg-1");
//! scope.on_delivered();
//! scope.on_handled(1_500);
//! let snapshot = telemetry.snapshot();
//! assert_eq!(
//!     snapshot.counter("agentgrid_messages_delivered_total", &[("container", "pg-1")]),
//!     Some(1)
//! );
//! assert!(telemetry.prometheus().contains("agentgrid_messages_delivered_total"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod export;
pub mod metrics;
pub mod perfetto;
pub mod spans;
pub mod trace;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use agentgrid_acl::{AgentId, SharedMessage};
use parking_lot::Mutex;

pub use events::{Event, EventKind, FlightRecorder};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, Sample, SampleValue, Snapshot};
pub use perfetto::{chrome_trace, PhaseSlice, PoolProfiler, WorkerSlice};
pub use spans::{TaskLatencySummary, TaskSpan, TaskSpanStore};
pub use trace::{ConversationTracer, Span, SpanId};

/// Shared handle to one [`Telemetry`] instance; clone freely.
pub type TelemetryHandle = Arc<Telemetry>;

/// Per-container metric handles, cached so the delivery/handling hot
/// path is pure atomics (no registry lookup, no lock).
#[derive(Debug)]
pub struct ContainerScope {
    container: String,
    delivered: Counter,
    sent: Counter,
    handled: Counter,
    mailbox_depth: Gauge,
    busy_ns: Counter,
    handle_ns: Histogram,
    /// Set once the container is mapped to a grid stage; traffic through
    /// the container (delivered or sent) then also counts into
    /// `agentgrid_stage_messages_total{stage=...}`.
    stage: OnceLock<Counter>,
}

impl ContainerScope {
    /// The container this scope measures.
    pub fn container(&self) -> &str {
        &self.container
    }

    /// Records one message delivered into this container.
    pub fn on_delivered(&self) {
        self.delivered.inc();
        if let Some(stage) = self.stage.get() {
            stage.inc();
        }
    }

    /// Records one message sent by an agent in this container. Counts
    /// into the stage rollup too, so source-only stages (collectors
    /// polling on tick) show their traffic.
    pub fn on_sent(&self) {
        self.sent.inc();
        if let Some(stage) = self.stage.get() {
            stage.inc();
        }
    }

    /// Moves the mailbox-depth gauge (queued, not yet handled).
    pub fn mailbox_add(&self, delta: i64) {
        self.mailbox_depth.add(delta);
    }

    /// Records one handled message and the wall-clock nanoseconds its
    /// handler ran.
    pub fn on_handled(&self, busy_ns: u64) {
        self.handled.inc();
        self.busy_ns.add(busy_ns);
        self.handle_ns.observe(busy_ns);
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.get()
    }

    /// Current mailbox depth.
    pub fn mailbox_depth(&self) -> i64 {
        self.mailbox_depth.get()
    }
}

/// Point-in-time per-container statistics — the measured counterpart of
/// the paper's declared resource profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContainerStats {
    /// Container name.
    pub container: String,
    /// Messages delivered into the container.
    pub delivered: u64,
    /// Messages sent by the container's agents.
    pub sent: u64,
    /// Messages fully handled.
    pub handled: u64,
    /// Messages queued but not yet handled.
    pub mailbox_depth: i64,
    /// Cumulative wall-clock handler time, nanoseconds.
    pub busy_ns: u64,
}

/// Converts a measurement window into a load figure for a
/// `ResourceProfile`: the fraction of the window the handlers were busy,
/// plus queue pressure from the mailbox depth (a deep queue pushes load
/// towards 1 even if handling is fast).
///
/// The result **saturates at 1.0** — admission control and
/// load-balancing policies may rely on that ceiling. Each term is
/// defensively clamped on its own so malformed inputs cannot leak
/// through intermediate arithmetic: a busy delta exceeding the window
/// (overlapping handlers, clock skew) reads as a fully busy window, a
/// zero window is treated as 1 ns, and a negative mailbox depth
/// (counter underflow) contributes no queue pressure.
pub fn measured_load(mailbox_depth: i64, busy_delta_ns: u64, window_ns: u64) -> f64 {
    let busy = (busy_delta_ns as f64 / window_ns.max(1) as f64).clamp(0.0, 1.0);
    let depth = mailbox_depth.max(0) as f64;
    let queue = depth / (depth + 4.0);
    (busy + queue).clamp(0.0, 1.0)
}

/// The facade both runtimes instrument against: a metrics registry, a
/// conversation tracer and the per-container scopes.
#[derive(Debug)]
pub struct Telemetry {
    registry: MetricsRegistry,
    tracer: ConversationTracer,
    recorder: FlightRecorder,
    task_spans: TaskSpanStore,
    profiler: PoolProfiler,
    scopes: Mutex<BTreeMap<String, Arc<ContainerScope>>>,
    delivered_total: Counter,
    dead_letters_total: Counter,
    delivery_latency_ms: Histogram,
    delivery_batch_size: Histogram,
    task_latency_ms: Histogram,
    trace_dropped_total: Counter,
    /// Whether the one-shot `TraceDropped` flight-recorder event fired.
    trace_drop_event_emitted: AtomicBool,
}

impl Default for Telemetry {
    fn default() -> Self {
        let registry = MetricsRegistry::new();
        let delivered_total = registry.counter("agentgrid_messages_delivered_total", &[]);
        let dead_letters_total = registry.counter("agentgrid_dead_letters_total", &[]);
        let delivery_latency_ms = registry.histogram(
            "agentgrid_delivery_latency_ms",
            &[],
            &metrics::LATENCY_BUCKETS_MS,
        );
        let delivery_batch_size = registry.histogram(
            "agentgrid_delivery_batch_size",
            &[],
            &metrics::BATCH_SIZE_BUCKETS,
        );
        let task_latency_ms = registry.histogram(
            "agentgrid_task_latency_ms",
            &[],
            &metrics::LATENCY_BUCKETS_MS,
        );
        let trace_dropped_total = registry.counter("agentgrid_trace_dropped_spans_total", &[]);
        Telemetry {
            registry,
            tracer: ConversationTracer::default(),
            recorder: FlightRecorder::default(),
            task_spans: TaskSpanStore::default(),
            profiler: PoolProfiler::default(),
            scopes: Mutex::new(BTreeMap::new()),
            delivered_total,
            dead_letters_total,
            delivery_latency_ms,
            delivery_batch_size,
            task_latency_ms,
            trace_dropped_total,
            trace_drop_event_emitted: AtomicBool::new(false),
        }
    }
}

impl Telemetry {
    /// Creates a telemetry instance behind a shared handle.
    pub fn new() -> TelemetryHandle {
        Arc::new(Telemetry::default())
    }

    /// The underlying registry, for custom metrics (brokers, benches).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The conversation tracer.
    pub fn tracer(&self) -> &ConversationTracer {
        &self.tracer
    }

    /// The flight recorder (third telemetry pillar). Disabled — one
    /// relaxed atomic load per emission — until
    /// [`FlightRecorder::enable`] is called.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The end-to-end task-span store. Populated by the grid root
    /// whenever telemetry is attached.
    pub fn task_spans(&self) -> &TaskSpanStore {
        &self.task_spans
    }

    /// The pool runtime profiler; disabled until
    /// [`PoolProfiler::enable`] is called.
    pub fn pool_profiler(&self) -> &PoolProfiler {
        &self.profiler
    }

    /// Records one flight-recorder event at simulated time `sim_ms`
    /// (no-op while the recorder is disabled).
    pub fn record_event(&self, sim_ms: u64, kind: EventKind) {
        self.recorder.record(sim_ms, kind);
    }

    /// Opens the end-to-end span for a new task, anchored at the data's
    /// observation time.
    pub fn task_created(&self, task: &str, observed_ms: u64, now_ms: u64) {
        self.task_spans.task_created(task, observed_ms, now_ms);
    }

    /// Records a task award; `reaward` marks re-brokered awards.
    pub fn task_awarded(&self, task: &str, container: &str, now_ms: u64, reaward: bool) {
        self.task_spans
            .task_awarded(task, container, now_ms, reaward);
    }

    /// Closes a task span and observes its end-to-end simulated latency
    /// into `agentgrid_task_latency_ms` (first completion only).
    pub fn task_done(&self, task: &str, now_ms: u64) {
        if let Some(latency_ms) = self.task_spans.task_done(task, now_ms) {
            self.task_latency_ms.observe(latency_ms);
        }
    }

    /// Deterministic p50/p95/p99 over completed task spans; `None`
    /// until at least one task completed.
    pub fn task_latency_summary(&self) -> Option<TaskLatencySummary> {
        self.task_spans.summary()
    }

    /// Conversation spans dropped by the tracer's capacity cap
    /// (`agentgrid_trace_dropped_spans_total`).
    pub fn trace_dropped_total(&self) -> u64 {
        self.trace_dropped_total.get()
    }

    /// Chrome-trace / Perfetto JSON rendering of spans, events and the
    /// pool profile.
    pub fn chrome_trace(&self) -> String {
        perfetto::chrome_trace(self)
    }

    /// Gets or creates the scope for a container. Runtimes cache the
    /// returned `Arc` so steady-state updates never take this lock.
    pub fn container_scope(&self, container: &str) -> Arc<ContainerScope> {
        let mut scopes = self.scopes.lock();
        if let Some(scope) = scopes.get(container) {
            return Arc::clone(scope);
        }
        let labels = [("container", container)];
        let scope = Arc::new(ContainerScope {
            container: container.to_owned(),
            delivered: self
                .registry
                .counter("agentgrid_messages_delivered_total", &labels),
            sent: self
                .registry
                .counter("agentgrid_messages_sent_total", &labels),
            handled: self
                .registry
                .counter("agentgrid_messages_handled_total", &labels),
            mailbox_depth: self.registry.gauge("agentgrid_mailbox_depth", &labels),
            busy_ns: self
                .registry
                .counter("agentgrid_handler_busy_ns_total", &labels),
            handle_ns: self.registry.histogram(
                "agentgrid_handle_ns",
                &labels,
                &metrics::DURATION_BUCKETS_NS,
            ),
            stage: OnceLock::new(),
        });
        scopes.insert(container.to_owned(), Arc::clone(&scope));
        scope
    }

    /// Maps a container onto a grid stage (collector, classifier, root,
    /// analyzer, interface); its deliveries then also count into
    /// `agentgrid_stage_messages_total{stage=...}`. A container's stage
    /// is set once; later calls are ignored.
    pub fn set_stage(&self, container: &str, stage: &str) {
        let scope = self.container_scope(container);
        let counter = self
            .registry
            .counter("agentgrid_stage_messages_total", &[("stage", stage)]);
        let _ = scope.stage.set(counter);
    }

    /// Records a message enqueued for routing (one span per receiver).
    /// `parent` is the span being handled when the send happened.
    /// Capacity-cap drops surface as
    /// `agentgrid_trace_dropped_spans_total` plus a one-shot
    /// flight-recorder event on the first drop.
    pub fn message_sent(&self, message: &SharedMessage, parent: Option<SpanId>, now_ms: u64) {
        let dropped = self.tracer.on_send(message, parent, now_ms);
        if dropped > 0 {
            self.trace_dropped_total.add(dropped);
            if !self.trace_drop_event_emitted.swap(true, Ordering::Relaxed) {
                self.recorder.record(now_ms, EventKind::TraceDropped);
            }
        }
    }

    /// Records a delivery into `scope`'s container: counters, mailbox
    /// depth and the trace hop.
    pub fn message_delivered(
        &self,
        message: &SharedMessage,
        receiver: &AgentId,
        scope: &ContainerScope,
        now_ms: u64,
    ) {
        self.delivered_total.inc();
        scope.on_delivered();
        scope.mailbox_add(1);
        self.tracer
            .on_deliver(message, receiver, &scope.container, now_ms);
    }

    /// Records one container batch flushed by the delivery pipeline:
    /// `legs` delivery legs went into one container's mailboxes under a
    /// single routing pass (histogram `agentgrid_delivery_batch_size`).
    pub fn batch_flushed(&self, legs: u64) {
        self.delivery_batch_size.observe(legs);
    }

    /// Records an undeliverable receiver.
    pub fn message_dead_lettered(&self, message: &SharedMessage, receiver: &AgentId, now_ms: u64) {
        self.dead_letters_total.inc();
        self.tracer.on_dead_letter(message, receiver, now_ms);
    }

    /// Claims the trace span for a handling about to run (also pops the
    /// mailbox-depth gauge). Returns the span to report child sends
    /// against; close it with [`finish_handle`](Self::finish_handle).
    pub fn start_handle(
        &self,
        message: &SharedMessage,
        receiver: &AgentId,
        scope: &ContainerScope,
    ) -> Option<SpanId> {
        scope.mailbox_add(-1);
        self.tracer.start_handle(message, receiver)
    }

    /// Closes a handling: busy-time counters plus the trace span. The
    /// latency histogram gets `now_ms - enqueued_ms` via the span.
    pub fn finish_handle(
        &self,
        span: Option<SpanId>,
        scope: &ContainerScope,
        now_ms: u64,
        busy_ns: u64,
    ) {
        scope.on_handled(busy_ns);
        if let Some(span) = span {
            if let Some(enqueued) = self.tracer.enqueued_ms(span) {
                self.delivery_latency_ms
                    .observe(now_ms.saturating_sub(enqueued));
            }
            self.tracer.finish_handle(span, now_ms, busy_ns);
        }
    }

    /// Total messages delivered across all containers.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total.get()
    }

    /// Total dead letters.
    pub fn dead_letter_total(&self) -> u64 {
        self.dead_letters_total.get()
    }

    /// Per-container statistics, sorted by container name.
    pub fn container_stats(&self) -> Vec<ContainerStats> {
        self.scopes
            .lock()
            .values()
            .map(|scope| ContainerStats {
                container: scope.container.clone(),
                delivered: scope.delivered.get(),
                sent: scope.sent.get(),
                handled: scope.handled.get(),
                mailbox_depth: scope.mailbox_depth.get(),
                busy_ns: scope.busy_ns.get(),
            })
            .collect()
    }

    /// Snapshot of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Prometheus text rendering of the current snapshot.
    pub fn prometheus(&self) -> String {
        export::to_prometheus(&self.snapshot())
    }

    /// JSON rendering of the current snapshot.
    pub fn json(&self) -> String {
        export::to_json(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentgrid_acl::{AclMessage, Performative, Value};

    fn msg(from: &str, to: &str) -> SharedMessage {
        AclMessage::builder(Performative::Inform)
            .sender(AgentId::new(from))
            .receiver(AgentId::new(to))
            .content(Value::symbol("x"))
            .build()
            .unwrap()
            .into_shared()
    }

    #[test]
    fn delivery_lifecycle_updates_counters_gauges_and_trace() {
        let telemetry = Telemetry::new();
        let scope = telemetry.container_scope("c1");
        let m = msg("a", "b@x");
        let receiver = AgentId::new("b@x");
        telemetry.message_sent(&m, None, 0);
        telemetry.message_delivered(&m, &receiver, &scope, 0);
        assert_eq!(scope.mailbox_depth(), 1);
        let span = telemetry.start_handle(&m, &receiver, &scope);
        assert!(span.is_some());
        telemetry.finish_handle(span, &scope, 5, 2_000);
        assert_eq!(scope.mailbox_depth(), 0);
        assert_eq!(telemetry.delivered_total(), 1);
        let stats = telemetry.container_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].handled, 1);
        assert_eq!(stats[0].busy_ns, 2_000);
        let spans = telemetry.tracer().spans();
        assert_eq!(spans[0].handled_ms, Some(5));
    }

    #[test]
    fn stage_mapping_rolls_up_deliveries() {
        let telemetry = Telemetry::new();
        telemetry.set_stage("cg-hq", "collector");
        let scope = telemetry.container_scope("cg-hq");
        scope.on_delivered();
        scope.on_delivered();
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter("agentgrid_stage_messages_total", &[("stage", "collector")]),
            Some(2)
        );
    }

    #[test]
    fn dead_letters_count_globally() {
        let telemetry = Telemetry::new();
        let m = msg("a", "ghost@x");
        telemetry.message_sent(&m, None, 3);
        telemetry.message_dead_lettered(&m, &AgentId::new("ghost@x"), 3);
        assert_eq!(telemetry.dead_letter_total(), 1);
        assert!(telemetry.tracer().spans()[0].dead_lettered);
    }

    #[test]
    fn measured_load_is_bounded_and_monotone_in_pressure() {
        assert_eq!(measured_load(0, 0, 1_000), 0.0);
        let light = measured_load(1, 0, 1_000);
        let heavy = measured_load(50, 0, 1_000);
        assert!(light > 0.0 && light < heavy && heavy < 1.0);
        // Saturated busy window clamps at 1.
        assert_eq!(measured_load(100, 10_000, 1_000), 1.0);
        // Degenerate window is safe.
        assert!(measured_load(0, 5, 0).is_finite());
    }

    #[test]
    fn measured_load_saturates_on_malformed_inputs() {
        // Zero window: treated as 1 ns, still within the ceiling.
        assert_eq!(measured_load(0, u64::MAX, 0), 1.0);
        assert_eq!(measured_load(0, 0, 0), 0.0);
        // Negative mailbox depth (counter underflow) adds no queue
        // pressure.
        assert_eq!(measured_load(-5, 0, 1_000), 0.0);
        assert_eq!(measured_load(-5, 500, 1_000), measured_load(0, 500, 1_000));
        // Busy delta beyond the window reads as a fully busy window,
        // never more: the busy term alone is capped at 1.
        assert_eq!(measured_load(0, 2_000, 1_000), 1.0);
        assert_eq!(measured_load(0, u64::MAX, 1), 1.0);
        // Ceiling holds when both terms are extreme.
        assert_eq!(measured_load(i64::MAX, u64::MAX, 1), 1.0);
    }

    #[test]
    fn trace_drops_surface_as_counter_and_one_event() {
        let telemetry = Telemetry {
            tracer: ConversationTracer::with_capacity(1),
            ..Telemetry::default()
        };
        telemetry.flight_recorder().enable();
        telemetry.message_sent(&msg("a", "b@x"), None, 0);
        assert_eq!(telemetry.trace_dropped_total(), 0);
        telemetry.message_sent(&msg("a", "b@x"), None, 5);
        telemetry.message_sent(&msg("a", "b@x"), None, 9);
        assert_eq!(telemetry.trace_dropped_total(), 2);
        assert_eq!(
            telemetry
                .snapshot()
                .counter("agentgrid_trace_dropped_spans_total", &[]),
            Some(2)
        );
        // Only the first drop produces a flight-recorder event.
        let events: Vec<_> = telemetry.flight_recorder().events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::TraceDropped);
        assert_eq!(events[0].sim_ms, 5);
    }

    #[test]
    fn task_lifecycle_feeds_histogram_and_summary() {
        let telemetry = Telemetry::new();
        assert!(telemetry.task_latency_summary().is_none());
        telemetry.task_created("t1", 0, 0);
        telemetry.task_awarded("t1", "pg-1", 0, false);
        telemetry.task_done("t1", 7_000);
        let summary = telemetry.task_latency_summary().unwrap();
        assert_eq!(summary.count, 1);
        assert_eq!(summary.p99_ms, 7_000);
        let snap = telemetry.snapshot();
        let Some(SampleValue::Histogram { sum, count, .. }) = snap
            .samples
            .iter()
            .find(|s| s.name == "agentgrid_task_latency_ms")
            .map(|s| s.value.clone())
        else {
            panic!("task latency histogram missing");
        };
        assert_eq!((sum, count), (7_000, 1));
    }

    #[test]
    fn exports_include_container_metrics() {
        let telemetry = Telemetry::new();
        telemetry.container_scope("pg-1").on_delivered();
        let prom = telemetry.prometheus();
        assert!(prom.contains("agentgrid_messages_delivered_total{container=\"pg-1\"} 1"));
        let json = telemetry.json();
        assert!(json.contains("agentgrid_messages_delivered_total"));
    }
}
