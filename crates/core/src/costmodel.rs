//! The paper's cost model: Table 1, "Relative times of management tasks".
//!
//! Each management activity consumes relative amounts of CPU, network and
//! disk time. The published table prints explicit numbers for `Request A`
//! (CPU 10, Net 5), the three parses (CPU 15), the per-type inferences
//! (CPU 20, Disk 5) and the cross inference `A×B×C` (CPU 40, Disk 8); the
//! remaining cells (Request B/C, Storing) did not survive the text
//! extraction of the paper and are filled with values consistent with the
//! surrounding rows (requests differ by payload size → network cost;
//! storing is disk-dominated). `EXPERIMENTS.md` documents this.

use std::fmt;

use agentgrid_des::ResourceKind;

/// The three request types of the evaluation scenario (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RequestType {
    /// Type A: e.g. processor usage.
    A,
    /// Type B: e.g. memory/process list.
    B,
    /// Type C: e.g. disk and interface status.
    C,
}

impl RequestType {
    /// All types in order.
    pub const ALL: [RequestType; 3] = [RequestType::A, RequestType::B, RequestType::C];

    /// Single-letter label.
    pub fn label(self) -> &'static str {
        match self {
            RequestType::A => "A",
            RequestType::B => "B",
            RequestType::C => "C",
        }
    }
}

impl fmt::Display for RequestType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A management task with a row in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Poll a managed object set of the given type.
    Request(RequestType),
    /// Parse/normalize a reply of the given type.
    Parse(RequestType),
    /// Store classified data.
    Storing,
    /// Run the per-type inference rules.
    Inference(RequestType),
    /// Cross-correlate the three types (level-3 analysis).
    InferenceCross,
}

impl TaskKind {
    /// Every row of Table 1, in the paper's order.
    pub const ALL: [TaskKind; 11] = [
        TaskKind::Request(RequestType::A),
        TaskKind::Request(RequestType::B),
        TaskKind::Request(RequestType::C),
        TaskKind::Parse(RequestType::A),
        TaskKind::Parse(RequestType::B),
        TaskKind::Parse(RequestType::C),
        TaskKind::Storing,
        TaskKind::Inference(RequestType::A),
        TaskKind::Inference(RequestType::B),
        TaskKind::Inference(RequestType::C),
        TaskKind::InferenceCross,
    ];

    /// The row label as printed in the paper.
    pub fn label(self) -> String {
        match self {
            TaskKind::Request(t) => format!("Request {t}"),
            TaskKind::Parse(t) => format!("Parse {t}"),
            TaskKind::Storing => "Storing".to_owned(),
            TaskKind::Inference(t) => format!("Inference {t}"),
            TaskKind::InferenceCross => "Inference AxBxC".to_owned(),
        }
    }
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Relative resource consumption of one task (one Table 1 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaskCost {
    /// CPU time units.
    pub cpu: u64,
    /// Network time units.
    pub net: u64,
    /// Disk time units.
    pub disk: u64,
}

impl TaskCost {
    /// Creates a cost triple.
    pub const fn new(cpu: u64, net: u64, disk: u64) -> Self {
        TaskCost { cpu, net, disk }
    }

    /// The cost on one resource kind.
    pub fn on(self, kind: ResourceKind) -> u64 {
        match kind {
            ResourceKind::Cpu => self.cpu,
            ResourceKind::Net => self.net,
            ResourceKind::Disk => self.disk,
        }
    }

    /// Total units across resources.
    pub fn total(self) -> u64 {
        self.cpu + self.net + self.disk
    }
}

/// The cost table (Table 1). Immutable by construction; use
/// [`CostModel::with_cost`] to build ablated variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    costs: [(TaskKind, TaskCost); 11],
    /// Factor applied to network transfer of *raw* (unparsed) data —
    /// the paper's "data transmitted ... in raw format" penalty in the
    /// centralized architecture.
    raw_factor: u64,
}

impl CostModel {
    /// The published Table 1 (with the documented fill-ins).
    pub fn table1() -> Self {
        CostModel {
            costs: [
                (TaskKind::Request(RequestType::A), TaskCost::new(10, 5, 0)),
                (TaskKind::Request(RequestType::B), TaskCost::new(10, 10, 0)),
                (TaskKind::Request(RequestType::C), TaskCost::new(10, 15, 0)),
                (TaskKind::Parse(RequestType::A), TaskCost::new(15, 0, 0)),
                (TaskKind::Parse(RequestType::B), TaskCost::new(15, 0, 0)),
                (TaskKind::Parse(RequestType::C), TaskCost::new(15, 0, 0)),
                (TaskKind::Storing, TaskCost::new(5, 0, 10)),
                (TaskKind::Inference(RequestType::A), TaskCost::new(20, 0, 5)),
                (TaskKind::Inference(RequestType::B), TaskCost::new(20, 0, 5)),
                (TaskKind::Inference(RequestType::C), TaskCost::new(20, 0, 5)),
                (TaskKind::InferenceCross, TaskCost::new(40, 0, 8)),
            ],
            raw_factor: 3,
        }
    }

    /// The cost of one task.
    ///
    /// # Panics
    ///
    /// Never — every [`TaskKind`] has a row.
    pub fn cost(&self, task: TaskKind) -> TaskCost {
        self.costs
            .iter()
            .find(|(k, _)| *k == task)
            .map(|(_, c)| *c)
            .expect("every task kind has a cost row")
    }

    /// The raw-data network penalty factor.
    pub fn raw_factor(&self) -> u64 {
        self.raw_factor
    }

    /// Returns a copy with one task's cost replaced (for ablations).
    pub fn with_cost(mut self, task: TaskKind, cost: TaskCost) -> Self {
        for (k, c) in &mut self.costs {
            if *k == task {
                *c = cost;
            }
        }
        self
    }

    /// Returns a copy with a different raw factor.
    pub fn with_raw_factor(mut self, factor: u64) -> Self {
        self.raw_factor = factor;
        self
    }

    /// Iterates over the rows in table order.
    pub fn rows(&self) -> impl Iterator<Item = (TaskKind, TaskCost)> + '_ {
        self.costs.iter().copied()
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<18} {:>5} {:>8} {:>5}\n",
            "Tasks", "CPU", "Network", "Disc"
        );
        for (kind, cost) in self.rows() {
            let show = |v: u64| {
                if v == 0 {
                    String::new()
                } else {
                    v.to_string()
                }
            };
            out.push_str(&format!(
                "{:<18} {:>5} {:>8} {:>5}\n",
                kind.label(),
                show(cost.cpu),
                show(cost.net),
                show(cost.disk)
            ));
        }
        out
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_published_cells() {
        let m = CostModel::table1();
        // Cells that are explicit in the paper text:
        assert_eq!(
            m.cost(TaskKind::Request(RequestType::A)),
            TaskCost::new(10, 5, 0)
        );
        for t in RequestType::ALL {
            assert_eq!(m.cost(TaskKind::Parse(t)).cpu, 15);
            assert_eq!(m.cost(TaskKind::Inference(t)), TaskCost::new(20, 0, 5));
        }
        assert_eq!(m.cost(TaskKind::InferenceCross), TaskCost::new(40, 0, 8));
    }

    #[test]
    fn all_rows_present_exactly_once() {
        let m = CostModel::table1();
        assert_eq!(m.rows().count(), TaskKind::ALL.len());
        for kind in TaskKind::ALL {
            let _ = m.cost(kind); // must not panic
        }
    }

    #[test]
    fn with_cost_overrides_one_row() {
        let m = CostModel::table1().with_cost(TaskKind::Storing, TaskCost::new(1, 2, 3));
        assert_eq!(m.cost(TaskKind::Storing), TaskCost::new(1, 2, 3));
        assert_eq!(m.cost(TaskKind::InferenceCross).cpu, 40, "others untouched");
    }

    #[test]
    fn cost_projection_and_total() {
        let c = TaskCost::new(1, 2, 3);
        assert_eq!(c.on(ResourceKind::Cpu), 1);
        assert_eq!(c.on(ResourceKind::Net), 2);
        assert_eq!(c.on(ResourceKind::Disk), 3);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn render_prints_labels_and_blanks_for_zero() {
        let table = CostModel::table1().render();
        assert!(table.contains("Inference AxBxC"));
        assert!(table.contains("Request A"));
        // Parse rows have no network/disk numbers.
        let parse_line = table.lines().find(|l| l.starts_with("Parse A")).unwrap();
        assert!(parse_line.contains("15"));
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(TaskKind::InferenceCross.label(), "Inference AxBxC");
        assert_eq!(TaskKind::Request(RequestType::B).label(), "Request B");
    }
}
