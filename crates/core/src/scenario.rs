//! The three Figure-6 architectures as discrete-event scenarios.
//!
//! §4.1 evaluates a scenario of *n* requests of each type through three
//! management architectures and compares per-host CPU/network/disk
//! utilization (Figure 6):
//!
//! * [`Architecture::Centralized`] — one manager does everything; raw
//!   data crosses the network (6a);
//! * [`Architecture::MultiAgent`] — two collector hosts parse locally
//!   and forward condensed data, analysis stays centralized (6b);
//! * [`Architecture::AgentGrid`] — three collectors, a storage host and
//!   two inference hosts share the pipeline (6c).
//!
//! [`build_simulation`] translates a [`Workload`] into
//! [`agentgrid_des`] jobs; the same [`CostModel`] drives all three, so
//! differences in the report come purely from the architecture.

use agentgrid_des::{Job, ResourceKind, SimReport, Simulation};

use crate::costmodel::{CostModel, RequestType, TaskKind};

/// Which management architecture to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Figure 6a: a single manager host.
    Centralized,
    /// Figure 6b: collector hosts + a central manager.
    MultiAgent {
        /// Number of collector hosts (the paper uses 2).
        collectors: usize,
    },
    /// Figure 6c: collectors + storage host + inference hosts.
    AgentGrid {
        /// Number of collector hosts (the paper uses 3).
        collectors: usize,
        /// Number of inference hosts (the paper uses 2).
        analyzers: usize,
    },
}

impl Architecture {
    /// The paper's three configurations.
    pub fn paper_configs() -> [Architecture; 3] {
        [
            Architecture::Centralized,
            Architecture::MultiAgent { collectors: 2 },
            Architecture::AgentGrid {
                collectors: 3,
                analyzers: 2,
            },
        ]
    }

    /// Short name used in reports.
    pub fn label(&self) -> String {
        match self {
            Architecture::Centralized => "centralized".to_owned(),
            Architecture::MultiAgent { collectors } => format!("multi-agent({collectors})"),
            Architecture::AgentGrid {
                collectors,
                analyzers,
            } => format!("agent-grid({collectors}+1+{analyzers})"),
        }
    }
}

/// The workload: how many requests of each type, and their arrival
/// spacing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Requests of each type (the paper runs 10).
    pub rounds: usize,
    /// Time units between successive rounds (0 = all at once).
    pub inter_arrival: u64,
}

impl Workload {
    /// The paper's scenario: 10 requests of each type, arriving together.
    pub fn paper() -> Self {
        Workload {
            rounds: 10,
            inter_arrival: 0,
        }
    }

    /// A workload with the given number of rounds, arriving together.
    pub fn rounds(rounds: usize) -> Self {
        Workload {
            rounds,
            inter_arrival: 0,
        }
    }
}

/// Builds the DES for one architecture under one workload.
///
/// Returns the simulation ready to [`run`](Simulation::run); use
/// [`run_architecture`] for the one-liner.
pub fn build_simulation(
    architecture: Architecture,
    workload: Workload,
    costs: &CostModel,
) -> Simulation {
    let mut sim = Simulation::new();
    match architecture {
        Architecture::Centralized => {
            sim.add_host("manager");
            for round in 0..workload.rounds {
                let arrival = round as u64 * workload.inter_arrival;
                for rtype in RequestType::ALL {
                    sim.submit(centralized_job(round, rtype, arrival, costs));
                }
            }
        }
        Architecture::MultiAgent { collectors } => {
            assert!(collectors > 0, "need at least one collector");
            sim.add_host("manager");
            for c in 0..collectors {
                sim.add_host(format!("collector-{}", c + 1));
            }
            for round in 0..workload.rounds {
                let arrival = round as u64 * workload.inter_arrival;
                let collector = format!("collector-{}", (round % collectors) + 1);
                for rtype in RequestType::ALL {
                    sim.submit(multiagent_job(round, rtype, &collector, arrival, costs));
                }
            }
        }
        Architecture::AgentGrid {
            collectors,
            analyzers,
        } => {
            assert!(collectors > 0, "need at least one collector");
            assert!(analyzers > 0, "need at least one analyzer");
            sim.add_host("storage");
            for c in 0..collectors {
                sim.add_host(format!("collector-{}", c + 1));
            }
            for a in 0..analyzers {
                sim.add_host(format!("inference-{}", a + 1));
            }
            let mut next_analyzer = 0usize;
            for round in 0..workload.rounds {
                let arrival = round as u64 * workload.inter_arrival;
                let collector = format!("collector-{}", (round % collectors) + 1);
                for rtype in RequestType::ALL {
                    // Spread inference work round-robin over the analysis
                    // hosts — the grid root's load balancing.
                    let analyzer = format!("inference-{}", (next_analyzer % analyzers) + 1);
                    next_analyzer += 1;
                    sim.submit(grid_job(
                        round, rtype, &collector, &analyzer, arrival, costs,
                    ));
                }
            }
        }
    }
    sim
}

/// Builds and runs one architecture, returning the report.
pub fn run_architecture(
    architecture: Architecture,
    workload: Workload,
    costs: &CostModel,
) -> SimReport {
    build_simulation(architecture, workload, costs).run()
}

fn job_name(architecture: &str, round: usize, rtype: RequestType) -> String {
    format!("{architecture}-r{round}-{rtype}")
}

/// 6a: the manager issues the request, receives RAW data, parses, stores
/// and infers — all on one host.
fn centralized_job(round: usize, rtype: RequestType, arrival: u64, costs: &CostModel) -> Job {
    let request = costs.cost(TaskKind::Request(rtype));
    let parse = costs.cost(TaskKind::Parse(rtype));
    let store = costs.cost(TaskKind::Storing);
    let infer = costs.cost(TaskKind::Inference(rtype));
    let mut job = Job::new(job_name("cen", round, rtype))
        .arrive_at(arrival)
        .stage("manager", ResourceKind::Cpu, request.cpu)
        .stage(
            "manager",
            ResourceKind::Net,
            request.net * costs.raw_factor(),
        )
        .stage("manager", ResourceKind::Cpu, parse.cpu)
        .stage("manager", ResourceKind::Cpu, store.cpu)
        .stage("manager", ResourceKind::Disk, store.disk)
        .stage("manager", ResourceKind::Cpu, infer.cpu)
        .stage("manager", ResourceKind::Disk, infer.disk);
    if rtype == RequestType::C {
        // The round's cross-type inference runs after its last per-type
        // inference (see EXPERIMENTS.md for this simplification).
        let cross = costs.cost(TaskKind::InferenceCross);
        job = job.stage("manager", ResourceKind::Cpu, cross.cpu).stage(
            "manager",
            ResourceKind::Disk,
            cross.disk,
        );
    }
    job
}

/// 6b: a collector issues the request, receives raw data, parses locally
/// and forwards *condensed* data; the manager stores and infers.
fn multiagent_job(
    round: usize,
    rtype: RequestType,
    collector: &str,
    arrival: u64,
    costs: &CostModel,
) -> Job {
    let request = costs.cost(TaskKind::Request(rtype));
    let parse = costs.cost(TaskKind::Parse(rtype));
    let store = costs.cost(TaskKind::Storing);
    let infer = costs.cost(TaskKind::Inference(rtype));
    let mut job = Job::new(job_name("mas", round, rtype))
        .arrive_at(arrival)
        .stage(collector, ResourceKind::Cpu, request.cpu)
        .stage(
            collector,
            ResourceKind::Net,
            request.net * costs.raw_factor(),
        )
        .stage(collector, ResourceKind::Cpu, parse.cpu)
        // Parsed data is smaller: base network cost on both NICs.
        .stage(collector, ResourceKind::Net, request.net)
        .stage("manager", ResourceKind::Net, request.net)
        .stage("manager", ResourceKind::Cpu, store.cpu)
        .stage("manager", ResourceKind::Disk, store.disk)
        .stage("manager", ResourceKind::Cpu, infer.cpu)
        .stage("manager", ResourceKind::Disk, infer.disk);
    if rtype == RequestType::C {
        let cross = costs.cost(TaskKind::InferenceCross);
        job = job.stage("manager", ResourceKind::Cpu, cross.cpu).stage(
            "manager",
            ResourceKind::Disk,
            cross.disk,
        );
    }
    job
}

/// 6c: collector → storage host → inference host; every stage lands on a
/// different machine.
fn grid_job(
    round: usize,
    rtype: RequestType,
    collector: &str,
    analyzer: &str,
    arrival: u64,
    costs: &CostModel,
) -> Job {
    let request = costs.cost(TaskKind::Request(rtype));
    let parse = costs.cost(TaskKind::Parse(rtype));
    let store = costs.cost(TaskKind::Storing);
    let infer = costs.cost(TaskKind::Inference(rtype));
    let mut job = Job::new(job_name("grid", round, rtype))
        .arrive_at(arrival)
        .stage(collector, ResourceKind::Cpu, request.cpu)
        .stage(
            collector,
            ResourceKind::Net,
            request.net * costs.raw_factor(),
        )
        .stage(collector, ResourceKind::Cpu, parse.cpu)
        .stage(collector, ResourceKind::Net, request.net)
        .stage("storage", ResourceKind::Net, request.net)
        .stage("storage", ResourceKind::Cpu, store.cpu)
        .stage("storage", ResourceKind::Disk, store.disk)
        // The analyzer fetches its partition from storage, then infers.
        .stage(analyzer, ResourceKind::Net, request.net)
        .stage(analyzer, ResourceKind::Cpu, infer.cpu)
        .stage(analyzer, ResourceKind::Disk, infer.disk);
    if rtype == RequestType::C {
        let cross = costs.cost(TaskKind::InferenceCross);
        job = job.stage(analyzer, ResourceKind::Cpu, cross.cpu).stage(
            analyzer,
            ResourceKind::Disk,
            cross.disk,
        );
    }
    job
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reports() -> (SimReport, SimReport, SimReport) {
        let costs = CostModel::table1();
        let w = Workload::paper();
        let [cen, mas, grid] = Architecture::paper_configs();
        (
            run_architecture(cen, w, &costs),
            run_architecture(mas, w, &costs),
            run_architecture(grid, w, &costs),
        )
    }

    #[test]
    fn centralized_manager_is_the_bottleneck() {
        let (cen, _, _) = reports();
        let (host, kind, _) = cen.bottleneck().unwrap();
        assert_eq!(host, "manager");
        assert_eq!(
            kind,
            ResourceKind::Cpu,
            "paper: the processor is the bottleneck"
        );
    }

    #[test]
    fn multiagent_reduces_manager_network_traffic() {
        let (cen, mas, _) = reports();
        let cen_net = cen.busy_time("manager", ResourceKind::Net);
        let mas_net = mas.busy_time("manager", ResourceKind::Net);
        assert!(
            mas_net < cen_net,
            "collectors parse locally → less traffic reaches the manager \
             ({mas_net} vs {cen_net})"
        );
    }

    #[test]
    fn multiagent_analysis_still_centralized() {
        let (_, mas, _) = reports();
        let (host, kind, _) = mas.bottleneck().unwrap();
        assert_eq!((host, kind), ("manager", ResourceKind::Cpu));
        // Collectors bear the parse CPU.
        assert!(mas.busy_time("collector-1", ResourceKind::Cpu) > 0);
    }

    #[test]
    fn grid_spreads_load_and_lowers_peak_utilization() {
        let (cen, mas, grid) = reports();
        assert!(
            grid.peak_utilization() < mas.peak_utilization(),
            "grid {} vs mas {}",
            grid.peak_utilization(),
            mas.peak_utilization()
        );
        assert!(mas.peak_utilization() <= cen.peak_utilization() + 1e-9);
        // No single grid host holds a majority of total busy time.
        let grid_hosts = grid.hosts().len();
        assert_eq!(grid_hosts, 6, "3 collectors + storage + 2 inference");
    }

    #[test]
    fn grid_finishes_the_workload_faster() {
        let (cen, mas, grid) = reports();
        assert!(grid.makespan() < mas.makespan());
        assert!(mas.makespan() < cen.makespan());
    }

    #[test]
    fn per_round_work_is_conserved_across_architectures() {
        // Total CPU demand is identical in 6a and 6b (same tasks, different
        // placement); the grid adds no CPU work either.
        let (cen, mas, grid) = reports();
        let total = |r: &SimReport| -> u64 {
            r.hosts()
                .iter()
                .map(|h| r.busy_time(h, ResourceKind::Cpu))
                .sum()
        };
        assert_eq!(total(&cen), total(&mas));
        assert_eq!(total(&mas), total(&grid));
    }

    #[test]
    fn workload_scales_linearly_in_rounds() {
        let costs = CostModel::table1();
        let small = run_architecture(Architecture::Centralized, Workload::rounds(5), &costs);
        let large = run_architecture(Architecture::Centralized, Workload::rounds(10), &costs);
        assert_eq!(
            large.busy_time("manager", ResourceKind::Cpu),
            2 * small.busy_time("manager", ResourceKind::Cpu)
        );
    }

    #[test]
    fn inter_arrival_spreads_jobs_in_time() {
        let costs = CostModel::table1();
        let burst = run_architecture(
            Architecture::Centralized,
            Workload {
                rounds: 5,
                inter_arrival: 0,
            },
            &costs,
        );
        let paced = run_architecture(
            Architecture::Centralized,
            Workload {
                rounds: 5,
                inter_arrival: 1_000,
            },
            &costs,
        );
        assert!(paced.makespan() > burst.makespan());
        assert!(paced.peak_utilization() < burst.peak_utilization());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Architecture::Centralized.label(), "centralized");
        assert_eq!(
            Architecture::AgentGrid {
                collectors: 3,
                analyzers: 2
            }
            .label(),
            "agent-grid(3+1+2)"
        );
    }
}
