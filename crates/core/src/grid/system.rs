use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use agentgrid_acl::ontology::{Alert, ResourceProfile};
use agentgrid_acl::{AclMessage, AgentId, Performative, Value};
use agentgrid_net::{FaultInjector, Network, ScheduledFault};
use agentgrid_platform::{
    NetCommand, NetStats, Platform, PoolRuntime, ReliabilityConfig, Runtime, TelemetryHandle,
    ThreadedRuntime, TransportFault,
};
use agentgrid_rules::{parse_rules, KnowledgeBase};
use agentgrid_store::{Classifier, ManagementStore, StoreBackend};
use agentgrid_telemetry::{measured_load, EventKind, TaskLatencySummary};
use parking_lot::Mutex;

use crate::balance::{KnowledgeCapacityIdle, LoadBalancer};
use crate::chaos::{ChaosAction, ChaosPlan};
use crate::federation::{self, FederationStats};
use crate::grid::interface::AlertSink;
use crate::grid::root::{FederationLink, RootStats};
use crate::grid::{
    AnalyzerAgent, ClassifierAgent, CollectorAgent, CollectorInterface, InterfaceAgent,
    ProcessorRootAgent, DEFAULT_RULES,
};
use crate::overload::{OverloadConfig, PressureSignal};
use crate::recovery::RecoveryConfig;

pub use agentgrid_platform::OverloadStats;

/// Container hosting the processor-grid root.
const ROOT_CONTAINER: &str = "pg-root-ct";

/// Name of the agent platform a grid builds on. Agent ids are a pure
/// function of local name and platform name, so the sharded wiring can
/// compute every peer root's id before any root is spawned.
const PLATFORM_NAME: &str = "grid";

/// How long a healed container stays quarantined (Suspect) after its
/// partition closes — one poll period, covering the heartbeat and
/// retransmissions it owes before awards may trust it again.
const QUARANTINE_GRACE_MS: u64 = 60_000;

/// Containers listed in `groups` that sit in a different group than
/// `anchor` — the set a partition cuts off from it. Empty when `anchor`
/// is not listed, matching the transport's partition semantics
/// (unlisted containers communicate freely).
fn containers_cut_from(anchor: &str, groups: &[Vec<String>]) -> Vec<String> {
    let Some(anchor_group) = groups.iter().position(|g| g.iter().any(|c| c == anchor)) else {
        return Vec::new();
    };
    groups
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != anchor_group)
        .flat_map(|(_, g)| g.iter().cloned())
        .collect()
}

/// Configuration of one analyzer container.
#[derive(Debug, Clone)]
struct AnalyzerSpec {
    name: String,
    cpu_capacity: f64,
    skills: Vec<String>,
}

/// Builder for [`ManagementGrid`] (see [`ManagementGrid::builder`]).
pub struct GridBuilder {
    network: Network,
    poll_period_ms: u64,
    collectors_per_site: usize,
    analyzers: Vec<AnalyzerSpec>,
    policy: Box<dyn LoadBalancer>,
    rules: String,
    faults: FaultInjector,
    telemetry: Option<TelemetryHandle>,
    live_profiles: bool,
    recovery: Option<RecoveryConfig>,
    chaos: Option<ChaosPlan>,
    overload: Option<OverloadConfig>,
    store_backend: StoreBackend,
    net_seed: Option<u64>,
    reliability: Option<ReliabilityConfig>,
    shards: usize,
}

impl fmt::Debug for GridBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GridBuilder")
            .field("poll_period_ms", &self.poll_period_ms)
            .field("collectors_per_site", &self.collectors_per_site)
            .field("analyzers", &self.analyzers.len())
            .finish()
    }
}

impl GridBuilder {
    /// Sets the simulated network to manage (required).
    pub fn network(mut self, network: Network) -> Self {
        self.network = network;
        self
    }

    /// Sets the collectors' poll period in simulated milliseconds
    /// (default 60 000).
    pub fn poll_period_ms(mut self, period: u64) -> Self {
        self.poll_period_ms = period;
        self
    }

    /// Sets how many collector agents each site gets (default 1). They
    /// split the site's devices and alternate SNMP/CLI interfaces.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn collectors_per_site(mut self, collectors: usize) -> Self {
        assert!(collectors > 0, "need at least one collector per site");
        self.collectors_per_site = collectors;
        self
    }

    /// Adds an analyzer container with a CPU capacity factor and the
    /// analysis skills (partitions) it can process.
    pub fn analyzer(
        mut self,
        name: impl Into<String>,
        cpu_capacity: f64,
        skills: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        self.analyzers.push(AnalyzerSpec {
            name: name.into(),
            cpu_capacity,
            skills: skills.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// Replaces the load-balancing policy (default
    /// [`KnowledgeCapacityIdle`]).
    pub fn policy(mut self, policy: impl LoadBalancer + 'static) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Replaces the analysis rules (default [`DEFAULT_RULES`]).
    pub fn rules(mut self, rules: impl Into<String>) -> Self {
        self.rules = rules.into();
        self
    }

    /// Schedules a fault on the managed network.
    pub fn fault(mut self, fault: ScheduledFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Attaches a telemetry sink: the runtime records per-container
    /// metrics and conversation traces into it, the root exports broker
    /// counters, and each container is mapped onto its grid stage
    /// (collector, classifier, root, analyzer, interface).
    pub fn telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Turns on the recovery layer (heartbeat liveness, deadline
    /// retries with seeded backoff, reclaim-and-re-broker of dead
    /// containers' tasks, requeue-once dead letters). Default off,
    /// keeping unconfigured runs byte-for-byte identical to the
    /// pre-recovery grid.
    pub fn recovery(mut self, config: RecoveryConfig) -> Self {
        self.recovery = Some(config);
        self
    }

    /// Attaches a chaos schedule: container crashes/restarts and
    /// transport-fault windows applied at the top of each tick. Implies
    /// [`recovery`](Self::recovery) with defaults unless one was set
    /// explicitly.
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Turns on the overload-protection layer ([`OverloadConfig`]):
    /// bounded mailboxes with priority shedding, root admission
    /// control, per-container circuit breakers and collector pacing —
    /// each mechanism individually opt-in inside the config. A
    /// configured breaker implies [`recovery`](Self::recovery) defaults
    /// (its failure signal is the recovery layer's award deadlines).
    /// Default off, keeping unconfigured runs byte-for-byte identical
    /// to the unprotected grid.
    pub fn overload(mut self, config: OverloadConfig) -> Self {
        self.overload = Some(config);
        self
    }

    /// Seeds the deterministic network adversary. Link faults and
    /// partitions scheduled through [`chaos`](Self::chaos) (or issued
    /// live via [`Runtime::net_command`]) draw every drop/delay/
    /// duplicate decision from this seed, so two runs with the same
    /// seed and schedule misbehave identically. Default off — without a
    /// seed (and without net chaos actions) runs stay byte-for-byte
    /// identical to the adversary-free grid.
    pub fn net_adversary(mut self, seed: u64) -> Self {
        self.net_seed = Some(seed);
        self
    }

    /// Turns on reliable ACL delivery: per-link sequence numbers, a
    /// retransmit buffer with seeded exponential backoff, and a dedup
    /// window giving exactly-once *effective* delivery under loss,
    /// duplication and partitions. Implies nothing by itself — pair it
    /// with [`net_adversary`](Self::net_adversary) and a chaos plan to
    /// exercise it. Default off.
    pub fn reliability(mut self, config: ReliabilityConfig) -> Self {
        self.reliability = Some(config);
        self
    }

    /// Splits the grid into `n` federated peer shards (domain
    /// partitioning). Sites are dealt round-robin over the shards
    /// ([`federation::shard_of_site`]); each shard gets its own root,
    /// classifier, store, network domain and a round-robin subset of
    /// the analyzer containers — same total capacity as the unsharded
    /// grid — and the roots cooperate through the
    /// [`federation`](crate::federation) protocol: per-tick load
    /// gossip, task spill-over on admission rejection or broker
    /// failure, and cross-domain finding summaries on the correlation
    /// cadence. On the pool runtime each shard's pipeline stages tick
    /// as one parallel group, so shards run concurrently — the source
    /// of the near-linear device-count scaling.
    ///
    /// `1` (the default) keeps the single-domain wiring byte-identical
    /// to the unsharded grid.
    ///
    /// # Panics
    ///
    /// `build*` panics if fewer analyzer containers than shards were
    /// configured.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        self.shards = shards;
        self
    }

    /// Selects the management-store engine (default
    /// [`StoreBackend::Chunked`]). The naive backend is the executable
    /// spec the chunked engine is tested against; running a grid on it
    /// (CI's store-parity smoke does) must produce byte-identical
    /// reports.
    pub fn store_backend(mut self, backend: StoreBackend) -> Self {
        self.store_backend = backend;
        self
    }

    /// Feeds **measured** load (mailbox depth + handler busy time, the
    /// paper's Fig. 4 resource profile as observed rather than declared)
    /// into the directory each tick, so [`KnowledgeCapacityIdle`] ranks
    /// containers by real idleness. Requires
    /// [`telemetry`](Self::telemetry); default off, keeping runs without
    /// a sink byte-for-byte identical to the uninstrumented grid.
    pub fn live_profiles(mut self, enabled: bool) -> Self {
        self.live_profiles = enabled;
        self
    }

    /// Builds and wires the grid on the deterministic stepper (the
    /// default runtime: reproducible runs, ideal for tests and
    /// experiments).
    ///
    /// # Panics
    ///
    /// Panics if the rule text does not parse or no analyzer container
    /// was configured.
    pub fn build(self) -> ManagementGrid {
        self.build_on::<Platform>()
    }

    /// Builds and wires the grid on the threaded runtime: one OS thread
    /// per container, nondeterministic cross-container ordering — the
    /// deployment-shaped execution model.
    ///
    /// # Panics
    ///
    /// As [`build`](Self::build).
    pub fn build_threaded(self) -> ManagementGrid<ThreadedRuntime> {
        self.build_on::<ThreadedRuntime>()
    }

    /// Builds and wires the grid on the work-stealing pool runtime:
    /// collector containers (the wide, independent tier) tick on a
    /// stolen-batch thread pool while the narrow pipeline stages stay
    /// sequential. Reports are byte-identical to [`build`](Self::build)
    /// — the pool trades wall-clock time, never determinism.
    ///
    /// # Panics
    ///
    /// As [`build`](Self::build).
    pub fn build_pool(self) -> ManagementGrid<PoolRuntime> {
        self.build_on::<PoolRuntime>()
    }

    /// Builds and wires the grid on any [`Runtime`]. The wiring — and
    /// all agent code — is identical across runtimes; only the execution
    /// model differs.
    ///
    /// # Panics
    ///
    /// As [`build`](Self::build).
    pub fn build_on<R: Runtime>(self) -> ManagementGrid<R> {
        assert!(
            !self.analyzers.is_empty(),
            "configure at least one analyzer container"
        );
        if self.shards > 1 {
            return self.build_sharded_on::<R>();
        }
        // One compiled knowledge base, shared by every analyzer (and kept
        // for chaos restarts); analyzers copy-on-write if they learn.
        let kb = Arc::new(KnowledgeBase::from_rules(
            parse_rules(&self.rules).expect("analysis rules must parse"),
        ));
        // A chaos schedule without an explicit recovery config gets the
        // defaults — injecting failures without the means to survive
        // them is never what a caller wants. Likewise a circuit breaker
        // without recovery: its failure signal is the recovery layer's
        // award deadlines.
        let overload = self.overload.unwrap_or_default();
        let recovery = self
            .recovery
            .or_else(|| self.chaos.as_ref().map(|_| RecoveryConfig::default()))
            .or_else(|| overload.breaker.map(|_| RecoveryConfig::default()));

        let network = Arc::new(Mutex::new(self.network));
        let store = Arc::new(Mutex::new(ManagementStore::with_backend(
            self.store_backend,
            Classifier::standard(),
        )));
        let alerts: AlertSink = Arc::new(Mutex::new(Vec::new()));
        let mut platform = R::create(PLATFORM_NAME);
        if recovery.is_some() {
            platform.set_dead_letter_requeue(true);
        }
        if let Some(seed) = self.net_seed {
            platform.net_command(NetCommand::Seed(seed));
        }
        if let Some(config) = self.reliability {
            platform.net_command(NetCommand::SetReliability(config));
        }
        // Bounded mailboxes at the platform layer; the pressure signal
        // exists only when collector pacing wants to observe it.
        let pressure = overload
            .mailbox
            .filter(|_| overload.collector_pacing)
            .map(|_| Arc::new(PressureSignal::new()));
        if let Some(mailbox) = overload.mailbox {
            platform.set_overload(mailbox, pressure.clone());
        }
        let paced_polls = Arc::new(AtomicU64::new(0));
        let match_attempts = Arc::new(AtomicU64::new(0));
        if let Some(telemetry) = &self.telemetry {
            platform.set_telemetry(Arc::clone(telemetry));
            telemetry.set_stage("ig", "interface");
            telemetry.set_stage("pg-root-ct", "root");
            telemetry.set_stage("clg", "classifier");
            for spec in &self.analyzers {
                telemetry.set_stage(&spec.name, "analyzer");
            }
        }

        // Interface grid.
        platform.add_container("ig");
        let interface_id = platform
            .spawn_agent("ig", "interface", InterfaceAgent::new(Arc::clone(&alerts)))
            .expect("fresh platform");

        // Processor grid root.
        platform.add_container("pg-root-ct");
        let mut root_agent = ProcessorRootAgent::new(self.policy);
        if let Some(telemetry) = &self.telemetry {
            root_agent.attach_telemetry(telemetry);
        }
        if let Some(cfg) = recovery {
            root_agent.set_recovery(cfg, Some(interface_id.clone()));
        }
        let quarantine: Arc<Mutex<BTreeMap<String, u64>>> = Arc::new(Mutex::new(BTreeMap::new()));
        if recovery.is_some() {
            root_agent.set_quarantine(Arc::clone(&quarantine));
        }
        if overload.admission.is_some() || overload.breaker.is_some() {
            root_agent.set_overload(overload.admission, overload.breaker);
        }
        let root_stats = root_agent.stats_handle();
        let root_id = platform
            .spawn_agent("pg-root-ct", "pg-root", root_agent)
            .expect("fresh platform");

        // Analyzer containers.
        for spec in &self.analyzers {
            platform.add_container(&spec.name);
            let analyzer =
                AnalyzerAgent::shared(Arc::clone(&store), Arc::clone(&kb), interface_id.clone())
                    .with_match_counter(Arc::clone(&match_attempts));
            let analyzer_id = platform
                .spawn_agent(&spec.name, &format!("analyzer-{}", spec.name), analyzer)
                .expect("container just added");
            let mut profile = ResourceProfile::new(
                &spec.name,
                spec.cpu_capacity,
                1.0,
                4096,
                spec.skills.iter().cloned(),
            );
            profile.load = 0.0;
            platform.with_df(|df| {
                df.register_container(profile);
                df.register_service(analyzer_id, "analysis", [spec.name.clone()]);
            });
        }

        // Classifier grid.
        platform.add_container("clg");
        let classifier_id = platform
            .spawn_agent(
                "clg",
                "classifier",
                ClassifierAgent::new(Arc::clone(&store), root_id.clone()),
            )
            .expect("fresh platform");

        // Collector grid: one container per site; devices split among
        // the site's collectors, interfaces alternating SNMP/CLI.
        let sites: Vec<(String, Vec<String>)> = {
            let net = network.lock();
            net.sites()
                .map(|s| (s.name().to_owned(), s.device_names().to_vec()))
                .collect()
        };
        for (site, devices) in &sites {
            let container = format!("cg-{site}");
            if let Some(telemetry) = &self.telemetry {
                telemetry.set_stage(&container, "collector");
            }
            platform.add_container(&container);
            // Collector containers only poll devices and forward
            // samples — no cross-container state — so they are safe to
            // tick concurrently on the pool runtime. A no-op elsewhere.
            platform.hint_parallel(&container);
            for c in 0..self.collectors_per_site {
                let assigned: Vec<String> = devices
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % self.collectors_per_site == c)
                    .map(|(_, d)| d.clone())
                    .collect();
                if assigned.is_empty() {
                    continue;
                }
                let interface = if c % 2 == 0 {
                    CollectorInterface::Snmp
                } else {
                    CollectorInterface::Cli
                };
                let mut collector = CollectorAgent::new(
                    Arc::clone(&network),
                    assigned,
                    interface,
                    self.poll_period_ms,
                    classifier_id.clone(),
                    site.clone(),
                );
                if let Some(cfg) = recovery {
                    collector.set_backoff(cfg.backoff);
                    if let Some(telemetry) = &self.telemetry {
                        collector.set_retry_metric(
                            telemetry
                                .registry()
                                .counter("agentgrid_retries_total", &[("component", "collector")]),
                        );
                    }
                }
                if let Some(signal) = &pressure {
                    collector.set_pacing(Arc::clone(signal), Arc::clone(&paced_polls));
                }
                platform
                    .spawn_agent(&container, &format!("cg-{site}-{c}"), collector)
                    .expect("container just added");
            }
        }

        ManagementGrid {
            platform,
            network,
            store,
            alerts,
            injector: self.faults,
            root_stats,
            interface_id,
            ticks: 0,
            live_profiles: self.live_profiles,
            last_busy_ns: BTreeMap::new(),
            kb,
            specs: self.analyzers,
            chaos: self.chaos.unwrap_or_default(),
            chaos_cursor: 0,
            downed: BTreeSet::new(),
            quarantine,
            partition_members: BTreeMap::new(),
            paced_polls,
            match_attempts,
            shards: 1,
            peer_networks: Vec::new(),
            peer_stores: Vec::new(),
            peer_root_stats: Vec::new(),
            federation_stats: Vec::new(),
            analyzer_shard: BTreeMap::new(),
        }
    }

    /// The federated wiring behind [`shards`](Self::shards): N peer
    /// grids — each its own root, classifier, analyzer subset, store
    /// and network domain — on one platform, cooperating through the
    /// [`federation`](crate::federation) protocol. Shard membership is
    /// [`federation::shard_of_site`] over the sites in sorted name
    /// order; analyzer containers are dealt round-robin, so the
    /// federation runs on exactly the capacity the unsharded grid
    /// would — any speedup comes from shards ticking concurrently,
    /// never from extra hardware.
    fn build_sharded_on<R: Runtime>(mut self) -> ManagementGrid<R> {
        let shards = self.shards;
        assert!(
            self.analyzers.len() >= shards,
            "need at least one analyzer container per shard"
        );
        let kb = Arc::new(KnowledgeBase::from_rules(
            parse_rules(&self.rules).expect("analysis rules must parse"),
        ));
        let overload = self.overload.unwrap_or_default();
        let recovery = self
            .recovery
            .or_else(|| self.chaos.as_ref().map(|_| RecoveryConfig::default()))
            .or_else(|| overload.breaker.map(|_| RecoveryConfig::default()));

        // Partition the managed network by site; shard 0 keeps the
        // original `Network` value, peers split off their sites.
        let site_names: Vec<String> = self.network.sites().map(|s| s.name().to_owned()).collect();
        let mut shard_sites: Vec<Vec<String>> = vec![Vec::new(); shards];
        for (i, name) in site_names.iter().enumerate() {
            shard_sites[federation::shard_of_site(i, shards)].push(name.clone());
        }
        let peer_nets: Vec<Network> = (1..shards)
            .map(|s| {
                let names: Vec<&str> = shard_sites[s].iter().map(String::as_str).collect();
                self.network.split_sites(&names)
            })
            .collect();
        let mut networks: Vec<Arc<Mutex<Network>>> = Vec::with_capacity(shards);
        networks.push(Arc::new(Mutex::new(self.network)));
        networks.extend(peer_nets.into_iter().map(|n| Arc::new(Mutex::new(n))));
        let mut stores: Vec<Arc<Mutex<ManagementStore>>> = (0..shards)
            .map(|_| {
                Arc::new(Mutex::new(ManagementStore::with_backend(
                    self.store_backend,
                    Classifier::standard(),
                )))
            })
            .collect();

        let alerts: AlertSink = Arc::new(Mutex::new(Vec::new()));
        let mut platform = R::create(PLATFORM_NAME);
        if recovery.is_some() {
            platform.set_dead_letter_requeue(true);
        }
        if let Some(seed) = self.net_seed {
            platform.net_command(NetCommand::Seed(seed));
        }
        if let Some(config) = self.reliability {
            platform.net_command(NetCommand::SetReliability(config));
        }
        let pressure = overload
            .mailbox
            .filter(|_| overload.collector_pacing)
            .map(|_| Arc::new(PressureSignal::new()));
        if let Some(mailbox) = overload.mailbox {
            platform.set_overload(mailbox, pressure.clone());
        }
        let paced_polls = Arc::new(AtomicU64::new(0));
        let match_attempts = Arc::new(AtomicU64::new(0));

        // Analyzer containers dealt round-robin over the shards.
        let shard_specs: Vec<Vec<AnalyzerSpec>> = (0..shards)
            .map(|s| {
                self.analyzers
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % shards == s)
                    .map(|(_, spec)| spec.clone())
                    .collect()
            })
            .collect();

        if let Some(telemetry) = &self.telemetry {
            platform.set_telemetry(Arc::clone(telemetry));
            telemetry.set_stage("ig", "interface");
            for s in 0..shards {
                telemetry.set_stage(&format!("pg-root-s{s}"), "root");
                telemetry.set_stage(&format!("clg-s{s}"), "classifier");
            }
            for spec in &self.analyzers {
                telemetry.set_stage(&spec.name, "analyzer");
            }
        }

        // One shared interface grid: every shard's alerts and
        // escalations land in a single operator-facing place.
        platform.add_container("ig");
        let interface_id = platform
            .spawn_agent("ig", "interface", InterfaceAgent::new(Arc::clone(&alerts)))
            .expect("fresh platform");

        // Peer root ids are computable before any root spawns: agent
        // ids are a pure function of local and platform name.
        let root_ids: Vec<AgentId> = (0..shards)
            .map(|s| AgentId::with_platform(format!("pg-root-s{s}"), PLATFORM_NAME))
            .collect();

        let quarantine: Arc<Mutex<BTreeMap<String, u64>>> = Arc::new(Mutex::new(BTreeMap::new()));
        let mut root_stats_all = Vec::with_capacity(shards);
        let mut federation_stats = Vec::with_capacity(shards);
        let mut analyzer_shard = BTreeMap::new();

        for s in 0..shards {
            // Root, classifier and analyzers of one shard form a
            // dependent pipeline; as one named group they tick
            // internally in order but concurrently with other shards
            // on the pool runtime — the source of the sharded speedup.
            let group = format!("shard-{s}");
            let root_container = format!("pg-root-s{s}");
            platform.add_container(&root_container);
            platform.hint_parallel_group(&group, &root_container);
            let mut root_agent = ProcessorRootAgent::new(self.policy.boxed_clone());
            if let Some(telemetry) = &self.telemetry {
                root_agent.attach_telemetry(telemetry);
            }
            if let Some(cfg) = recovery {
                root_agent.set_recovery(cfg, Some(interface_id.clone()));
            }
            if recovery.is_some() {
                root_agent.set_quarantine(Arc::clone(&quarantine));
            }
            if overload.admission.is_some() || overload.breaker.is_some() {
                root_agent.set_overload(overload.admission, overload.breaker);
            }
            let fed_stats = Arc::new(Mutex::new(FederationStats::default()));
            root_agent.set_federation(FederationLink {
                shard: s,
                peers: root_ids
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| *p != s)
                    .map(|(p, id)| (p, id.clone()))
                    .collect(),
                service: federation::shard_service(s),
                store: Arc::clone(&stores[s]),
                stats: Arc::clone(&fed_stats),
            });
            root_stats_all.push(root_agent.stats_handle());
            federation_stats.push(fed_stats);
            let root_id = platform
                .spawn_agent(&root_container, &format!("pg-root-s{s}"), root_agent)
                .expect("container just added");
            debug_assert_eq!(root_id, root_ids[s], "precomputed peer ids must match");

            for spec in &shard_specs[s] {
                platform.add_container(&spec.name);
                platform.hint_parallel_group(&group, &spec.name);
                let analyzer = AnalyzerAgent::shared(
                    Arc::clone(&stores[s]),
                    Arc::clone(&kb),
                    interface_id.clone(),
                )
                .with_match_counter(Arc::clone(&match_attempts));
                let analyzer_id = platform
                    .spawn_agent(&spec.name, &format!("analyzer-{}", spec.name), analyzer)
                    .expect("container just added");
                let mut profile = ResourceProfile::new(
                    &spec.name,
                    spec.cpu_capacity,
                    1.0,
                    4096,
                    spec.skills.iter().cloned(),
                );
                profile.load = 0.0;
                platform.with_df(|df| {
                    df.register_container(profile);
                    // Both entries: the shard service scopes this
                    // root's brokering to its own tier, while the
                    // global one keeps interface-grid rule broadcasts
                    // reaching every analyzer in the federation.
                    df.register_service(analyzer_id.clone(), "analysis", [spec.name.clone()]);
                    df.register_service(
                        analyzer_id,
                        federation::shard_service(s),
                        [spec.name.clone()],
                    );
                });
                analyzer_shard.insert(spec.name.clone(), s);
            }

            let clg_container = format!("clg-s{s}");
            platform.add_container(&clg_container);
            platform.hint_parallel_group(&group, &clg_container);
            let classifier_id = platform
                .spawn_agent(
                    &clg_container,
                    &format!("classifier-s{s}"),
                    ClassifierAgent::new(Arc::clone(&stores[s]), root_ids[s].clone()),
                )
                .expect("container just added");

            // This shard's collector grid — exactly the unsharded
            // wiring, over the shard's own network domain.
            let sites: Vec<(String, Vec<String>)> = {
                let net = networks[s].lock();
                net.sites()
                    .map(|site| (site.name().to_owned(), site.device_names().to_vec()))
                    .collect()
            };
            for (site, devices) in &sites {
                let container = format!("cg-{site}");
                if let Some(telemetry) = &self.telemetry {
                    telemetry.set_stage(&container, "collector");
                }
                platform.add_container(&container);
                platform.hint_parallel(&container);
                for c in 0..self.collectors_per_site {
                    let assigned: Vec<String> = devices
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % self.collectors_per_site == c)
                        .map(|(_, d)| d.clone())
                        .collect();
                    if assigned.is_empty() {
                        continue;
                    }
                    let interface = if c % 2 == 0 {
                        CollectorInterface::Snmp
                    } else {
                        CollectorInterface::Cli
                    };
                    let mut collector = CollectorAgent::new(
                        Arc::clone(&networks[s]),
                        assigned,
                        interface,
                        self.poll_period_ms,
                        classifier_id.clone(),
                        site.clone(),
                    );
                    if let Some(cfg) = recovery {
                        collector.set_backoff(cfg.backoff);
                        if let Some(telemetry) = &self.telemetry {
                            collector.set_retry_metric(
                                telemetry.registry().counter(
                                    "agentgrid_retries_total",
                                    &[("component", "collector")],
                                ),
                            );
                        }
                    }
                    if let Some(signal) = &pressure {
                        collector.set_pacing(Arc::clone(signal), Arc::clone(&paced_polls));
                    }
                    platform
                        .spawn_agent(&container, &format!("cg-{site}-{c}"), collector)
                        .expect("container just added");
                }
            }
        }

        let network = networks.remove(0);
        let store = stores.remove(0);
        let root_stats = root_stats_all.remove(0);
        ManagementGrid {
            platform,
            network,
            store,
            alerts,
            injector: self.faults,
            root_stats,
            interface_id,
            ticks: 0,
            live_profiles: self.live_profiles,
            last_busy_ns: BTreeMap::new(),
            kb,
            specs: self.analyzers,
            chaos: self.chaos.unwrap_or_default(),
            chaos_cursor: 0,
            downed: BTreeSet::new(),
            quarantine,
            partition_members: BTreeMap::new(),
            paced_polls,
            match_attempts,
            shards,
            peer_networks: networks,
            peer_stores: stores,
            peer_root_stats: root_stats_all,
            federation_stats,
            analyzer_shard,
        }
    }
}

/// Summary of one grid run — what the interface grid would render for
/// the operator, plus internal accounting for tests and benchmarks.
#[derive(Debug, Clone)]
pub struct GridReport {
    /// Simulated duration covered.
    pub duration_ms: u64,
    /// Alerts raised, in order.
    pub alerts: Vec<Alert>,
    /// Points in the management store at the end.
    pub records_stored: usize,
    /// ACL messages delivered.
    pub messages_delivered: u64,
    /// Messages that could not be delivered.
    pub dead_letters: usize,
    /// `(task, container)` assignment log.
    pub assignments: Vec<(String, String)>,
    /// Tasks with no capable container.
    pub unassigned: u64,
    /// Tasks re-brokered after container death.
    pub reassigned: u64,
    /// Tasks completed.
    pub tasks_completed: u64,
    /// Ids of completed tasks, in completion order.
    pub completed_ids: Vec<String>,
    /// Ids of tasks re-awarded through a fresh brokering round (once per
    /// re-award; recovery mode).
    pub rebrokered: Vec<String>,
    /// Deadline-driven broker retries sent (recovery mode).
    pub retries: u64,
    /// Retry-exhaustion / container-death escalations raised (recovery
    /// mode).
    pub escalations: u64,
    /// Ids still in flight or parked at the root when the run ended —
    /// owed a completion, not lost.
    pub outstanding: Vec<String>,
    /// Messages shed by the bounded-mailbox overflow policy (overload
    /// mode; all classes combined).
    pub shed: u64,
    /// Task awards turned away by the root's admission gate (overload
    /// mode).
    pub rejected: u64,
    /// Collector polls whose interval was stretched under downstream
    /// pressure (overload mode).
    pub paced_polls: u64,
    /// End-to-end task-latency percentiles (observation → done, in
    /// simulated time), present only when telemetry is attached and at
    /// least one task span completed.
    pub task_latency: Option<TaskLatencySummary>,
    /// Network-adversary and reliability counters (drops, delays,
    /// duplicates, retransmits, dedup suppressions); `None` unless a
    /// net adversary or reliability protocol was configured.
    pub net: Option<NetStats>,
    /// Number of federated domain shards the grid ran as (1 = the
    /// classic single-domain grid).
    pub shards: usize,
    /// Tasks the roots created from `data-ready` notifications. A
    /// spilled task counts at its origin shard only, so this counts
    /// every task in the federation exactly once.
    pub tasks_created: u64,
    /// Tasks created per shard, in shard order (empty unsharded).
    pub shard_created: Vec<u64>,
    /// Federation counters summed over the shards (all zero unsharded).
    pub federation: FederationStats,
}

impl GridReport {
    /// Task ids that were assigned, never completed, and are no longer
    /// tracked anywhere — permanently lost work. A recovery-enabled grid
    /// must keep this empty under any chaos plan.
    pub fn lost_tasks(&self) -> Vec<&str> {
        let completed: BTreeSet<&str> = self.completed_ids.iter().map(String::as_str).collect();
        let outstanding: BTreeSet<&str> = self.outstanding.iter().map(String::as_str).collect();
        let mut lost = Vec::new();
        let mut seen = BTreeSet::new();
        for (id, _) in &self.assignments {
            if seen.insert(id.as_str())
                && !completed.contains(id.as_str())
                && !outstanding.contains(id.as_str())
            {
                lost.push(id.as_str());
            }
        }
        lost
    }

    /// Created minus completed minus still-outstanding, federation-wide
    /// (a task spilled mid-flight sits in two shards' outstanding sets,
    /// hence the dedup). Positive means tasks vanished, negative means
    /// something was double-counted; any conserving run reports zero.
    pub fn unaccounted_tasks(&self) -> i64 {
        let outstanding: BTreeSet<&str> = self.outstanding.iter().map(String::as_str).collect();
        self.tasks_created as i64 - self.tasks_completed as i64 - outstanding.len() as i64
    }

    /// Tasks per container, for balance inspection.
    pub fn tasks_per_container(&self) -> BTreeMap<&str, usize> {
        let mut out = BTreeMap::new();
        for (_, container) in &self.assignments {
            *out.entry(container.as_str()).or_insert(0) += 1;
        }
        out
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "grid run over {} ms: {} records stored, {} messages, {} tasks \
             ({} completed, {} unassigned, {} reassigned), {} alerts\n",
            self.duration_ms,
            self.records_stored,
            self.messages_delivered,
            self.assignments.len(),
            self.tasks_completed,
            self.unassigned,
            self.reassigned,
            self.alerts.len(),
        ));
        for (container, tasks) in self.tasks_per_container() {
            out.push_str(&format!("  {container}: {tasks} tasks\n"));
        }
        if self.retries + self.escalations > 0 || !self.rebrokered.is_empty() {
            out.push_str(&format!(
                "  recovery: {} retries, {} re-brokered, {} escalations\n",
                self.retries,
                self.rebrokered.len(),
                self.escalations,
            ));
        }
        if self.shed + self.rejected + self.paced_polls > 0 {
            out.push_str(&format!(
                "  overload: {} shed, {} rejected, {} paced polls\n",
                self.shed, self.rejected, self.paced_polls,
            ));
        }
        if self.shards > 1 || self.federation.spilled_out > 0 {
            let per_shard = self
                .shard_created
                .iter()
                .enumerate()
                .map(|(s, n)| format!("s{s} {n}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "  shards: {} domains, created per shard: {per_shard}\n",
                self.shards,
            ));
            out.push_str(&format!(
                "  federation: {} spilled out, {} absorbed, {} confirmed, \
                 {} summaries sent, {} received, {} findings injected\n",
                self.federation.spilled_out,
                self.federation.spilled_in,
                self.federation.spill_completed,
                self.federation.summaries_sent,
                self.federation.summaries_received,
                self.federation.injected_findings,
            ));
        }
        if let Some(net) = self.net.filter(|n| n.any()) {
            out.push_str(&format!(
                "  network: {} dropped, {} partition-dropped, {} delayed, {} duplicated, \
                 {} reordered\n",
                net.dropped, net.partition_dropped, net.delayed, net.duplicated, net.reordered,
            ));
            if net.retransmits + net.delivered_after_retry + net.dup_suppressed > 0 {
                out.push_str(&format!(
                    "  reliability: {} retransmits, {} delivered after retry, \
                     {} duplicates suppressed, {} retransmit overflows\n",
                    net.retransmits,
                    net.delivered_after_retry,
                    net.dup_suppressed,
                    net.retransmit_overflow,
                ));
            }
        }
        if let Some(lat) = &self.task_latency {
            out.push_str(&format!(
                "  task latency: p50 {} ms, p95 {} ms, p99 {} ms ({} completed spans)\n",
                lat.p50_ms, lat.p95_ms, lat.p99_ms, lat.count,
            ));
        }
        out.push_str(&InterfaceAgent::render_report(&self.alerts));
        out
    }
}

impl fmt::Display for GridReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The complete live management grid (paper Fig. 2): simulated network,
/// platform, four agent grids and fault injection, behind one facade.
///
/// # Examples
///
/// ```
/// use agentgrid::grid::ManagementGrid;
/// use agentgrid_net::{Device, DeviceKind, Network};
///
/// let mut network = Network::new();
/// network.add_device(Device::builder("srv-1", DeviceKind::Server).site("hq").seed(1).build());
///
/// let mut grid = ManagementGrid::builder()
///     .network(network)
///     .analyzer("pg-1", 1.0, ["cpu", "disk", "memory", "interface", "process", "system", "other", "correlation"])
///     .build();
/// let report = grid.run(5 * 60_000, 60_000);
/// assert!(report.records_stored > 0);
/// ```
pub struct ManagementGrid<R: Runtime = Platform> {
    platform: R,
    network: Arc<Mutex<Network>>,
    store: Arc<Mutex<ManagementStore>>,
    alerts: AlertSink,
    injector: FaultInjector,
    root_stats: Arc<Mutex<RootStats>>,
    interface_id: AgentId,
    ticks: u64,
    live_profiles: bool,
    /// Busy-ns counter values at the previous tick, for windowed deltas.
    last_busy_ns: BTreeMap<String, u64>,
    /// Knowledge base shared by every analyzer, including restarted ones.
    kb: Arc<KnowledgeBase>,
    /// Analyzer container specs, kept for chaos restarts.
    specs: Vec<AnalyzerSpec>,
    /// Scheduled chaos events, sorted by due time.
    chaos: ChaosPlan,
    /// First not-yet-applied chaos event.
    chaos_cursor: usize,
    /// Containers currently down because a chaos crash removed them (a
    /// restart only makes sense for these).
    downed: BTreeSet<String>,
    /// Partition quarantine shared with the root (container →
    /// quarantined-until, simulated ms): while quarantined a container
    /// is Suspect, never Dead — see
    /// [`ProcessorRootAgent::set_quarantine`].
    quarantine: Arc<Mutex<BTreeMap<String, u64>>>,
    /// Members of each open named partition that are cut off from the
    /// root's container, kept so the matching heal can start their
    /// quarantine grace period.
    partition_members: BTreeMap<String, Vec<String>>,
    /// Stretched-poll counter shared with every pacing collector.
    paced_polls: Arc<AtomicU64>,
    /// Rule-engine match attempts, totalled across every analyzer
    /// (including restarted ones) — the Table 1 inference-cost proxy.
    match_attempts: Arc<AtomicU64>,
    /// Number of federated shards (1 = classic single-domain grid).
    shards: usize,
    /// Peer shards' network domains (shards 1..; shard 0 is `network`).
    peer_networks: Vec<Arc<Mutex<Network>>>,
    /// Peer shards' stores (shards 1..; shard 0 is `store`).
    peer_stores: Vec<Arc<Mutex<ManagementStore>>>,
    /// Peer shards' root stats (shards 1..; shard 0 is `root_stats`).
    peer_root_stats: Vec<Arc<Mutex<RootStats>>>,
    /// Per-shard federation counters, all shards (empty unsharded).
    federation_stats: Vec<Arc<Mutex<FederationStats>>>,
    /// Which shard each analyzer container belongs to (sharded mode),
    /// so a chaos restart rebuilds it against the right store and
    /// re-registers its shard-scoped directory service.
    analyzer_shard: BTreeMap<String, usize>,
}

impl<R: Runtime> fmt::Debug for ManagementGrid<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ManagementGrid")
            .field("containers", &self.platform.container_count())
            .field("ticks", &self.ticks)
            .finish()
    }
}

impl ManagementGrid {
    /// Starts building a grid with defaults: 60 s polls, one collector
    /// per site, [`KnowledgeCapacityIdle`] balancing, [`DEFAULT_RULES`].
    /// Finish with [`GridBuilder::build`] (deterministic),
    /// [`GridBuilder::build_threaded`], [`GridBuilder::build_pool`] or
    /// [`GridBuilder::build_on`].
    pub fn builder() -> GridBuilder {
        GridBuilder {
            network: Network::new(),
            poll_period_ms: 60_000,
            collectors_per_site: 1,
            analyzers: Vec::new(),
            policy: Box::new(KnowledgeCapacityIdle),
            rules: DEFAULT_RULES.to_owned(),
            faults: FaultInjector::default(),
            telemetry: None,
            live_profiles: false,
            recovery: None,
            chaos: None,
            overload: None,
            store_backend: StoreBackend::default(),
            net_seed: None,
            reliability: None,
            shards: 1,
        }
    }
}

impl<R: Runtime> ManagementGrid<R> {
    /// Runs the grid from its current time for `duration_ms`, ticking
    /// every `tick_ms`, and returns the cumulative report.
    ///
    /// Incremental runs continue where the previous one stopped; use the
    /// same `tick_ms` across calls so simulated time advances uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `tick_ms` is zero.
    pub fn run(&mut self, duration_ms: u64, tick_ms: u64) -> GridReport {
        assert!(tick_ms > 0, "tick must be positive");
        let start = self.ticks * tick_ms;
        let steps = duration_ms / tick_ms;
        for _ in 0..steps {
            let now = self.ticks * tick_ms;
            self.apply_chaos(now);
            {
                let mut network = self.network.lock();
                // Apply scheduled faults before sampling, so a fault that
                // clears at time T no longer taints the sample taken at T.
                self.injector.apply(&mut network, now);
                network.tick_all(now);
            }
            // Peer shards' domains advance under the same schedule;
            // faults naming devices in another domain are skipped.
            for net in &self.peer_networks {
                let mut network = net.lock();
                self.injector.apply(&mut network, now);
                network.tick_all(now);
            }
            self.platform.run_until_idle(now);
            if self.live_profiles {
                self.refresh_profiles(tick_ms);
            }
            // Store-footprint gauges, only when a sink is attached —
            // unobserved runs stay byte-identical.
            if let Some(t) = self.platform.telemetry() {
                let (points, bytes, chunks) = {
                    let store = self.store.lock();
                    (store.len(), store.storage_bytes(), store.chunk_count())
                };
                let registry = t.registry();
                registry
                    .gauge("agentgrid_store_points", &[])
                    .set(points as i64);
                registry
                    .gauge("agentgrid_store_bytes", &[])
                    .set(bytes as i64);
                registry
                    .gauge("agentgrid_store_chunks", &[])
                    .set(chunks as i64);
                let per_sample = (bytes * 1000).checked_div(points).unwrap_or(0) as i64;
                // Milli-bytes per sample (integer gauge registry).
                registry
                    .gauge("agentgrid_store_bytes_per_sample_milli", &[])
                    .set(per_sample);
            }
            self.ticks += 1;
        }
        self.report(self.ticks * tick_ms - start)
    }

    /// Applies every chaos event due at or before `now`, in schedule
    /// order. Crashes are silent (stale directory entries survive);
    /// restarts rebuild the container from its original spec, fresh
    /// analyzer included, and heartbeat it immediately so the root does
    /// not re-declare it dead on sight.
    fn apply_chaos(&mut self, now: u64) {
        while self.chaos_cursor < self.chaos.events().len() {
            let (due, action) = &self.chaos.events()[self.chaos_cursor];
            if *due > now {
                break;
            }
            let action = action.clone();
            self.chaos_cursor += 1;
            match action {
                ChaosAction::Crash(name) => {
                    if self.platform.crash_container_silent(&name).is_ok() {
                        if let Some(t) = self.platform.telemetry() {
                            t.record_event(
                                now,
                                EventKind::Crash {
                                    container: name.clone(),
                                },
                            );
                        }
                        self.downed.insert(name);
                    }
                }
                ChaosAction::Restart(name) => {
                    if !self.downed.remove(&name) {
                        continue;
                    }
                    let Some(spec) = self.specs.iter().find(|s| s.name == name).cloned() else {
                        continue;
                    };
                    // In sharded mode the analyzer rejoins its own
                    // shard: that shard's store, plus the shard-scoped
                    // directory service its root brokers over.
                    let shard = self.analyzer_shard.get(&name).copied();
                    let store = match shard {
                        Some(s) if s > 0 => Arc::clone(&self.peer_stores[s - 1]),
                        _ => Arc::clone(&self.store),
                    };
                    self.platform.add_container(&name);
                    let analyzer = AnalyzerAgent::shared(
                        store,
                        Arc::clone(&self.kb),
                        self.interface_id.clone(),
                    )
                    .with_match_counter(Arc::clone(&self.match_attempts));
                    let analyzer_id = self
                        .platform
                        .spawn_agent(&name, &format!("analyzer-{name}"), analyzer)
                        .expect("container just re-added");
                    let mut profile = ResourceProfile::new(
                        &name,
                        spec.cpu_capacity,
                        1.0,
                        4096,
                        spec.skills.iter().cloned(),
                    );
                    profile.load = 0.0;
                    self.platform.with_df(|df| {
                        df.register_container(profile);
                        df.register_service(analyzer_id.clone(), "analysis", [name.clone()]);
                        if let Some(s) = shard {
                            df.register_service(
                                analyzer_id,
                                federation::shard_service(s),
                                [name.clone()],
                            );
                        }
                        df.record_heartbeat(&name, now);
                    });
                    if let Some(t) = self.platform.telemetry() {
                        t.record_event(now, EventKind::Restart { container: name });
                    }
                }
                ChaosAction::SetFault(fault) => self.platform.set_transport_fault(fault),
                ChaosAction::ClearFault => self.platform.set_transport_fault(TransportFault::None),
                ChaosAction::ClearFaultScoped(fault) => {
                    self.platform.net_command(NetCommand::RemoveFault(fault));
                }
                ChaosAction::LinkFaultsOpen(selector, faults) => {
                    self.platform
                        .net_command(NetCommand::AddLinkFaults(selector, faults));
                }
                ChaosAction::LinkFaultsClear(selector) => {
                    self.platform
                        .net_command(NetCommand::ClearLinkFaults(selector));
                }
                ChaosAction::PartitionOpen(name, groups) => {
                    // Containers in a different group than the root's
                    // container cannot reach the broker: quarantine
                    // them (Suspect, not Dead) until the heal + grace.
                    let cut = containers_cut_from(ROOT_CONTAINER, &groups);
                    if !cut.is_empty() {
                        let mut quarantine = self.quarantine.lock();
                        for container in &cut {
                            quarantine.insert(container.clone(), u64::MAX);
                        }
                        self.partition_members.insert(name.clone(), cut);
                    }
                    if let Some(t) = self.platform.telemetry() {
                        t.record_event(now, EventKind::PartitionOpen { name: name.clone() });
                    }
                    self.platform
                        .net_command(NetCommand::OpenPartition(name, groups));
                }
                ChaosAction::PartitionHeal(name) => {
                    if let Some(members) = self.partition_members.remove(&name) {
                        let mut quarantine = self.quarantine.lock();
                        for container in members {
                            // A container cut by another still-open
                            // partition stays fully quarantined.
                            let still_cut = self
                                .partition_members
                                .values()
                                .flatten()
                                .any(|c| *c == container);
                            if !still_cut {
                                quarantine.insert(container, now + QUARANTINE_GRACE_MS);
                            }
                        }
                    }
                    if let Some(t) = self.platform.telemetry() {
                        t.record_event(now, EventKind::PartitionHeal { name: name.clone() });
                    }
                    self.platform.net_command(NetCommand::HealPartition(name));
                }
            }
        }
    }

    /// Overwrites each profiled container's directory load with the
    /// measured figure from telemetry (mailbox depth + handler busy time
    /// over the tick window), so the next brokering round ranks by
    /// observed idleness instead of the root's own projections.
    fn refresh_profiles(&mut self, tick_ms: u64) {
        let Some(telemetry) = self.platform.telemetry() else {
            return;
        };
        let window_ns = tick_ms.saturating_mul(1_000_000);
        for stats in telemetry.container_stats() {
            let prev = self
                .last_busy_ns
                .insert(stats.container.clone(), stats.busy_ns)
                .unwrap_or(0);
            let busy_delta = stats.busy_ns.saturating_sub(prev);
            let load = measured_load(stats.mailbox_depth, busy_delta, window_ns);
            self.platform.with_df(|df| {
                if df.container_profile(&stats.container).is_some() {
                    df.update_load(&stats.container, load);
                }
            });
        }
    }

    fn report(&self, duration_ms: u64) -> GridReport {
        // Aggregate the shard roots in shard order; shard 0's stats are
        // the whole story for an unsharded grid.
        let stats = self.root_stats.lock();
        let mut assignments = stats.assignments.clone();
        let mut unassigned = stats.unassigned;
        let mut reassigned = stats.reassigned;
        let mut completed = stats.completed;
        let mut completed_ids = stats.completed_ids.clone();
        let mut rebrokered = stats.rebrokered.clone();
        let mut retries = stats.retries;
        let mut escalations = stats.escalations;
        let mut rejected = stats.rejected;
        let mut outstanding = stats.outstanding.clone();
        let mut tasks_created = stats.created;
        let mut shard_created = if self.shards > 1 {
            vec![stats.created]
        } else {
            Vec::new()
        };
        drop(stats);
        for peer in &self.peer_root_stats {
            let peer = peer.lock();
            shard_created.push(peer.created);
            tasks_created += peer.created;
            assignments.extend(peer.assignments.iter().cloned());
            unassigned += peer.unassigned;
            reassigned += peer.reassigned;
            completed += peer.completed;
            completed_ids.extend(peer.completed_ids.iter().cloned());
            rebrokered.extend(peer.rebrokered.iter().cloned());
            retries += peer.retries;
            escalations += peer.escalations;
            rejected += peer.rejected;
            outstanding.extend(peer.outstanding.iter().cloned());
        }
        let mut federation = FederationStats::default();
        for shard in &self.federation_stats {
            let shard = shard.lock();
            federation.spilled_out += shard.spilled_out;
            federation.spilled_in += shard.spilled_in;
            federation.spill_completed += shard.spill_completed;
            federation.summaries_sent += shard.summaries_sent;
            federation.summaries_received += shard.summaries_received;
            federation.injected_findings += shard.injected_findings;
        }
        let records_stored = self.store.lock().len()
            + self
                .peer_stores
                .iter()
                .map(|s| s.lock().len())
                .sum::<usize>();
        GridReport {
            duration_ms,
            alerts: self.alerts.lock().clone(),
            records_stored,
            messages_delivered: self.platform.delivered_count(),
            dead_letters: self.platform.dead_letter_count(),
            assignments,
            unassigned,
            reassigned,
            tasks_completed: completed,
            completed_ids,
            rebrokered,
            retries,
            escalations,
            outstanding,
            shed: self
                .platform
                .overload_stats()
                .map(|s| s.shed_total())
                .unwrap_or(0),
            rejected,
            paced_polls: self.paced_polls.load(Ordering::Relaxed),
            task_latency: self
                .platform
                .telemetry()
                .and_then(|t| t.task_latency_summary()),
            net: self.platform.net_stats(),
            shards: self.shards,
            tasks_created,
            shard_created,
            federation,
        }
    }

    /// Network-adversary and reliability counters so far; `None` unless
    /// a net adversary or reliability protocol was configured.
    pub fn net_stats(&self) -> Option<NetStats> {
        self.platform.net_stats()
    }

    /// Total rule-engine match attempts across every analyzer so far —
    /// the CPU-cost proxy behind the paper's Table 1 inference column.
    /// Deterministic for deterministic runs, so tests can pin a ceiling.
    pub fn match_attempts(&self) -> u64 {
        self.match_attempts.load(Ordering::Relaxed)
    }

    /// Posts user feedback: a new analysis rule in DSL text, distributed
    /// by the interface grid to every analyzer (§3.4).
    pub fn teach_rule(&mut self, rule_text: impl Into<String>) {
        let msg = AclMessage::builder(Performative::Request)
            .sender(AgentId::new("operator"))
            .receiver(self.interface_id.clone())
            .content(Value::map([
                ("concept", Value::symbol("learn-rule")),
                ("text", Value::from(rule_text.into())),
            ]))
            .build()
            .expect("sender and receiver are set");
        self.platform.post(msg);
    }

    /// Kills an analyzer container mid-run (crash injection). Its
    /// profile leaves the directory and outstanding tasks get
    /// re-brokered by the root.
    ///
    /// # Panics
    ///
    /// Panics if the container does not exist.
    pub fn crash_container(&mut self, name: &str) {
        self.platform
            .kill_container(name)
            .expect("container exists");
    }

    /// Read access to the shared management store.
    pub fn store(&self) -> Arc<Mutex<ManagementStore>> {
        Arc::clone(&self.store)
    }

    /// Read access to the managed network.
    pub fn network(&self) -> Arc<Mutex<Network>> {
        Arc::clone(&self.network)
    }

    /// The underlying runtime (e.g. for migration experiments).
    pub fn platform_mut(&mut self) -> &mut R {
        &mut self.platform
    }

    /// Alerts raised so far.
    pub fn alerts(&self) -> Vec<Alert> {
        self.alerts.lock().clone()
    }

    /// The telemetry sink attached through
    /// [`GridBuilder::telemetry`], if any.
    pub fn telemetry(&self) -> Option<TelemetryHandle> {
        self.platform.telemetry()
    }

    /// Platform-level overload counters (shed per class, deferrals,
    /// peak mailbox backlog); `None` unless
    /// [`GridBuilder::overload`] configured bounded mailboxes.
    pub fn overload_stats(&self) -> Option<OverloadStats> {
        self.platform.overload_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentgrid_acl::ontology::Severity;
    use agentgrid_net::{Device, DeviceKind, FaultKind};

    const ALL_SKILLS: [&str; 8] = [
        "cpu",
        "memory",
        "disk",
        "interface",
        "process",
        "system",
        "other",
        "correlation",
    ];

    fn small_network() -> Network {
        let mut net = Network::new();
        for i in 0..3 {
            net.add_device(
                Device::builder(format!("srv-{i}"), DeviceKind::Server)
                    .site("hq")
                    .seed(i)
                    .build(),
            );
        }
        net
    }

    #[test]
    fn end_to_end_pipeline_stores_and_analyzes() {
        let mut grid = ManagementGrid::builder()
            .network(small_network())
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS)
            .build();
        let report = grid.run(5 * 60_000, 60_000);
        assert!(report.records_stored > 0, "collectors fed the store");
        assert!(!report.assignments.is_empty(), "root brokered tasks");
        assert_eq!(
            report.tasks_completed,
            report.assignments.len() as u64,
            "every task reported done"
        );
        assert_eq!(report.dead_letters, 0);
        assert_eq!(report.unassigned, 0);
    }

    #[test]
    fn cpu_fault_produces_critical_alert() {
        let mut grid = ManagementGrid::builder()
            .network(small_network())
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .fault(ScheduledFault::from("srv-0", FaultKind::CpuRunaway, 60_000))
            .build();
        let report = grid.run(6 * 60_000, 60_000);
        assert!(
            report.alerts.iter().any(|a| a.rule == "high-cpu"
                && a.device == "srv-0"
                && a.severity == Severity::Critical),
            "alerts: {:?}",
            report.alerts
        );
    }

    #[test]
    fn tasks_spread_over_both_analyzers() {
        let mut grid = ManagementGrid::builder()
            .network(small_network())
            .collectors_per_site(2)
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS)
            .build();
        let report = grid.run(10 * 60_000, 60_000);
        let per = report.tasks_per_container();
        assert!(per.get("pg-1").copied().unwrap_or(0) > 0);
        assert!(per.get("pg-2").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn container_crash_is_survived() {
        let mut grid = ManagementGrid::builder()
            .network(small_network())
            .analyzer("pg-1", 4.0, ALL_SKILLS) // big capacity: wins first
            .analyzer("pg-2", 1.0, ALL_SKILLS)
            .build();
        grid.run(3 * 60_000, 60_000);
        grid.crash_container("pg-1");
        let report = grid.run(5 * 60_000, 60_000);
        // Work continues on pg-2 after the crash.
        let after_crash: Vec<&str> = report
            .assignments
            .iter()
            .rev()
            .take(3)
            .map(|(_, c)| c.as_str())
            .collect();
        assert!(after_crash.iter().all(|c| *c == "pg-2"), "{after_crash:?}");
    }

    #[test]
    fn taught_rule_starts_firing() {
        let mut grid = ManagementGrid::builder()
            .network(small_network())
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .build();
        grid.run(2 * 60_000, 60_000);
        grid.teach_rule(
            r#"rule "always-report-procs" salience 1 {
                when procs(device: ?d, value: ?v)
                if ?v > 0
                then emit info ?d "process count ?v on ?d"
            }"#,
        );
        let report = grid.run(4 * 60_000, 60_000);
        assert!(
            report
                .alerts
                .iter()
                .any(|a| a.rule == "always-report-procs"),
            "learned rule must fire"
        );
    }

    fn multi_site_network(sites: usize) -> Network {
        let mut net = Network::new();
        for s in 0..sites {
            for i in 0..2 {
                net.add_device(
                    Device::builder(format!("site-{s}-dev{i}"), DeviceKind::Server)
                        .site(format!("site-{s}"))
                        .seed((s * 10 + i) as u64)
                        .build(),
                );
            }
        }
        net
    }

    #[test]
    fn sharded_grid_partitions_and_conserves_tasks() {
        let mut grid = ManagementGrid::builder()
            .network(multi_site_network(4))
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS)
            .shards(2)
            .build();
        let report = grid.run(10 * 60_000, 60_000);
        assert_eq!(report.shards, 2);
        assert_eq!(report.shard_created.len(), 2);
        assert!(
            report.shard_created.iter().all(|&n| n > 0),
            "both domains created work: {:?}",
            report.shard_created
        );
        assert_eq!(report.tasks_created, report.shard_created.iter().sum());
        assert_eq!(report.unaccounted_tasks(), 0, "{report}");
        assert_eq!(report.lost_tasks(), Vec::<&str>::new());
        assert!(
            report.federation.summaries_sent > 0,
            "roots exchanged cross-domain summaries"
        );
        let text = report.render();
        assert!(text.contains("shards: 2 domains"), "{text}");
        assert!(text.contains("federation:"), "{text}");
    }

    #[test]
    fn sharded_run_is_deterministic() {
        let run = || {
            let mut grid = ManagementGrid::builder()
                .network(multi_site_network(3))
                .analyzer("pg-1", 1.0, ALL_SKILLS)
                .analyzer("pg-2", 1.0, ALL_SKILLS)
                .analyzer("pg-3", 1.0, ALL_SKILLS)
                .shards(3)
                .build();
            grid.run(8 * 60_000, 60_000).render()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unsharded_report_hides_federation_sections() {
        let mut grid = ManagementGrid::builder()
            .network(small_network())
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .build();
        let report = grid.run(3 * 60_000, 60_000);
        assert_eq!(report.shards, 1);
        assert!(report.shard_created.is_empty());
        assert_eq!(report.federation, FederationStats::default());
        let text = report.render();
        assert!(!text.contains("shards:"), "{text}");
        assert!(!text.contains("federation:"), "{text}");
    }

    #[test]
    fn report_renders_summary() {
        let mut grid = ManagementGrid::builder()
            .network(small_network())
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .build();
        let report = grid.run(3 * 60_000, 60_000);
        let text = report.render();
        assert!(text.contains("records stored"));
        assert!(text.contains("pg-1"));
    }
}
