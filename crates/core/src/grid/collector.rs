use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use agentgrid_acl::ontology::{CollectedBatch, Observation, ToContent, MANAGEMENT_ONTOLOGY};
use agentgrid_acl::{AclMessage, AgentId, Performative};
use agentgrid_net::{cli, oids, snmp, Network, Oid};
use agentgrid_platform::{Agent, AgentCtx, PressureSignal};
use agentgrid_telemetry::Counter;
use parking_lot::Mutex;

use crate::recovery::{jitter_key, BackoffPolicy};

/// Ceiling on the pacing multiplier: a fully pressured collector polls
/// at 1/8th of its configured cadence, never slower.
const MAX_STRETCH: u64 = 8;

/// Collector-side pacing state (overload mode): stretch the poll
/// interval multiplicatively while the platform signals mailbox
/// pressure, recover additively once it clears.
struct Pacing {
    /// Pressure events from the platform's bounded-mailbox tracker.
    signal: Arc<PressureSignal>,
    /// Shared `paced_polls` counter surfaced in the grid report.
    paced: Arc<AtomicU64>,
    /// Event count at the previous poll.
    seen: u64,
    /// Current poll-interval multiplier (`1..=MAX_STRETCH`).
    stretch: u64,
}

/// Which management-protocol *interface* a collector uses (paper §3.1:
/// "a collecting agent can have an SNMP interface or use a command line
/// utility").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectorInterface {
    /// Walk the device MIB over the SNMP-like protocol.
    Snmp,
    /// Run `show` commands and parse the textual reports.
    Cli,
}

/// A collector-grid agent: polls its assigned devices every `period_ms`
/// of simulated time, normalizes whatever its interface returns into
/// [`Observation`]s (the common representation), performs the local
/// pre-analysis the paper allows (derived `used-pct` metrics,
/// reachability flags) and ships a [`CollectedBatch`] to the classifier.
pub struct CollectorAgent {
    network: Arc<Mutex<Network>>,
    devices: Vec<String>,
    interface: CollectorInterface,
    period_ms: u64,
    classifier: AgentId,
    site: String,
    next_poll_ms: u64,
    batch_seq: u64,
    /// Total observations shipped (inspection/testing).
    pub collected: u64,
    /// Retry polls sent under the backoff policy (inspection/testing).
    pub retries: u64,
    /// Optional per-device retry schedule: a failed poll retries with
    /// backoff instead of waiting out the full period. `None` keeps the
    /// legacy fixed-cadence behavior.
    backoff: Option<BackoffPolicy>,
    /// Consecutive failed polls per device (backoff mode).
    device_failures: BTreeMap<String, u32>,
    /// Per-device next poll time (backoff mode).
    device_next_ms: BTreeMap<String, u64>,
    /// `agentgrid_retries_total{component="collector"}` when telemetry
    /// is wired up.
    retry_metric: Option<Counter>,
    /// Poll-interval pacing under downstream pressure (overload mode).
    pacing: Option<Pacing>,
}

impl std::fmt::Debug for CollectorAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectorAgent")
            .field("devices", &self.devices)
            .field("interface", &self.interface)
            .field("period_ms", &self.period_ms)
            .field("collected", &self.collected)
            .finish()
    }
}

impl CollectorAgent {
    /// Creates a collector for `devices`, shipping to `classifier`.
    pub fn new(
        network: Arc<Mutex<Network>>,
        devices: Vec<String>,
        interface: CollectorInterface,
        period_ms: u64,
        classifier: AgentId,
        site: impl Into<String>,
    ) -> Self {
        CollectorAgent {
            network,
            devices,
            interface,
            period_ms,
            classifier,
            site: site.into(),
            next_poll_ms: 0,
            batch_seq: 0,
            collected: 0,
            retries: 0,
            backoff: None,
            device_failures: BTreeMap::new(),
            device_next_ms: BTreeMap::new(),
            retry_metric: None,
            pacing: None,
        }
    }

    /// Switches the collector to per-device scheduling: a device whose
    /// poll fails (unreachable) is retried after a backoff delay —
    /// capped at the regular period — instead of silently waiting out
    /// the whole period.
    pub fn set_backoff(&mut self, policy: BackoffPolicy) {
        self.backoff = Some(policy);
    }

    /// Counts retry polls into the given telemetry counter.
    pub fn set_retry_metric(&mut self, counter: Counter) {
        self.retry_metric = Some(counter);
    }

    /// Enables pacing: while `signal` reports fresh pressure events the
    /// poll interval doubles (capped at [`MAX_STRETCH`]×), recovering
    /// one step per pressure-free poll. Each stretched scheduling
    /// decision increments `paced`.
    pub fn set_pacing(&mut self, signal: Arc<PressureSignal>, paced: Arc<AtomicU64>) {
        self.pacing = Some(Pacing {
            signal,
            paced,
            seen: 0,
            stretch: 1,
        });
    }

    /// The current poll-interval multiplier, updated from the pressure
    /// signal; `1` when pacing is off.
    fn pacing_stretch(&mut self) -> u64 {
        let Some(p) = &mut self.pacing else {
            return 1;
        };
        let events = p.signal.events();
        if events != p.seen {
            p.seen = events;
            p.stretch = (p.stretch * 2).min(MAX_STRETCH);
            p.paced.fetch_add(1, Ordering::Relaxed);
        } else {
            p.stretch = p.stretch.saturating_sub(1).max(1);
        }
        p.stretch
    }

    fn poll_device_snmp(device: &mut agentgrid_net::Device, now: u64) -> Vec<Observation> {
        let name = device.name().to_owned();
        let mut out = Vec::new();
        // CPU load per processor.
        let cpu_root: Oid = Oid::from([1, 3, 6, 1, 2, 1, 25, 3, 3, 1, 2]);
        if let Ok(rows) = snmp::walk(device, &cpu_root) {
            for (oid, value) in rows {
                if let (Some(index), Some(v)) = (oid.last(), value.as_f64()) {
                    out.push(Observation::new(&name, format!("cpu.load.{index}"), v, now));
                }
            }
        } else {
            out.push(Observation::new(&name, "agent.reachable", 0.0, now));
            return out;
        }
        // Interface table: status + octets.
        if let Ok(rows) = snmp::walk(device, &oids::if_table()) {
            for (oid, value) in rows {
                let parts = oid.parts();
                if parts.len() < 2 {
                    continue;
                }
                let column = parts[parts.len() - 2];
                let index = parts[parts.len() - 1];
                let metric = match column {
                    8 => format!("if.{index}.oper-status"),
                    10 => format!("if.{index}.in-octets"),
                    16 => format!("if.{index}.out-octets"),
                    _ => continue,
                };
                if let Some(v) = value.as_f64() {
                    out.push(Observation::new(&name, metric, v, now));
                }
            }
        }
        // Storage: raw values plus the derived used-pct (local
        // pre-analysis, §3.1).
        for (index, label) in [(oids::STORAGE_RAM, "ram"), (oids::STORAGE_DISK, "disk")] {
            let size = snmp::get(device, &oids::hr_storage_size(index))
                .ok()
                .and_then(|v| v.as_f64());
            let used = snmp::get(device, &oids::hr_storage_used(index))
                .ok()
                .and_then(|v| v.as_f64());
            if let (Some(size), Some(used)) = (size, used) {
                out.push(Observation::new(
                    &name,
                    format!("storage.{label}.used"),
                    used,
                    now,
                ));
                if size > 0.0 {
                    out.push(Observation::new(
                        &name,
                        format!("storage.{label}.used-pct"),
                        used / size * 100.0,
                        now,
                    ));
                }
            }
        }
        if let Ok(v) = snmp::get(device, &oids::hr_system_processes()) {
            if let Some(v) = v.as_f64() {
                out.push(Observation::new(&name, "processes.count", v, now));
            }
        }
        out.push(Observation::new(&name, "agent.reachable", 1.0, now));
        out
    }

    fn poll_device_cli(device: &agentgrid_net::Device, now: u64) -> Vec<Observation> {
        let name = device.name().to_owned();
        let mut out = Vec::new();
        for command in cli::COMMANDS {
            match cli::execute(device, command) {
                Ok(report) => {
                    for (metric, value) in cli::parse_report(&report) {
                        out.push(Observation::new(&name, metric, value, now));
                    }
                }
                Err(cli::CliError::Unreachable(_)) => {
                    return vec![Observation::new(&name, "agent.reachable", 0.0, now)];
                }
                Err(cli::CliError::UnknownCommand(_)) => continue,
                Err(_) => continue,
            }
        }
        out.push(Observation::new(&name, "agent.reachable", 1.0, now));
        out
    }
}

impl Agent for CollectorAgent {
    fn on_tick(&mut self, ctx: &mut AgentCtx<'_>) {
        let now = ctx.now_ms();
        // Which devices to poll now: all of them on the fixed cadence,
        // or the individually-due ones under the backoff policy.
        let due: Vec<String> = match &self.backoff {
            None => {
                if now < self.next_poll_ms {
                    return;
                }
                let stretch = self.pacing_stretch();
                self.next_poll_ms = now + self.period_ms.saturating_mul(stretch);
                self.devices.clone()
            }
            Some(_) => self
                .devices
                .iter()
                .filter(|d| now >= self.device_next_ms.get(*d).copied().unwrap_or(0))
                .cloned()
                .collect(),
        };
        if due.is_empty() {
            return;
        }
        // Per-device scheduling reads the pressure signal once per
        // polling round, not once per device.
        let stretch = match &self.backoff {
            Some(_) => self.pacing_stretch(),
            None => 1,
        };

        let mut observations = Vec::new();
        {
            let mut network = self.network.lock();
            for device_name in &due {
                let Some(device) = network.device_mut(device_name) else {
                    continue;
                };
                let obs = match self.interface {
                    CollectorInterface::Snmp => Self::poll_device_snmp(device, now),
                    CollectorInterface::Cli => Self::poll_device_cli(device, now),
                };
                if let Some(policy) = &self.backoff {
                    let failed =
                        obs.len() == 1 && obs[0].metric == "agent.reachable" && obs[0].value == 0.0;
                    let failures = self.device_failures.entry(device_name.clone()).or_insert(0);
                    if *failures > 0 {
                        // Any poll after a failure is a retry, whether
                        // or not the device recovered in the meantime.
                        self.retries += 1;
                        if let Some(c) = &self.retry_metric {
                            c.inc();
                        }
                    }
                    let next = if failed {
                        let delay = policy
                            .delay_ms(*failures, jitter_key(device_name))
                            .min(self.period_ms.max(1));
                        *failures = failures.saturating_add(1).min(30);
                        now + delay
                    } else {
                        *failures = 0;
                        now + self.period_ms.saturating_mul(stretch)
                    };
                    self.device_next_ms.insert(device_name.clone(), next);
                }
                observations.extend(obs);
            }
        }
        if observations.is_empty() {
            return;
        }
        self.collected += observations.len() as u64;
        self.batch_seq += 1;
        let batch = CollectedBatch::new(
            format!("{}-b{}", ctx.self_id().local_name(), self.batch_seq),
            ctx.self_id().name(),
            self.site.clone(),
            observations,
        );
        let msg = AclMessage::builder(Performative::Inform)
            .sender(ctx.self_id().clone())
            .receiver(self.classifier.clone())
            .ontology(MANAGEMENT_ONTOLOGY)
            .content(batch.to_content())
            .build()
            .expect("sender and receiver are set");
        ctx.send(msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentgrid_net::{Device, DeviceKind, FaultKind};

    fn network() -> Arc<Mutex<Network>> {
        let mut net = Network::new();
        net.add_device(
            Device::builder("srv-1", DeviceKind::Server)
                .site("hq")
                .seed(1)
                .build(),
        );
        net.tick_all(60_000);
        Arc::new(Mutex::new(net))
    }

    #[test]
    fn snmp_poll_produces_normalized_metrics() {
        let net = network();
        let mut guard = net.lock();
        let device = guard.device_mut("srv-1").unwrap();
        let obs = CollectorAgent::poll_device_snmp(device, 60_000);
        let metrics: Vec<&str> = obs.iter().map(|o| o.metric.as_str()).collect();
        assert!(metrics.contains(&"cpu.load.1"));
        assert!(metrics.contains(&"if.1.in-octets"));
        assert!(metrics.contains(&"storage.disk.used-pct"));
        assert!(metrics.contains(&"processes.count"));
        assert!(metrics.contains(&"agent.reachable"));
    }

    #[test]
    fn cli_poll_produces_equivalent_metrics() {
        let net = network();
        let guard = net.lock();
        let device = guard.device("srv-1").unwrap();
        let obs = CollectorAgent::poll_device_cli(device, 60_000);
        let metrics: Vec<&str> = obs.iter().map(|o| o.metric.as_str()).collect();
        assert!(metrics.contains(&"cpu.load.1"));
        assert!(metrics.contains(&"storage.disk.used-pct"));
    }

    #[test]
    fn unreachable_device_yields_reachability_zero() {
        let net = network();
        let mut guard = net.lock();
        let device = guard.device_mut("srv-1").unwrap();
        device.inject(FaultKind::Unreachable);
        let snmp_obs = CollectorAgent::poll_device_snmp(device, 0);
        assert_eq!(snmp_obs.len(), 1);
        assert_eq!(snmp_obs[0].metric, "agent.reachable");
        assert_eq!(snmp_obs[0].value, 0.0);
        let cli_obs = CollectorAgent::poll_device_cli(device, 0);
        assert_eq!(cli_obs[0].value, 0.0);
    }
}
