use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use agentgrid_acl::ontology::{
    Alert, AnalysisTask, FromContent, Severity, ToContent, MANAGEMENT_ONTOLOGY,
};
use agentgrid_acl::{AclMessage, AgentId, Performative, Value};
use agentgrid_platform::{Agent, AgentCtx};
use agentgrid_rules::{parse_rules, Engine, Fact, KnowledgeBase, RuleSeverity};
use agentgrid_store::{LabelFilter, ManagementStore};
use parking_lot::Mutex;

/// How much projected load one analysis task adds to a container, per
/// 100 records, before capacity scaling.
const LOAD_PER_100_RECORDS: f64 = 0.05;
/// Load decay per tick while idle.
const LOAD_DECAY: f64 = 0.02;

/// A processor-grid analysis agent (paper §3.3).
///
/// Lives in an analyzer container, advertises its skills in the
/// directory, and executes [`AnalysisTask`]s the root assigns:
///
/// * **level 1** — stateless: latest observations of the task's
///   partition become facts; rules fire on them alone;
/// * **level 2** — consolidation: adds `stat` facts (mean/max over the
///   stored history) so rules can see trends;
/// * **level 3** — correlation: loads the latest observations of *every*
///   partition so cross-device rules can join facts.
///
/// Findings go to the interface agent as [`Alert`]s; a `done` report
/// goes back to the root. The agent learns new rules sent by the
/// interface grid (`learn-rule` messages).
pub struct AnalyzerAgent {
    store: Arc<Mutex<ManagementStore>>,
    /// Persistent engine, `reset()` between tasks; the compiled knowledge
    /// base is shared across the grid's analyzers (copy-on-write on
    /// learning).
    engine: Engine,
    interface: AgentId,
    /// Grid-wide match-attempt counter, when the grid wants one.
    attempts_counter: Option<Arc<AtomicU64>>,
    /// Tasks completed.
    pub completed: u64,
    /// Findings emitted.
    pub findings: u64,
    /// Total rule-engine match attempts (CPU-cost proxy).
    pub match_attempts: u64,
}

impl std::fmt::Debug for AnalyzerAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalyzerAgent")
            .field("rules", &self.engine.knowledge().len())
            .field("completed", &self.completed)
            .field("findings", &self.findings)
            .finish()
    }
}

impl AnalyzerAgent {
    /// Creates an analyzer with its own knowledge base and an alert sink.
    pub fn new(store: Arc<Mutex<ManagementStore>>, kb: KnowledgeBase, interface: AgentId) -> Self {
        AnalyzerAgent::shared(store, Arc::new(kb), interface)
    }

    /// Creates an analyzer over a knowledge base shared with the rest of
    /// the grid — one compiled rule set, many analyzers.
    pub fn shared(
        store: Arc<Mutex<ManagementStore>>,
        kb: Arc<KnowledgeBase>,
        interface: AgentId,
    ) -> Self {
        AnalyzerAgent {
            store,
            engine: Engine::shared(kb),
            interface,
            attempts_counter: None,
            completed: 0,
            findings: 0,
            match_attempts: 0,
        }
    }

    /// Mirrors this analyzer's match attempts into a shared counter
    /// (builder style) so the grid can account total inference cost.
    pub fn with_match_counter(mut self, counter: Arc<AtomicU64>) -> Self {
        self.attempts_counter = Some(counter);
        self
    }

    /// The analyzer's current knowledge base.
    pub fn knowledge(&self) -> &KnowledgeBase {
        self.engine.knowledge()
    }

    fn run_task(&mut self, task: &AnalysisTask, now: u64) -> Vec<Alert> {
        let store = self.store.lock();
        let (alerts, match_attempts) = analyze_task_with(&mut self.engine, &store, task, now);
        self.match_attempts += match_attempts;
        if let Some(counter) = &self.attempts_counter {
            counter.fetch_add(match_attempts, Ordering::Relaxed);
        }
        alerts
    }

    fn bump_load(&self, ctx: &mut AgentCtx<'_>, records: u64) {
        let container = ctx.container().to_owned();
        let df = ctx.df();
        if let Some(profile) = df.container_profile(&container) {
            let added = LOAD_PER_100_RECORDS * (records as f64 / 100.0) / profile.cpu_capacity;
            let load = (profile.load + added).min(1.0);
            df.update_load(&container, load);
        }
    }
}

/// Converts one stored series' latest point into engine facts.
///
/// Besides the generic `obs` fact, well-known metrics get extracted
/// into typed facts (`cpu`, `mem`, `disk`, `procs`, `if_status`) so
/// rules stay readable.
pub fn facts_for(device: &str, metric: &str, value: f64) -> Vec<Fact> {
    let mut facts = vec![Fact::new("obs")
        .with("device", device)
        .with("metric", metric)
        .with("value", value)];
    if metric.starts_with("cpu.load.") {
        facts.push(Fact::new("cpu").with("device", device).with("value", value));
    } else if metric == "storage.disk.used-pct" {
        facts.push(
            Fact::new("disk")
                .with("device", device)
                .with("value", value),
        );
    } else if metric == "storage.ram.used-pct" {
        facts.push(Fact::new("mem").with("device", device).with("value", value));
    } else if metric == "processes.count" {
        facts.push(
            Fact::new("procs")
                .with("device", device)
                .with("value", value),
        );
    } else if let Some(rest) = metric.strip_prefix("if.") {
        if let Some((index, "oper-status")) = rest.split_once('.') {
            if let Ok(index) = index.parse::<i64>() {
                facts.push(
                    Fact::new("if_status")
                        .with("device", device)
                        .with("index", index)
                        .with("value", value),
                );
            }
        }
    }
    facts
}

/// Runs one [`AnalysisTask`] against a store with a knowledge base —
/// the multi-level analysis procedure of §3.3, shared by the grid's
/// [`AnalyzerAgent`] and the non-grid baselines. Returns the alerts and
/// the engine's match-attempt count (a CPU-cost proxy).
///
/// Builds a throwaway engine per call; hot paths should hold an engine
/// and use [`analyze_task_with`] instead.
pub fn analyze_task(
    store: &ManagementStore,
    kb: &KnowledgeBase,
    task: &AnalysisTask,
    now: u64,
) -> (Vec<Alert>, u64) {
    let mut engine = Engine::new(kb.clone());
    analyze_task_with(&mut engine, store, task, now)
}

/// [`analyze_task`] against a caller-owned engine, which is `reset()`
/// first: working memory and refraction are per-task, but the engine's
/// allocations and compiled knowledge base are reused across tasks.
pub fn analyze_task_with(
    engine: &mut Engine,
    store: &ManagementStore,
    task: &AnalysisTask,
    now: u64,
) -> (Vec<Alert>, u64) {
    engine.reset();
    // Series selection goes through the store's label index. Fact
    // insertion order feeds the rule engine's recency ordering, so the
    // enumeration must stay exactly partition-name order, then
    // (device, metric) order within each partition — `select(class=p)`
    // returns the same sorted set `by_partition(p)` iterates.
    let series: Vec<(String, String)> = if task.level >= 3 || task.partition == "*" {
        store
            .partitions()
            .iter()
            .flat_map(|p| store.select(&LabelFilter::class(p)))
            .collect()
    } else {
        store.select(&LabelFilter::class(&task.partition))
    };
    for (device, metric) in &series {
        if let Some((_, value)) = store.latest(device, metric) {
            engine.insert_all(facts_for(device, metric, value));
        }
        if task.level >= 2 {
            if let Some(stats) = store.stats(device, metric, 0, u64::MAX) {
                engine.insert(
                    Fact::new("stat")
                        .with("device", device.as_str())
                        .with("metric", metric.as_str())
                        .with("mean", stats.mean)
                        .with("max", stats.max)
                        .with("count", stats.count as i64),
                );
            }
            if let Some(slope) = store.trend_per_min(device, metric, 0, u64::MAX) {
                engine.insert(
                    Fact::new("trend")
                        .with("device", device.as_str())
                        .with("metric", metric.as_str())
                        .with("per-min", slope),
                );
            }
        }
    }
    let outcome = engine.run();
    let alerts = outcome
        .findings
        .into_iter()
        .map(|f| {
            Alert::new(
                f.rule,
                f.device,
                match f.severity {
                    RuleSeverity::Info => Severity::Info,
                    RuleSeverity::Warning => Severity::Warning,
                    RuleSeverity::Critical => Severity::Critical,
                },
                f.message,
                now,
            )
        })
        .collect();
    (alerts, outcome.stats.match_attempts)
}

impl Agent for AnalyzerAgent {
    fn on_message(&mut self, message: &AclMessage, ctx: &mut AgentCtx<'_>) {
        // Rule learning pushed from the interface grid.
        if message.content().get("concept").and_then(Value::as_str) == Some("learn-rule") {
            if let Some(text) = message.content().get("text").and_then(Value::as_str) {
                if let Ok(rules) = parse_rules(text) {
                    self.engine.knowledge_mut().extend(rules);
                }
            }
            return;
        }
        let Ok(task) = AnalysisTask::from_content(message.content()) else {
            return;
        };
        let now = ctx.now_ms();
        let alerts = self.run_task(&task, now);
        self.completed += 1;
        self.findings += alerts.len() as u64;
        self.bump_load(ctx, task.size);
        for alert in &alerts {
            let msg = AclMessage::builder(Performative::Inform)
                .sender(ctx.self_id().clone())
                .receiver(self.interface.clone())
                .ontology(MANAGEMENT_ONTOLOGY)
                .content(alert.to_content())
                .build()
                .expect("sender and receiver are set");
            ctx.send(msg);
        }
        // Report completion to the root.
        let done = Value::map([
            ("concept", Value::symbol("done")),
            ("task-id", Value::from(task.task_id.clone())),
            ("findings", Value::Int(alerts.len() as i64)),
            ("container", Value::from(ctx.container().to_owned())),
        ]);
        ctx.send(message.reply(Performative::Inform, done));
    }

    fn on_tick(&mut self, ctx: &mut AgentCtx<'_>) {
        // Idle decay of the advertised load, plus the container's
        // liveness heartbeat (the grid root reads its staleness).
        let container = ctx.container().to_owned();
        let now = ctx.now_ms();
        let df = ctx.df();
        df.record_heartbeat(&container, now);
        if let Some(profile) = df.container_profile(&container) {
            let load = (profile.load - LOAD_DECAY).max(0.0);
            df.update_load(&container, load);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::DEFAULT_RULES;
    use agentgrid_platform::DirectoryFacilitator;
    use agentgrid_store::Record;

    fn kb() -> KnowledgeBase {
        KnowledgeBase::from_rules(parse_rules(DEFAULT_RULES).unwrap())
    }

    fn analyzer_with_data(points: &[(&str, &str, f64)]) -> AnalyzerAgent {
        let mut store = ManagementStore::default();
        for (device, metric, value) in points {
            store.insert(Record::new(*device, *metric, *value, 1000));
        }
        AnalyzerAgent::new(Arc::new(Mutex::new(store)), kb(), AgentId::new("ig@g"))
    }

    fn task(partition: &str, level: u8) -> AnalysisTask {
        AnalysisTask::new("t1", partition, partition, level, 100)
    }

    #[test]
    fn level1_finds_cpu_overload_in_its_partition_only() {
        let mut analyzer = analyzer_with_data(&[
            ("r1", "cpu.load.1", 97.0),
            ("r2", "storage.disk.used-pct", 99.0), // different partition
        ]);
        let alerts = analyzer.run_task(&task("cpu", 1), 0);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "high-cpu");
        assert_eq!(alerts[0].device, "r1");
    }

    #[test]
    fn level2_emits_sustained_pressure_from_stats() {
        let mut store = ManagementStore::default();
        for t in 0..5u64 {
            store.insert(Record::new("r1", "cpu.load.1", 85.0, t * 60_000));
        }
        let mut analyzer =
            AnalyzerAgent::new(Arc::new(Mutex::new(store)), kb(), AgentId::new("ig@g"));
        let alerts = analyzer.run_task(&task("cpu", 2), 0);
        assert!(alerts.iter().any(|a| a.rule == "sustained-cpu"));
    }

    #[test]
    fn level3_correlates_across_devices() {
        let mut analyzer =
            analyzer_with_data(&[("r1", "cpu.load.1", 95.0), ("r2", "cpu.load.1", 96.0)]);
        let alerts = analyzer.run_task(&task("*", 3), 0);
        assert!(
            alerts.iter().any(|a| a.rule == "correlated-cpu"),
            "{alerts:?}"
        );
    }

    #[test]
    fn fact_extraction_types_well_known_metrics() {
        let facts = facts_for("d", "if.2.oper-status", 2.0);
        assert!(facts.iter().any(|f| f.kind() == "if_status"));
        let facts = facts_for("d", "storage.ram.used-pct", 91.0);
        assert!(facts.iter().any(|f| f.kind() == "mem"));
        let facts = facts_for("d", "unknown.metric", 1.0);
        assert_eq!(facts.len(), 1, "only the generic obs fact");
    }

    #[test]
    fn learn_rule_message_extends_knowledge() {
        let mut analyzer = analyzer_with_data(&[("r1", "processes.count", 3.0)]);
        let before = analyzer.knowledge().len();
        let id = AgentId::new("an@g");
        let mut outbox = Vec::new();
        let mut df = DirectoryFacilitator::new();
        let mut ctx = AgentCtx::new(&id, "pg-1", 0, &mut outbox, &mut df);
        let learn = AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("ig@g"))
            .receiver(id.clone())
            .content(Value::map([
                ("concept", Value::symbol("learn-rule")),
                (
                    "text",
                    Value::from(
                        r#"rule "few-procs" { when procs(device: ?d, value: ?v) if ?v < 10 then emit info ?d "only ?v processes" }"#,
                    ),
                ),
            ]))
            .build()
            .unwrap();
        analyzer.on_message(&learn, &mut ctx);
        assert_eq!(analyzer.knowledge().len(), before + 1);
        // And the learned rule fires on the next task.
        let alerts = analyzer.run_task(&task("process", 1), 0);
        assert!(alerts.iter().any(|a| a.rule == "few-procs"));
    }

    #[test]
    fn task_message_produces_alerts_and_done_reply() {
        let mut analyzer = analyzer_with_data(&[("r1", "cpu.load.1", 99.0)]);
        let analyzer_id = AgentId::new("an@g");
        let mut outbox = Vec::new();
        let mut df = DirectoryFacilitator::new();
        df.register_container(agentgrid_acl::ontology::ResourceProfile::new(
            "pg-1",
            1.0,
            1.0,
            1024,
            ["cpu"],
        ));
        let mut ctx = AgentCtx::new(&analyzer_id, "pg-1", 7, &mut outbox, &mut df);
        let request = AclMessage::builder(Performative::Request)
            .sender(AgentId::new("pg-root@g"))
            .receiver(analyzer_id.clone())
            .reply_with("task-t1")
            .content(task("cpu", 1).to_content())
            .build()
            .unwrap();
        analyzer.on_message(&request, &mut ctx);
        drop(ctx);
        // One alert to the interface + one done reply to the root.
        assert_eq!(outbox.len(), 2);
        let alert = Alert::from_content(outbox[0].content()).unwrap();
        assert_eq!(alert.rule, "high-cpu");
        assert_eq!(alert.timestamp_ms, 7);
        let done = &outbox[1];
        assert_eq!(done.receivers()[0].name(), "pg-root@g");
        assert_eq!(done.content().get("findings").unwrap().as_int(), Some(1));
        // Load was bumped in the directory.
        assert!(df.container_profile("pg-1").unwrap().load > 0.0);
    }
}
