use std::collections::BTreeMap;
use std::sync::Arc;

use agentgrid_acl::ontology::{CollectedBatch, FromContent, MANAGEMENT_ONTOLOGY};
use agentgrid_acl::{AclMessage, AgentId, Performative, Value};
use agentgrid_platform::{Agent, AgentCtx};
use agentgrid_store::{ManagementStore, Record};
use parking_lot::Mutex;

/// A classifier-grid agent (paper §3.2).
///
/// Receives [`CollectedBatch`]es from collectors, parses them, stores
/// every observation in the shared indexed [`ManagementStore`] (which
/// classifies each record into a partition — data-clustering), and sends
/// the processor-grid root a `data-ready` notification listing the
/// partitions that received fresh data and their sizes.
pub struct ClassifierAgent {
    store: Arc<Mutex<ManagementStore>>,
    pg_root: AgentId,
    /// Batches processed so far.
    pub batches: u64,
    /// Records stored so far.
    pub records: u64,
    /// Batches that failed to parse (malformed content).
    pub rejects: u64,
}

impl std::fmt::Debug for ClassifierAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassifierAgent")
            .field("batches", &self.batches)
            .field("records", &self.records)
            .field("rejects", &self.rejects)
            .finish()
    }
}

impl ClassifierAgent {
    /// Creates a classifier writing to `store` and notifying `pg_root`.
    pub fn new(store: Arc<Mutex<ManagementStore>>, pg_root: AgentId) -> Self {
        ClassifierAgent {
            store,
            pg_root,
            batches: 0,
            records: 0,
            rejects: 0,
        }
    }
}

/// Builds the `data-ready` notification content (also used by tests of
/// the processor root).
pub(crate) fn data_ready_content(
    site: &str,
    partitions: &BTreeMap<String, u64>,
    now: u64,
) -> Value {
    Value::map([
        ("concept", Value::symbol("data-ready")),
        ("site", Value::from(site.to_owned())),
        ("ts", Value::Int(now as i64)),
        (
            "partitions",
            Value::list(partitions.iter().map(|(name, size)| {
                Value::map([
                    ("name", Value::from(name.clone())),
                    ("size", Value::Int(*size as i64)),
                ])
            })),
        ),
    ])
}

impl Agent for ClassifierAgent {
    fn on_message(&mut self, message: &AclMessage, ctx: &mut AgentCtx<'_>) {
        let Ok(batch) = CollectedBatch::from_content(message.content()) else {
            self.rejects += 1;
            return;
        };
        self.batches += 1;
        let mut touched: BTreeMap<String, u64> = BTreeMap::new();
        {
            let mut store = self.store.lock();
            for obs in &batch.observations {
                let record = Record::new(&obs.device, &obs.metric, obs.value, obs.timestamp_ms)
                    .with_site(&batch.site);
                let partition = store.classifier().partition_of(&obs.metric).to_owned();
                *touched.entry(partition).or_insert(0) += 1;
                store.insert(record);
                self.records += 1;
            }
        }
        let notify = AclMessage::builder(Performative::Inform)
            .sender(ctx.self_id().clone())
            .receiver(self.pg_root.clone())
            .ontology(MANAGEMENT_ONTOLOGY)
            .content(data_ready_content(&batch.site, &touched, ctx.now_ms()))
            .build()
            .expect("sender and receiver are set");
        ctx.send(notify);
    }
}

/// Parses a `data-ready` content value into `(site, [(partition, size)])`.
/// Returns `None` for anything that is not a data-ready notification.
pub(crate) fn parse_data_ready(content: &Value) -> Option<(String, Vec<(String, u64)>)> {
    if content.get("concept")?.as_str()? != "data-ready" {
        return None;
    }
    let site = content.get("site")?.as_str()?.to_owned();
    let mut partitions = Vec::new();
    for entry in content.get("partitions")?.as_list()? {
        let name = entry.get("name")?.as_str()?.to_owned();
        let size = entry.get("size")?.as_int()?.max(0) as u64;
        partitions.push((name, size));
    }
    Some((site, partitions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentgrid_acl::ontology::{Observation, ToContent};
    use agentgrid_store::Classifier;

    fn batch() -> CollectedBatch {
        CollectedBatch::new(
            "b1",
            "cg-1",
            "hq",
            vec![
                Observation::new("r1", "cpu.load.1", 95.0, 1000),
                Observation::new("r1", "storage.disk.used-pct", 50.0, 1000),
                Observation::new("r2", "cpu.load.1", 20.0, 1000),
            ],
        )
    }

    #[test]
    fn data_ready_round_trips() {
        let mut touched = BTreeMap::new();
        touched.insert("cpu".to_owned(), 2u64);
        touched.insert("disk".to_owned(), 1u64);
        let content = data_ready_content("hq", &touched, 99);
        let (site, partitions) = parse_data_ready(&content).unwrap();
        assert_eq!(site, "hq");
        assert_eq!(partitions, [("cpu".to_owned(), 2), ("disk".to_owned(), 1)]);
    }

    #[test]
    fn parse_data_ready_rejects_other_concepts() {
        let obs = Observation::new("d", "m", 1.0, 0);
        assert!(parse_data_ready(&obs.to_content()).is_none());
        assert!(parse_data_ready(&Value::Nil).is_none());
    }

    #[test]
    fn classifier_stores_and_notifies() {
        use agentgrid_platform::Platform;

        let store = Arc::new(Mutex::new(ManagementStore::new(Classifier::standard())));
        let mut platform = Platform::new("g");
        platform.add_container("clg");
        let root_id = AgentId::with_platform("pg-root", "g");
        platform
            .spawn(
                "clg",
                "classifier",
                ClassifierAgent::new(Arc::clone(&store), root_id.clone()),
            )
            .unwrap();
        let msg = AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("cg-1@g"))
            .receiver(AgentId::with_platform("classifier", "g"))
            .content(batch().to_content())
            .build()
            .unwrap();
        platform.post(msg);
        platform.step(0);
        platform.step(0);
        // 3 records stored, partitioned into cpu + disk.
        assert_eq!(store.lock().len(), 3);
        assert_eq!(store.lock().partitions(), ["cpu", "disk"]);
        // The notification went to the (nonexistent) root → dead letter
        // carrying a data-ready payload.
        assert_eq!(platform.dead_letters().len(), 1);
        let (site, partitions) = parse_data_ready(platform.dead_letters()[0].content()).unwrap();
        assert_eq!(site, "hq");
        assert_eq!(partitions.len(), 2);
    }

    #[test]
    fn malformed_batches_are_counted_not_stored() {
        let store = Arc::new(Mutex::new(ManagementStore::default()));
        let mut agent = ClassifierAgent::new(Arc::clone(&store), AgentId::new("root"));
        let id = AgentId::new("classifier@g");
        let mut outbox = Vec::new();
        let mut df = agentgrid_platform::DirectoryFacilitator::new();
        let mut ctx = agentgrid_platform::AgentCtx::new(&id, "clg", 0, &mut outbox, &mut df);
        let bad = AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("x"))
            .receiver(id.clone())
            .content(Value::symbol("garbage"))
            .build()
            .unwrap();
        agent.on_message(&bad, &mut ctx);
        drop(ctx);
        assert_eq!(agent.rejects, 1);
        assert!(store.lock().is_empty());
        assert!(outbox.is_empty());
    }
}
