//! The live agent-grid management system (paper Fig. 2).
//!
//! [`ManagementGrid`] wires the four grids onto an
//! [`agentgrid_platform::Platform`]:
//!
//! * **CG** — [`CollectorAgent`]s poll the simulated
//!   [`Network`](agentgrid_net::Network) through SNMP or CLI interfaces
//!   on a schedule, normalize the heterogeneous results into
//!   [`Observation`](agentgrid_acl::ontology::Observation)s and batch
//!   them to the classifier;
//! * **CLG** — the [`ClassifierAgent`] parses, classifies, indexes and
//!   stores batches in a shared
//!   [`ManagementStore`](agentgrid_store::ManagementStore), then notifies
//!   the processor root which partitions have fresh data;
//! * **PG** — the [`ProcessorRootAgent`] brokers analysis tasks over the
//!   analyzer containers using the directory's resource profiles and a
//!   [`LoadBalancer`](crate::balance::LoadBalancer);
//!   [`AnalyzerAgent`]s run the rule engine at three levels (stateless /
//!   consolidation / correlation) and report findings;
//! * **IG** — the [`InterfaceAgent`] turns findings into alerts and
//!   reports, and feeds user-defined rules back into the analyzers.

mod analyzer;
mod classifier;
mod collector;
mod interface;
mod root;
mod system;

pub use analyzer::{analyze_task, facts_for, AnalyzerAgent};
pub use classifier::ClassifierAgent;
pub use collector::{CollectorAgent, CollectorInterface};
pub use interface::{AlertSink, InterfaceAgent};
pub use root::{FederationLink, ProcessorRootAgent};
pub use system::{GridBuilder, GridReport, ManagementGrid};

/// Default analysis rules shipped with the grid: the problems the paper's
/// motivating example watches for (processor, memory, disk, processes)
/// plus interface status, reachability, a level-2 consolidation rule and
/// a level-3 cross-device correlation rule.
pub const DEFAULT_RULES: &str = r#"
rule "high-cpu" salience 10 {
    when cpu(device: ?d, value: ?v)
    if ?v > 90
    then emit critical ?d "cpu load at ?v% on ?d"
}
rule "disk-pressure" salience 8 {
    when disk(device: ?d, value: ?v)
    if ?v >= 85
    then emit warning ?d "disk ?v% full on ?d"
}
rule "memory-pressure" salience 8 {
    when mem(device: ?d, value: ?v)
    if ?v >= 90
    then emit warning ?d "memory ?v% used on ?d"
}
rule "link-down" salience 9 {
    when if_status(device: ?d, index: ?i, value: ?s)
    if ?s == 2
    then emit critical ?d "interface ?i down on ?d"
}
rule "process-storm" salience 4 {
    when procs(device: ?d, value: ?v)
    if ?v > 400
    then emit warning ?d "?v processes running on ?d"
}
rule "device-unreachable" salience 10 {
    when obs(device: ?d, metric: "agent.reachable", value: ?v)
    if ?v == 0
    then emit critical ?d "device ?d is not answering management requests"
}
rule "disk-filling-fast" salience 7 {
    when trend(device: ?d, metric: "storage.disk.used-pct", per-min: ?r)
    if ?r > 1.0
    then emit warning ?d "disk on ?d filling at ?r %/min"
}
rule "sustained-cpu" salience 5 {
    when stat(device: ?d, metric: "cpu.load.1", mean: ?m)
    if ?m > 80
    then emit warning ?d "sustained cpu pressure on ?d (mean ?m%)"
}
rule "correlated-cpu" salience 6 {
    when cpu(device: ?a, value: ?x)
    when cpu(device: ?b, value: ?y)
    if ?x > 90
    if ?y > 90
    if ?a < ?b
    then emit critical ?a "correlated cpu overload on ?a and ?b"
}
"#;
