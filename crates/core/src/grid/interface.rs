use std::sync::Arc;

use agentgrid_acl::ontology::{Alert, FromContent, Severity};
use agentgrid_acl::{AclMessage, AgentId, Performative, Value};
use agentgrid_platform::{Agent, AgentCtx};
use parking_lot::Mutex;

/// A shared sink for alerts and reports — the "output channel" half of
/// the interface grid, readable from outside the platform (tests,
/// example binaries, a hypothetical web UI).
pub type AlertSink = Arc<Mutex<Vec<Alert>>>;

/// The interface-grid agent (paper §3.4): the bidirectional channel
/// between the grid and the user.
///
/// **Output**: receives [`Alert`]s from analyzers and appends them to a
/// shared [`AlertSink`]; keeps severity tallies for report generation.
///
/// **Input (feedback)**: accepts `learn-rule` messages from the user
/// (posted into the platform) and broadcasts them to every registered
/// analyzer — "the interface ... is also a way of receiving feedback
/// from the user and supplying it to the system", including "defining
/// new rules".
pub struct InterfaceAgent {
    sink: AlertSink,
    /// Alerts received per severity: `[info, warning, critical]`.
    pub tallies: [u64; 3],
    /// Rules forwarded to analyzers.
    pub rules_distributed: u64,
}

impl std::fmt::Debug for InterfaceAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InterfaceAgent")
            .field("tallies", &self.tallies)
            .field("rules_distributed", &self.rules_distributed)
            .finish()
    }
}

impl InterfaceAgent {
    /// Creates an interface agent writing alerts to `sink`.
    pub fn new(sink: AlertSink) -> Self {
        InterfaceAgent {
            sink,
            tallies: [0; 3],
            rules_distributed: 0,
        }
    }

    /// Renders the alerts as an XML document — the paper's interface
    /// grid is "flexible and multi-protocol ... for example, HTML pages,
    /// e-mail, chat, XML/HTTP" (§3.4); this is the XML/HTTP payload.
    pub fn render_xml(alerts: &[Alert]) -> String {
        fn escape(s: &str) -> String {
            s.replace('&', "&amp;")
                .replace('<', "&lt;")
                .replace('>', "&gt;")
                .replace('"', "&quot;")
        }
        let mut out = String::from("<?xml version=\"1.0\"?>\n<management-report>\n");
        for alert in alerts {
            out.push_str(&format!(
                "  <alert rule=\"{}\" device=\"{}\" severity=\"{}\" ts-ms=\"{}\">{}</alert>\n",
                escape(&alert.rule),
                escape(&alert.device),
                alert.severity,
                alert.timestamp_ms,
                escape(&alert.message),
            ));
        }
        out.push_str("</management-report>\n");
        out
    }

    /// Renders the current management report: alert counts by severity
    /// and the most recent critical findings.
    pub fn render_report(alerts: &[Alert]) -> String {
        let count = |s: Severity| alerts.iter().filter(|a| a.severity == s).count();
        let mut out = String::from("=== management report ===\n");
        out.push_str(&format!(
            "alerts: {} critical, {} warning, {} info\n",
            count(Severity::Critical),
            count(Severity::Warning),
            count(Severity::Info)
        ));
        for alert in alerts
            .iter()
            .filter(|a| a.severity == Severity::Critical)
            .rev()
            .take(10)
        {
            out.push_str(&format!(
                "[{} ms] {} ({}): {}\n",
                alert.timestamp_ms, alert.device, alert.rule, alert.message
            ));
        }
        out
    }
}

impl Agent for InterfaceAgent {
    fn on_message(&mut self, message: &AclMessage, ctx: &mut AgentCtx<'_>) {
        // User feedback: distribute a new rule to every analyzer.
        if message.content().get("concept").and_then(Value::as_str) == Some("learn-rule") {
            let analyzers: Vec<AgentId> = ctx
                .df()
                .search("analysis")
                .iter()
                .map(|e| e.provider.clone())
                .collect();
            for analyzer in analyzers {
                let forward = AclMessage::builder(Performative::Inform)
                    .sender(ctx.self_id().clone())
                    .receiver(analyzer)
                    .content(message.content().clone())
                    .build()
                    .expect("sender and receiver are set");
                ctx.send(forward);
                self.rules_distributed += 1;
            }
            return;
        }
        if let Ok(alert) = Alert::from_content(message.content()) {
            let slot = match alert.severity {
                Severity::Info => 0,
                Severity::Warning => 1,
                Severity::Critical => 2,
            };
            self.tallies[slot] += 1;
            self.sink.lock().push(alert);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentgrid_acl::ontology::ToContent;
    use agentgrid_platform::DirectoryFacilitator;

    fn ctx_bundle() -> (
        AgentId,
        Vec<agentgrid_acl::SharedMessage>,
        DirectoryFacilitator,
    ) {
        (
            AgentId::new("ig@g"),
            Vec::new(),
            DirectoryFacilitator::new(),
        )
    }

    #[test]
    fn alerts_reach_the_sink_with_tallies() {
        let sink: AlertSink = Arc::new(Mutex::new(Vec::new()));
        let mut agent = InterfaceAgent::new(Arc::clone(&sink));
        let (id, mut outbox, mut df) = ctx_bundle();
        for (severity, n) in [(Severity::Critical, 2usize), (Severity::Info, 1)] {
            for i in 0..n {
                let alert = Alert::new("r", format!("d{i}"), severity, "m", 0);
                let msg = AclMessage::builder(Performative::Inform)
                    .sender(AgentId::new("an@g"))
                    .receiver(id.clone())
                    .content(alert.to_content())
                    .build()
                    .unwrap();
                let mut ctx = AgentCtx::new(&id, "ig", 0, &mut outbox, &mut df);
                agent.on_message(&msg, &mut ctx);
            }
        }
        assert_eq!(sink.lock().len(), 3);
        assert_eq!(agent.tallies, [1, 0, 2]);
    }

    #[test]
    fn learn_rule_broadcasts_to_all_analyzers() {
        let sink: AlertSink = Arc::new(Mutex::new(Vec::new()));
        let mut agent = InterfaceAgent::new(sink);
        let (id, mut outbox, mut df) = ctx_bundle();
        df.register_service(AgentId::new("an-1@g"), "analysis", ["pg-1"]);
        df.register_service(AgentId::new("an-2@g"), "analysis", ["pg-2"]);
        let feedback = AclMessage::builder(Performative::Request)
            .sender(AgentId::new("user"))
            .receiver(id.clone())
            .content(Value::map([
                ("concept", Value::symbol("learn-rule")),
                ("text", Value::from("rule \"x\" { }")),
            ]))
            .build()
            .unwrap();
        let mut ctx = AgentCtx::new(&id, "ig", 0, &mut outbox, &mut df);
        agent.on_message(&feedback, &mut ctx);
        drop(ctx);
        assert_eq!(outbox.len(), 2);
        assert_eq!(agent.rules_distributed, 2);
        assert!(outbox
            .iter()
            .all(|m| m.content().get("concept").unwrap().as_str() == Some("learn-rule")));
    }

    #[test]
    fn report_lists_critical_alerts() {
        let alerts = vec![
            Alert::new("high-cpu", "r1", Severity::Critical, "cpu 99%", 5),
            Alert::new("note", "r2", Severity::Info, "fyi", 6),
        ];
        let report = InterfaceAgent::render_report(&alerts);
        assert!(report.contains("1 critical, 0 warning, 1 info"));
        assert!(report.contains("cpu 99%"));
        assert!(!report.contains("fyi"));
    }

    #[test]
    fn xml_report_escapes_and_lists_alerts() {
        let alerts = vec![Alert::new(
            "high-cpu",
            "r<1>",
            Severity::Critical,
            "load > 90% on \"r1\"",
            7,
        )];
        let xml = InterfaceAgent::render_xml(&alerts);
        assert!(xml.starts_with("<?xml"));
        assert!(xml.contains("device=\"r&lt;1&gt;\""));
        assert!(xml.contains("load &gt; 90% on &quot;r1&quot;"));
        assert!(xml.contains("severity=\"critical\""));
        assert!(xml.trim_end().ends_with("</management-report>"));
    }

    #[test]
    fn xml_report_of_nothing_is_an_empty_document() {
        let xml = InterfaceAgent::render_xml(&[]);
        assert!(xml.contains("<management-report>"));
        assert!(!xml.contains("<alert"));
    }

    #[test]
    fn garbage_messages_are_ignored() {
        let sink: AlertSink = Arc::new(Mutex::new(Vec::new()));
        let mut agent = InterfaceAgent::new(Arc::clone(&sink));
        let (id, mut outbox, mut df) = ctx_bundle();
        let junk = AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("x"))
            .receiver(id.clone())
            .content(Value::symbol("nonsense"))
            .build()
            .unwrap();
        let mut ctx = AgentCtx::new(&id, "ig", 0, &mut outbox, &mut df);
        agent.on_message(&junk, &mut ctx);
        drop(ctx);
        assert!(sink.lock().is_empty());
        assert!(outbox.is_empty());
    }
}
