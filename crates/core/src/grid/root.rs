use std::sync::Arc;

use agentgrid_acl::ontology::{AnalysisTask, ToContent, MANAGEMENT_ONTOLOGY};
use agentgrid_acl::{AclMessage, Performative, Value};
use agentgrid_platform::{Agent, AgentCtx};
use agentgrid_telemetry::{Counter, Telemetry};
use parking_lot::Mutex;

use crate::balance::LoadBalancer;
use crate::grid::classifier::parse_data_ready;

/// How many `data-ready` notifications between level-3 correlation
/// sweeps.
const CORRELATION_EVERY: u64 = 3;
/// Ticks a task may stay outstanding before the root checks whether its
/// container died.
const REASSIGN_AFTER_TICKS: u64 = 3;

/// One outstanding task the root is waiting on.
#[derive(Debug, Clone)]
struct Pending {
    task: AnalysisTask,
    container: String,
    ticks_outstanding: u64,
}

/// Brokering outcome counters exported as
/// `agentgrid_broker_tasks_total{outcome=...}` when telemetry is
/// attached — one increment per decision, mirroring [`RootStats`].
#[derive(Debug)]
struct BrokerMetrics {
    assigned: Counter,
    unassigned: Counter,
    reassigned: Counter,
    completed: Counter,
}

impl BrokerMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        let counter = |outcome: &str| {
            telemetry
                .registry()
                .counter("agentgrid_broker_tasks_total", &[("outcome", outcome)])
        };
        BrokerMetrics {
            assigned: counter("assigned"),
            unassigned: counter("unassigned"),
            reassigned: counter("reassigned"),
            completed: counter("completed"),
        }
    }
}

/// Counters the root maintains, shared out through
/// [`ProcessorRootAgent::stats_handle`] so the grid facade can report on
/// brokering after the agent has been spawned.
#[derive(Debug, Default)]
pub struct RootStats {
    /// `(task id, container)` assignment log, in decision order.
    pub assignments: Vec<(String, String)>,
    /// Tasks that found no capable container.
    pub unassigned: u64,
    /// Tasks reassigned after a container death.
    pub reassigned: u64,
    /// `done` reports received.
    pub completed: u64,
}

/// The processor-grid root: the broker of Fig. 3 as a live agent.
///
/// On a `data-ready` notification from the classifier it creates one
/// [`AnalysisTask`] per fresh partition (level 1/2 alternating) plus a
/// periodic level-3 correlation sweep, selects a container for each
/// through its [`LoadBalancer`] against the directory's resource
/// profiles, and requests the container's analyzer agent to run it.
///
/// **Fault tolerance**: tasks whose container disappears from the
/// directory before reporting `done` are re-brokered to a surviving
/// container.
pub struct ProcessorRootAgent {
    policy: Box<dyn LoadBalancer>,
    task_seq: u64,
    ready_seen: u64,
    pending: Vec<Pending>,
    stats: Arc<Mutex<RootStats>>,
    metrics: Option<BrokerMetrics>,
}

impl std::fmt::Debug for ProcessorRootAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessorRootAgent")
            .field("policy", &self.policy.name())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl ProcessorRootAgent {
    /// Creates a root brokering with the given policy.
    pub fn new(policy: Box<dyn LoadBalancer>) -> Self {
        ProcessorRootAgent {
            policy,
            task_seq: 0,
            ready_seen: 0,
            pending: Vec::new(),
            stats: Arc::new(Mutex::new(RootStats::default())),
            metrics: None,
        }
    }

    /// Exports brokering outcomes as
    /// `agentgrid_broker_tasks_total{outcome=...}` counters in
    /// `telemetry`'s registry.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = Some(BrokerMetrics::new(telemetry));
    }

    /// A handle onto the root's statistics, valid after the agent is
    /// spawned into a platform.
    pub fn stats_handle(&self) -> Arc<Mutex<RootStats>> {
        Arc::clone(&self.stats)
    }

    fn assign_and_send(&mut self, task: AnalysisTask, ctx: &mut AgentCtx<'_>) {
        // Only containers that actually host an analysis agent are
        // candidates; spare containers (profile but no agent yet) are
        // skipped until mobility moves an analyzer in.
        let df = ctx.df();
        let profiles: Vec<_> = df
            .container_profiles()
            .filter(|p| df.providers_with("analysis", &p.container).next().is_some())
            .cloned()
            .collect();
        match self.policy.select(&task, &profiles) {
            Some(container) => {
                // The analyzer registered itself under service "analysis"
                // with its container name as a property (Fig. 4).
                let analyzer = ctx
                    .df()
                    .providers_with("analysis", &container)
                    .next()
                    .cloned();
                let Some(analyzer) = analyzer else {
                    self.stats.lock().unassigned += 1;
                    if let Some(m) = &self.metrics {
                        m.unassigned.inc();
                    }
                    return;
                };
                // Project the added load so the next selection sees it.
                if let Some(profile) = ctx.df().container_profile(&container) {
                    let load =
                        (profile.load + task.size as f64 / 2000.0 / profile.cpu_capacity).min(1.0);
                    ctx.df().update_load(&container, load);
                }
                let request = AclMessage::builder(Performative::Request)
                    .sender(ctx.self_id().clone())
                    .receiver(analyzer)
                    .ontology(MANAGEMENT_ONTOLOGY)
                    .reply_with(format!("task-{}", task.task_id))
                    .content(task.to_content())
                    .build()
                    .expect("sender and receiver are set");
                ctx.send(request);
                self.stats
                    .lock()
                    .assignments
                    .push((task.task_id.clone(), container.clone()));
                if let Some(m) = &self.metrics {
                    m.assigned.inc();
                }
                self.pending.push(Pending {
                    task,
                    container,
                    ticks_outstanding: 0,
                });
            }
            None => {
                self.stats.lock().unassigned += 1;
                if let Some(m) = &self.metrics {
                    m.unassigned.inc();
                }
            }
        }
    }
}

impl Agent for ProcessorRootAgent {
    fn on_message(&mut self, message: &AclMessage, ctx: &mut AgentCtx<'_>) {
        // Completion reports.
        if message.content().get("concept").and_then(Value::as_str) == Some("done") {
            if let Some(task_id) = message.content().get("task-id").and_then(Value::as_str) {
                self.pending.retain(|p| p.task.task_id != task_id);
                self.stats.lock().completed += 1;
                if let Some(m) = &self.metrics {
                    m.completed.inc();
                }
            }
            return;
        }
        // Fresh-data notifications.
        let Some((_site, partitions)) = parse_data_ready(message.content()) else {
            return;
        };
        self.ready_seen += 1;
        // Alternate level 1 and level 2 so consolidation happens on every
        // other pass over a partition.
        let level = if self.ready_seen.is_multiple_of(2) {
            2
        } else {
            1
        };
        for (partition, size) in partitions {
            self.task_seq += 1;
            let task = AnalysisTask::new(
                format!("t{}", self.task_seq),
                partition.clone(),
                partition,
                level,
                size,
            );
            self.assign_and_send(task, ctx);
        }
        if self.ready_seen.is_multiple_of(CORRELATION_EVERY) {
            self.task_seq += 1;
            let task = AnalysisTask::new(format!("t{}", self.task_seq), "correlation", "*", 3, 0);
            self.assign_and_send(task, ctx);
        }
    }

    fn on_tick(&mut self, ctx: &mut AgentCtx<'_>) {
        // Reassign tasks whose container vanished (fault tolerance).
        let mut orphans = Vec::new();
        self.pending.retain_mut(|p| {
            p.ticks_outstanding += 1;
            let container_alive = ctx.df().container_profile(&p.container).is_some();
            if p.ticks_outstanding >= REASSIGN_AFTER_TICKS && !container_alive {
                orphans.push(p.task.clone());
                false
            } else {
                true
            }
        });
        for task in orphans {
            self.stats.lock().reassigned += 1;
            if let Some(m) = &self.metrics {
                m.reassigned.inc();
            }
            self.assign_and_send(task, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::KnowledgeCapacityIdle;
    use agentgrid_acl::ontology::{FromContent, ResourceProfile};
    use agentgrid_acl::AgentId;
    use agentgrid_platform::DirectoryFacilitator;
    use std::collections::BTreeMap;

    fn df_with_containers(names: &[&str]) -> DirectoryFacilitator {
        let mut df = DirectoryFacilitator::new();
        for name in names {
            df.register_container(ResourceProfile::new(
                *name,
                1.0,
                1.0,
                1024,
                ["cpu", "disk", "correlation"],
            ));
            df.register_service(
                AgentId::new(format!("analyzer-{name}@g")),
                "analysis",
                [*name],
            );
        }
        df
    }

    fn data_ready_msg(partitions: &[(&str, u64)]) -> AclMessage {
        let mut map = BTreeMap::new();
        for (p, s) in partitions {
            map.insert((*p).to_owned(), *s);
        }
        let content = crate::grid::classifier::data_ready_content("hq", &map, 0);
        AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("clg@g"))
            .receiver(AgentId::new("pg-root@g"))
            .content(content)
            .build()
            .unwrap()
    }

    #[test]
    fn data_ready_produces_one_task_per_partition() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1", "pg-2"]);
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&data_ready_msg(&[("cpu", 10), ("disk", 5)]), &mut ctx);
        let stats = stats.lock();
        assert_eq!(stats.assignments.len(), 2);
        assert_eq!(outbox.len(), 2);
        // Projected load spread the two tasks over both containers.
        let containers: Vec<&str> = stats.assignments.iter().map(|(_, c)| c.as_str()).collect();
        assert!(containers.contains(&"pg-1") && containers.contains(&"pg-2"));
    }

    #[test]
    fn every_third_notification_adds_a_correlation_sweep() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1"]);
        for _ in 0..3 {
            let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
            root.on_message(&data_ready_msg(&[("cpu", 1)]), &mut ctx);
        }
        // 3 partition tasks + 1 correlation task.
        assert_eq!(stats.lock().assignments.len(), 4);
        let last = AnalysisTask::from_content(outbox.last().unwrap().content()).unwrap();
        assert_eq!(last.level, 3);
        assert_eq!(last.skill, "correlation");
    }

    #[test]
    fn levels_alternate_between_notifications() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1"]);
        for _ in 0..2 {
            let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
            root.on_message(&data_ready_msg(&[("cpu", 1)]), &mut ctx);
        }
        let levels: Vec<u8> = outbox
            .iter()
            .map(|m| AnalysisTask::from_content(m.content()).unwrap().level)
            .collect();
        assert_eq!(levels, [1, 2]);
    }

    #[test]
    fn missing_skill_counts_unassigned() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1"]);
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&data_ready_msg(&[("memory", 1)]), &mut ctx);
        assert_eq!(stats.lock().unassigned, 1);
        assert!(outbox.is_empty());
    }

    #[test]
    fn done_report_clears_pending() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1"]);
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&data_ready_msg(&[("cpu", 1)]), &mut ctx);
        assert_eq!(root.pending.len(), 1);
        let done = AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("analyzer-pg-1@g"))
            .receiver(id.clone())
            .content(Value::map([
                ("concept", Value::symbol("done")),
                ("task-id", Value::from("t1")),
                ("findings", Value::Int(0)),
            ]))
            .build()
            .unwrap();
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&done, &mut ctx);
        assert!(root.pending.is_empty());
        assert_eq!(stats.lock().completed, 1);
    }

    #[test]
    fn dead_container_triggers_reassignment() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1", "pg-2"]);
        // Force assignment to pg-1 by overloading pg-2.
        df.update_load("pg-2", 0.99);
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&data_ready_msg(&[("cpu", 1)]), &mut ctx);
        assert_eq!(stats.lock().assignments[0].1, "pg-1");
        // pg-1 dies before reporting done.
        df.deregister_container("pg-1");
        df.update_load("pg-2", 0.0);
        for _ in 0..REASSIGN_AFTER_TICKS {
            let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
            root.on_tick(&mut ctx);
        }
        let stats = stats.lock();
        assert_eq!(stats.reassigned, 1);
        assert_eq!(stats.assignments.last().unwrap().1, "pg-2");
    }
}
