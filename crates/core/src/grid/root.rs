use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use agentgrid_acl::ontology::{Alert, AnalysisTask, Severity, ToContent, MANAGEMENT_ONTOLOGY};
use agentgrid_acl::{AclMessage, AgentId, Performative, Value};
use agentgrid_platform::{Agent, AgentCtx};
use agentgrid_store::{ManagementStore, Record};
use agentgrid_telemetry::{Counter, EventKind, Gauge, TelemetryHandle};
use parking_lot::Mutex;

use crate::balance::LoadBalancer;
use crate::federation::{self, FederationStats, LoadDigest};
use crate::grid::classifier::parse_data_ready;
use crate::overload::{AdmissionConfig, AdmissionGate, BreakerBoard, BreakerConfig};
use crate::recovery::{jitter_key, Liveness, RecoveryConfig};

/// How many `data-ready` notifications between level-3 correlation
/// sweeps.
const CORRELATION_EVERY: u64 = 3;
/// Ticks a task may stay outstanding before the root checks whether its
/// container died.
const REASSIGN_AFTER_TICKS: u64 = 3;

/// One outstanding task the root is waiting on.
#[derive(Debug, Clone)]
struct Pending {
    task: AnalysisTask,
    container: String,
    ticks_outstanding: u64,
    /// Retries already sent (recovery mode; the initial award is not a
    /// retry).
    attempts: u32,
    /// Simulated time after which the next retry fires (recovery mode;
    /// `u64::MAX` when recovery is off).
    deadline_ms: u64,
}

/// Stable per-task jitter key, so retry schedules of different tasks
/// decorrelate.
fn task_key(task_id: &str) -> u64 {
    jitter_key(task_id)
}

/// Flight-recorder label for a liveness verdict.
fn liveness_label(state: Liveness) -> &'static str {
    match state {
        Liveness::Alive => "alive",
        Liveness::Suspect => "suspect",
        Liveness::Dead => "dead",
    }
}

/// One shard root's view of the federation (sharded mode): who its
/// peers are, which directory service scopes its brokering, and where
/// cross-domain findings are read from and written to.
pub struct FederationLink {
    /// Index of the shard this root serves.
    pub shard: usize,
    /// Peer shard roots as `(shard index, root agent id)`, self
    /// excluded.
    pub peers: Vec<(usize, AgentId)>,
    /// The shard-scoped analyzer service
    /// ([`federation::shard_service`]) this root brokers over instead
    /// of the global `"analysis"`.
    pub service: String,
    /// The shard's own store — `fed-summary` findings are built from
    /// it and peer findings are injected into it.
    pub store: Arc<Mutex<ManagementStore>>,
    /// Shared federation counters, reported by the grid facade.
    pub stats: Arc<Mutex<FederationStats>>,
}

/// Brokering outcome counters exported as
/// `agentgrid_broker_tasks_total{outcome=...}` when telemetry is
/// attached — one increment per decision, mirroring [`RootStats`].
#[derive(Debug)]
struct BrokerMetrics {
    assigned: Counter,
    unassigned: Counter,
    reassigned: Counter,
    completed: Counter,
    /// `agentgrid_retries_total{component="broker"}` — deadline-driven
    /// request retries.
    retries: Counter,
    /// `agentgrid_rebrokered_tasks_total` — reclaimed tasks re-awarded
    /// through a fresh brokering round.
    rebrokered: Counter,
    /// `agentgrid_admission_rejects_total` — awards turned away by the
    /// admission gate (overload mode).
    admission_rejects: Counter,
    /// Registry handle for the per-container
    /// `agentgrid_container_liveness` and `agentgrid_breaker_state`
    /// gauges (created lazily as containers appear).
    telemetry: TelemetryHandle,
}

impl BrokerMetrics {
    fn new(telemetry: &TelemetryHandle) -> Self {
        let counter = |outcome: &str| {
            telemetry
                .registry()
                .counter("agentgrid_broker_tasks_total", &[("outcome", outcome)])
        };
        BrokerMetrics {
            assigned: counter("assigned"),
            unassigned: counter("unassigned"),
            reassigned: counter("reassigned"),
            completed: counter("completed"),
            retries: telemetry
                .registry()
                .counter("agentgrid_retries_total", &[("component", "broker")]),
            rebrokered: telemetry
                .registry()
                .counter("agentgrid_rebrokered_tasks_total", &[]),
            admission_rejects: telemetry
                .registry()
                .counter("agentgrid_admission_rejects_total", &[]),
            telemetry: telemetry.clone(),
        }
    }

    /// The liveness gauge of one container: 0 alive, 1 suspect, 2 dead.
    fn liveness_gauge(&self, container: &str) -> Gauge {
        self.telemetry
            .registry()
            .gauge("agentgrid_container_liveness", &[("container", container)])
    }

    /// The breaker gauge of one container: 0 closed, 1 open, 2
    /// half-open.
    fn breaker_gauge(&self, container: &str) -> Gauge {
        self.telemetry
            .registry()
            .gauge("agentgrid_breaker_state", &[("container", container)])
    }

    /// One direction of this shard's spill-over traffic:
    /// `agentgrid_shard_spill_total{direction=...,shard=...}`.
    fn spill_counter(&self, direction: &str, shard: usize) -> Counter {
        self.telemetry.registry().counter(
            "agentgrid_shard_spill_total",
            &[("direction", direction), ("shard", &shard.to_string())],
        )
    }
}

/// Counters the root maintains, shared out through
/// [`ProcessorRootAgent::stats_handle`] so the grid facade can report on
/// brokering after the agent has been spawned.
#[derive(Debug, Default)]
pub struct RootStats {
    /// Tasks this root created from `data-ready` notifications. A
    /// spilled task counts at its origin, never at the peer that ran
    /// it, so summing `created` across shards counts every task in the
    /// federation exactly once.
    pub created: u64,
    /// `(task id, container)` assignment log, in decision order. Every
    /// award appends here — including re-awards — so for any task id,
    /// `assignments` holds `1 + (times the id appears in rebrokered)`
    /// entries.
    pub assignments: Vec<(String, String)>,
    /// Tasks that found no capable container.
    pub unassigned: u64,
    /// Tasks reassigned after a container death.
    pub reassigned: u64,
    /// `done` reports received (deduplicated: one per in-flight award).
    pub completed: u64,
    /// Ids of completed tasks, in completion order.
    pub completed_ids: Vec<String>,
    /// Ids of tasks re-awarded via a fresh brokering round, once per
    /// re-award (recovery mode).
    pub rebrokered: Vec<String>,
    /// Deadline-driven request retries sent (recovery mode).
    pub retries: u64,
    /// Tasks whose retries were exhausted and escalated to the
    /// interface grid (recovery mode).
    pub escalations: u64,
    /// Awards turned away by the admission gate (overload mode): with
    /// recovery on the task parks for a later window, without it the
    /// task is dropped — either way the rejection is counted here.
    pub rejected: u64,
    /// Ids still in flight or parked as of the root's last event. An
    /// assigned-but-uncompleted task is only *lost* if it is absent
    /// from this set too.
    pub outstanding: Vec<String>,
}

/// The processor-grid root: the broker of Fig. 3 as a live agent.
///
/// On a `data-ready` notification from the classifier it creates one
/// [`AnalysisTask`] per fresh partition (level 1/2 alternating) plus a
/// periodic level-3 correlation sweep, selects a container for each
/// through its [`LoadBalancer`] against the directory's resource
/// profiles, and requests the container's analyzer agent to run it.
///
/// **Fault tolerance**: tasks whose container disappears from the
/// directory before reporting `done` are re-brokered to a surviving
/// container. With a [`RecoveryConfig`] attached
/// ([`set_recovery`](Self::set_recovery)) the root additionally runs
/// heartbeat-staleness liveness detection (suspect containers are
/// excluded from awards, dead ones are deregistered and their in-flight
/// ledger reclaimed and re-awarded), deadline-driven retries with
/// seeded exponential backoff, and escalation of retry-exhausted tasks
/// to the interface grid as alerts.
pub struct ProcessorRootAgent {
    policy: Box<dyn LoadBalancer>,
    task_seq: u64,
    ready_seen: u64,
    pending: Vec<Pending>,
    stats: Arc<Mutex<RootStats>>,
    metrics: Option<BrokerMetrics>,
    recovery: Option<RecoveryConfig>,
    /// Where retry-exhaustion and container-death alerts escalate.
    escalate_to: Option<AgentId>,
    /// Tasks awaiting a capable container; the bool marks re-awards
    /// (reclaimed from a dead container) versus first awards, so the
    /// re-brokered log stays exact.
    parked: Vec<(AnalysisTask, bool)>,
    /// Containers currently suspect (stale heartbeats) — excluded from
    /// awards until they beat again.
    suspect: BTreeSet<String>,
    /// Task ids already escalated, to alert at most once per task.
    escalated: BTreeSet<String>,
    /// Token-bucket admission gate (overload mode).
    admission: Option<AdmissionGate>,
    /// Per-container circuit breakers (overload mode; needs recovery's
    /// deadline machinery for its failure signal).
    breakers: Option<BreakerBoard>,
    /// Last liveness verdict per container, so the flight recorder only
    /// sees *changes*. Dead containers keep their entry: a restart that
    /// heartbeats again records the dead → alive flip.
    liveness_seen: BTreeMap<String, Liveness>,
    /// Containers the chaos layer has marked network-partitioned, each
    /// with the simulated time its quarantine ends (`u64::MAX` while the
    /// partition is open, heal time + grace after it heals). A
    /// quarantined container is **Suspect, never Dead**: it is excluded
    /// from awards but keeps its directory entry and in-flight ledger —
    /// unlike a crash, its work will finish once the partition heals.
    quarantine: Option<Arc<Mutex<BTreeMap<String, u64>>>>,
    /// Task ids whose completion has already been counted, so a
    /// duplicated or retransmitted `done` — or a stale award finishing
    /// after the task was re-brokered — never double-counts.
    done_seen: BTreeSet<String>,
    /// Federation wiring (sharded mode). `None` on an unsharded grid —
    /// every federation code path is gated on this, keeping unsharded
    /// runs byte-identical to the pre-federation behavior.
    federation: Option<FederationLink>,
    /// Latest load digest gossiped by each peer shard.
    digests: BTreeMap<usize, LoadDigest>,
    /// Tasks forwarded to a peer and not yet confirmed done: task id →
    /// destination shard. Spilled tasks stay in the outstanding
    /// snapshot until their `spill-done` lands, so a lost spill shows
    /// up as lost work instead of silently vanishing.
    spilled_out: BTreeMap<String, usize>,
    /// Tasks accepted from a peer: task id → (origin shard, origin
    /// root), so the `spill-done` goes home on completion.
    spilled_in: BTreeMap<String, (usize, AgentId)>,
    /// Spill task ids already accepted, so a duplicated or
    /// retransmitted spill never runs twice.
    spill_seen: BTreeSet<String>,
    /// Newest `fed-summary` timestamp accepted per origin shard; older
    /// or equal timestamps are stale duplicates and are dropped.
    summary_seen: BTreeMap<usize, u64>,
    /// Simulated time of the last gossiped load digest. The stepper
    /// re-ticks every container at the same timestamp until the
    /// exchange is quiescent, so an ungated gossip would keep the
    /// platform busy to its step limit; digests go out once per clock
    /// advance instead.
    last_gossip_ms: Option<u64>,
}

impl std::fmt::Debug for ProcessorRootAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessorRootAgent")
            .field("policy", &self.policy.name())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl ProcessorRootAgent {
    /// Creates a root brokering with the given policy.
    pub fn new(policy: Box<dyn LoadBalancer>) -> Self {
        ProcessorRootAgent {
            policy,
            task_seq: 0,
            ready_seen: 0,
            pending: Vec::new(),
            stats: Arc::new(Mutex::new(RootStats::default())),
            metrics: None,
            recovery: None,
            escalate_to: None,
            parked: Vec::new(),
            suspect: BTreeSet::new(),
            escalated: BTreeSet::new(),
            admission: None,
            breakers: None,
            liveness_seen: BTreeMap::new(),
            quarantine: None,
            done_seen: BTreeSet::new(),
            federation: None,
            digests: BTreeMap::new(),
            spilled_out: BTreeMap::new(),
            spilled_in: BTreeMap::new(),
            spill_seen: BTreeSet::new(),
            summary_seen: BTreeMap::new(),
            last_gossip_ms: None,
        }
    }

    /// Exports brokering outcomes as
    /// `agentgrid_broker_tasks_total{outcome=...}` counters (plus, in
    /// recovery mode, `agentgrid_retries_total`,
    /// `agentgrid_rebrokered_tasks_total` and the per-container
    /// `agentgrid_container_liveness` gauges) in `telemetry`'s registry.
    pub fn attach_telemetry(&mut self, telemetry: &TelemetryHandle) {
        self.metrics = Some(BrokerMetrics::new(telemetry));
    }

    /// Turns on the recovery layer: liveness sweeps, deadline retries
    /// with backoff, reclaim-and-re-broker of dead containers' tasks.
    /// Alerts escalate to `escalate_to` (normally the interface agent).
    pub fn set_recovery(&mut self, config: RecoveryConfig, escalate_to: Option<AgentId>) {
        self.recovery = Some(config);
        self.escalate_to = escalate_to;
    }

    /// Attaches the chaos layer's partition-quarantine map (container →
    /// quarantined-until, simulated ms). While a container is
    /// quarantined the liveness sweep classifies it **Suspect** no
    /// matter what its heartbeats say: a partitioned container is
    /// unreachable but not dead, so its directory entry and in-flight
    /// ledger survive and its tasks are *retried*, not reclaimed, until
    /// the quarantine (heal + grace) expires.
    pub fn set_quarantine(&mut self, quarantine: Arc<Mutex<BTreeMap<String, u64>>>) {
        self.quarantine = Some(quarantine);
    }

    /// Turns on overload protection at the broker: a token-bucket
    /// admission gate on first awards and/or per-container circuit
    /// breakers diverting awards from tripped containers.
    pub fn set_overload(
        &mut self,
        admission: Option<AdmissionConfig>,
        breaker: Option<BreakerConfig>,
    ) {
        self.admission = admission.map(AdmissionGate::new);
        self.breakers = breaker.map(BreakerBoard::new);
    }

    /// Joins this root to a federation of peer shards (sharded mode):
    /// brokering and liveness scope to the link's shard service,
    /// admission-gate and broker rejections spill to the least-loaded
    /// peer, and finding summaries flow both ways on the correlation
    /// cadence.
    pub fn set_federation(&mut self, link: FederationLink) {
        self.federation = Some(link);
    }

    /// The directory service this root brokers over: the shard-scoped
    /// one when federated, the global `"analysis"` otherwise.
    fn service(&self) -> &str {
        match &self.federation {
            Some(link) => &link.service,
            None => "analysis",
        }
    }

    /// A handle onto the root's statistics, valid after the agent is
    /// spawned into a platform.
    pub fn stats_handle(&self) -> Arc<Mutex<RootStats>> {
        Arc::clone(&self.stats)
    }

    /// Selects a container for `task` and sends the award; on success
    /// the task joins the in-flight ledger and the chosen container is
    /// returned.
    fn try_award(&mut self, task: &AnalysisTask, ctx: &mut AgentCtx<'_>) -> Option<String> {
        // Only containers that actually host an analysis agent are
        // candidates; spare containers (profile but no agent yet) are
        // skipped until mobility moves an analyzer in. Suspect
        // containers (stale heartbeats, recovery mode) are skipped too.
        let now = ctx.now_ms();
        // Federated roots broker only over their own shard's tier.
        let service = self.service().to_owned();
        let df = ctx.df();
        let mut profiles: Vec<_> = df
            .container_profiles()
            .filter(|p| df.providers_with(&service, &p.container).next().is_some())
            .filter(|p| !self.suspect.contains(&p.container))
            .cloned()
            .collect();
        // Open circuit breakers divert awards exactly like Suspect; a
        // breaker whose probe time arrived half-opens and lets this
        // award through as the probe.
        if let Some(breakers) = &mut self.breakers {
            profiles.retain(|p| !breakers.blocks(&p.container, now));
        }
        let container = self.policy.select(task, &profiles)?;
        // The analyzer registered itself under the service with its
        // container name as a property (Fig. 4).
        let analyzer = ctx
            .df()
            .providers_with(&service, &container)
            .next()
            .cloned()?;
        // Project the added load so the next selection sees it.
        if let Some(profile) = ctx.df().container_profile(&container) {
            let load = (profile.load + task.size as f64 / 2000.0 / profile.cpu_capacity).min(1.0);
            ctx.df().update_load(&container, load);
        }
        let request = AclMessage::builder(Performative::Request)
            .sender(ctx.self_id().clone())
            .receiver(analyzer)
            .ontology(MANAGEMENT_ONTOLOGY)
            .reply_with(format!("task-{}", task.task_id))
            .content(task.to_content())
            .build()
            .expect("sender and receiver are set");
        ctx.send(request);
        self.stats
            .lock()
            .assignments
            .push((task.task_id.clone(), container.clone()));
        if let Some(m) = &self.metrics {
            m.assigned.inc();
        }
        let deadline_ms = match &self.recovery {
            Some(cfg) => ctx
                .now_ms()
                .saturating_add(cfg.backoff.delay_ms(0, task_key(&task.task_id))),
            None => u64::MAX,
        };
        self.pending.push(Pending {
            task: task.clone(),
            container: container.clone(),
            ticks_outstanding: 0,
            attempts: 0,
            deadline_ms,
        });
        Some(container)
    }

    /// First-award path. Without recovery an unawardable task counts
    /// `unassigned` and is dropped (the legacy behavior); with recovery
    /// it parks and is retried every tick until a capable container
    /// appears.
    fn assign_and_send(&mut self, task: AnalysisTask, ctx: &mut AgentCtx<'_>) {
        // Admission gate (overload mode): a first award only flows when
        // the token bucket has budget and the mean measured load across
        // the directory's profiles is under the threshold. Re-awards of
        // reclaimed tasks bypass the gate — they were admitted once.
        let federated = self.federation.is_some();
        let service = self.service().to_owned();
        if let Some(gate) = &mut self.admission {
            let aggregate = {
                let df = ctx.df();
                // A federated root gates on the mean load of its own
                // shard's analyzer containers, not the whole directory.
                let (sum, n) = df
                    .container_profiles()
                    .filter(|p| {
                        !federated || df.providers_with(&service, &p.container).next().is_some()
                    })
                    .fold((0.0_f64, 0u32), |(s, n), p| (s + p.load, n + 1));
                if n == 0 {
                    0.0
                } else {
                    sum / f64::from(n)
                }
            };
            if !gate.admit(ctx.now_ms(), aggregate) {
                self.stats.lock().rejected += 1;
                if let Some(m) = &self.metrics {
                    m.admission_rejects.inc();
                    m.telemetry.record_event(
                        ctx.now_ms(),
                        EventKind::AdmissionReject {
                            task: task.task_id.clone(),
                        },
                    );
                }
                // Sharded mode: a gate rejection is the spill trigger —
                // the least-loaded peer shard runs the task instead.
                if self.try_spill(&task, ctx) {
                    return;
                }
                // Parks under recovery (retried next window); dropped —
                // but counted — without it.
                if self.recovery.is_some() {
                    self.parked.push((task, false));
                }
                return;
            }
        }
        if let Some(container) = self.try_award(&task, ctx) {
            if let Some(m) = &self.metrics {
                let now = ctx.now_ms();
                m.telemetry
                    .task_awarded(&task.task_id, &container, now, false);
                m.telemetry.record_event(
                    now,
                    EventKind::TaskBrokered {
                        task: task.task_id.clone(),
                        container,
                    },
                );
            }
            return;
        }
        // Sharded mode: no capable local container is the other spill
        // trigger.
        if self.try_spill(&task, ctx) {
            return;
        }
        if self.recovery.is_some() {
            self.parked.push((task, false));
        } else {
            self.stats.lock().unassigned += 1;
            if let Some(m) = &self.metrics {
                m.unassigned.inc();
            }
        }
    }

    /// Re-award path for tasks reclaimed from a dead container or whose
    /// retries were exhausted. A successful re-award is logged in both
    /// `assignments` (inside [`try_award`](Self::try_award)) and
    /// `rebrokered`, preserving the exactly-once accounting
    /// `assignments(id) == 1 + rebrokered(id)`.
    fn reaward(&mut self, task: AnalysisTask, ctx: &mut AgentCtx<'_>) {
        if let Some(container) = self.try_award(&task, ctx) {
            let mut stats = self.stats.lock();
            stats.reassigned += 1;
            stats.rebrokered.push(task.task_id.clone());
            drop(stats);
            if let Some(m) = &self.metrics {
                m.reassigned.inc();
                m.rebrokered.inc();
                let now = ctx.now_ms();
                m.telemetry
                    .task_awarded(&task.task_id, &container, now, true);
                m.telemetry.record_event(
                    now,
                    EventKind::TaskRebrokered {
                        task: task.task_id.clone(),
                        container,
                    },
                );
            }
        } else {
            self.parked.push((task, true));
        }
    }

    /// Forwards a task the local admission gate or broker turned away
    /// to the least-loaded peer shard (by gossiped digest; ties break
    /// to the lowest shard index). Returns `false` when unfederated,
    /// when the task itself arrived as a spill (one domain hop, never
    /// a relay), or when there is no peer — the caller then falls back
    /// to the usual park/drop path.
    fn try_spill(&mut self, task: &AnalysisTask, ctx: &mut AgentCtx<'_>) -> bool {
        let Some(link) = &self.federation else {
            return false;
        };
        if self.spilled_in.contains_key(&task.task_id) {
            return false;
        }
        let Some((to_shard, peer)) = link
            .peers
            .iter()
            .min_by_key(|(shard, _)| {
                let pressure = self
                    .digests
                    .get(shard)
                    .map(|d| (d.load_milli, d.outstanding))
                    .unwrap_or((0, 0));
                (pressure, *shard)
            })
            .cloned()
        else {
            return false;
        };
        let from_shard = link.shard;
        let msg = AclMessage::builder(Performative::Request)
            .sender(ctx.self_id().clone())
            .receiver(peer)
            .ontology(MANAGEMENT_ONTOLOGY)
            .content(federation::spill_content(from_shard, task))
            .build()
            .expect("sender and receiver are set");
        ctx.send(msg);
        link.stats.lock().spilled_out += 1;
        self.spilled_out.insert(task.task_id.clone(), to_shard);
        if let Some(m) = &self.metrics {
            m.spill_counter("out", from_shard).inc();
            m.telemetry.record_event(
                ctx.now_ms(),
                EventKind::TaskSpilled {
                    task: task.task_id.clone(),
                    from_shard,
                    to_shard,
                },
            );
        }
        true
    }

    /// Runs a task a peer shard spilled here. The origin already paid
    /// an admission rejection for it, so it bypasses the local gate —
    /// bouncing it a second time could ping-pong work between
    /// saturated shards forever. Duplicated spills (reliability-layer
    /// retransmission) are dropped by the `spill_seen` ledger.
    fn accept_spill(
        &mut self,
        origin_shard: usize,
        origin_root: AgentId,
        task: AnalysisTask,
        ctx: &mut AgentCtx<'_>,
    ) {
        if self.federation.is_none() || !self.spill_seen.insert(task.task_id.clone()) {
            return;
        }
        self.spilled_in
            .insert(task.task_id.clone(), (origin_shard, origin_root));
        if let Some(link) = &self.federation {
            link.stats.lock().spilled_in += 1;
        }
        if let Some(m) = &self.metrics {
            m.spill_counter("in", origin_shard).inc();
        }
        if let Some(container) = self.try_award(&task, ctx) {
            if let Some(m) = &self.metrics {
                let now = ctx.now_ms();
                m.telemetry
                    .task_awarded(&task.task_id, &container, now, false);
                m.telemetry.record_event(
                    now,
                    EventKind::TaskBrokered {
                        task: task.task_id.clone(),
                        container,
                    },
                );
            }
            return;
        }
        if self.recovery.is_some() {
            self.parked.push((task, false));
        } else {
            self.stats.lock().unassigned += 1;
            if let Some(m) = &self.metrics {
                m.unassigned.inc();
            }
        }
    }

    /// Publishes this shard's load digest to every peer — once per
    /// tick, federated mode — so peers base this tick's spill
    /// decisions on fresh data.
    fn gossip_digest(&mut self, ctx: &mut AgentCtx<'_>) {
        let Some(link) = &self.federation else {
            return;
        };
        let now = ctx.now_ms();
        if self.last_gossip_ms == Some(now) {
            return;
        }
        self.last_gossip_ms = Some(now);
        let service = link.service.clone();
        let shard = link.shard;
        let (sum, n) = {
            let df = ctx.df();
            df.container_profiles()
                .filter(|p| df.providers_with(&service, &p.container).next().is_some())
                .fold((0.0_f64, 0u32), |(s, n), p| (s + p.load, n + 1))
        };
        let load = if n == 0 { 0.0 } else { sum / f64::from(n) };
        let digest = LoadDigest {
            shard,
            load_milli: (load * 1000.0).round() as i64,
            outstanding: (self.pending.len() + self.parked.len() + self.spilled_out.len()) as u64,
        };
        if let Some(m) = &self.metrics {
            let shard_label = shard.to_string();
            let registry = m.telemetry.registry();
            registry
                .gauge("agentgrid_shard_load_milli", &[("shard", &shard_label)])
                .set(digest.load_milli);
            registry
                .gauge("agentgrid_shard_outstanding", &[("shard", &shard_label)])
                .set(digest.outstanding as i64);
        }
        for (_, peer) in &link.peers {
            let msg = AclMessage::builder(Performative::Inform)
                .sender(ctx.self_id().clone())
                .receiver(peer.clone())
                .ontology(MANAGEMENT_ONTOLOGY)
                .content(digest.to_content())
                .build()
                .expect("sender and receiver are set");
            ctx.send(msg);
        }
    }

    /// Publishes this shard's hottest devices to every peer as a
    /// compact `fed-summary` (correlation cadence, federated mode).
    /// Findings are read deterministically from the shard's store —
    /// devices in name order, ranked by latest 1-minute CPU load —
    /// so federated runs stay bit-identical across runtimes.
    fn publish_summary(&mut self, ctx: &mut AgentCtx<'_>) {
        let Some(link) = &self.federation else {
            return;
        };
        if link.peers.is_empty() {
            return;
        }
        let mut hot: Vec<federation::Finding> = Vec::new();
        {
            let store = link.store.lock();
            for device in store.devices() {
                // Never re-export a peer's findings: a summary makes
                // one hop, or every shard would echo the federation.
                if device.starts_with("fed-s") {
                    continue;
                }
                if let Some((_, value)) = store.latest(device, "cpu.load.1") {
                    hot.push((device.to_owned(), "cpu.load.1".to_owned(), value));
                }
            }
        }
        hot.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        hot.truncate(federation::SUMMARY_TOP_K);
        if hot.is_empty() {
            return;
        }
        let content = federation::summary_content(link.shard, ctx.now_ms(), &hot);
        for (_, peer) in &link.peers {
            let msg = AclMessage::builder(Performative::Inform)
                .sender(ctx.self_id().clone())
                .receiver(peer.clone())
                .ontology(MANAGEMENT_ONTOLOGY)
                .content(content.clone())
                .build()
                .expect("sender and receiver are set");
            ctx.send(msg);
        }
        link.stats.lock().summaries_sent += 1;
    }

    /// Ingests a peer's `fed-summary`: fresh findings are written into
    /// the local store under a [`federation::fed_device`] alias, where
    /// the ordinary level-3 correlation rules see them next to local
    /// facts.
    fn accept_summary(
        &mut self,
        origin_shard: usize,
        ts_ms: u64,
        findings: Vec<federation::Finding>,
    ) {
        let Some(link) = &self.federation else {
            return;
        };
        if origin_shard == link.shard {
            return;
        }
        if self
            .summary_seen
            .get(&origin_shard)
            .is_some_and(|last| ts_ms <= *last)
        {
            return;
        }
        self.summary_seen.insert(origin_shard, ts_ms);
        {
            let mut stats = link.stats.lock();
            stats.summaries_received += 1;
            stats.injected_findings += findings.len() as u64;
        }
        let mut store = link.store.lock();
        for (device, metric, value) in findings {
            store.insert(
                Record::new(
                    federation::fed_device(origin_shard, &device),
                    metric,
                    value,
                    ts_ms,
                )
                .with_site(format!("fed-s{origin_shard}")),
            );
        }
    }

    /// Allocates the next task id; shard-qualified (`s2-t17`) when
    /// federated, so ids stay unique across the whole federation even
    /// after a task crosses a domain boundary.
    fn next_task_id(&mut self) -> String {
        self.task_seq += 1;
        self.stats.lock().created += 1;
        match &self.federation {
            Some(link) => format!("s{}-t{}", link.shard, self.task_seq),
            None => format!("t{}", self.task_seq),
        }
    }

    /// Refreshes the outstanding-ids snapshot in the shared stats from
    /// the in-flight ledger, the parked queue, and (sharded mode) the
    /// spilled-but-unconfirmed set.
    fn sync_outstanding(&self) {
        let mut stats = self.stats.lock();
        stats.outstanding = self
            .pending
            .iter()
            .map(|p| p.task.task_id.clone())
            .chain(self.parked.iter().map(|(t, _)| t.task_id.clone()))
            .chain(self.spilled_out.keys().cloned())
            .collect();
    }

    /// Sends an escalation alert to the interface grid, once per task.
    fn escalate(&mut self, rule: &str, device: &str, message: String, ctx: &mut AgentCtx<'_>) {
        self.stats.lock().escalations += 1;
        if let Some(m) = &self.metrics {
            m.telemetry.record_event(
                ctx.now_ms(),
                EventKind::TaskEscalated {
                    rule: rule.to_owned(),
                    device: device.to_owned(),
                },
            );
        }
        let Some(interface) = &self.escalate_to else {
            return;
        };
        let alert = Alert::new(rule, device, Severity::Critical, message, ctx.now_ms());
        let msg = AclMessage::builder(Performative::Inform)
            .sender(ctx.self_id().clone())
            .receiver(interface.clone())
            .ontology(MANAGEMENT_ONTOLOGY)
            .content(alert.to_content())
            .build()
            .expect("sender and receiver are set");
        ctx.send(msg);
    }

    /// Forwards any breaker state changes accumulated since the last
    /// drain to the flight recorder (no-op without telemetry — the log
    /// is still emptied so it cannot grow unbounded).
    fn drain_breaker_transitions(&mut self, now_ms: u64) {
        let Some(breakers) = &mut self.breakers else {
            return;
        };
        let transitions = breakers.take_transitions();
        if let Some(m) = &self.metrics {
            for (container, to) in transitions {
                m.telemetry
                    .record_event(now_ms, EventKind::BreakerTransition { container, to });
            }
        }
    }

    /// The recovery-mode tick: liveness sweep, dead-container reclaim,
    /// deadline retries, escalations, and re-award of parked work.
    fn recovery_tick(&mut self, cfg: RecoveryConfig, ctx: &mut AgentCtx<'_>) {
        let now = ctx.now_ms();
        let service = self.service().to_owned();
        let federated = self.federation.is_some();

        // 1. Liveness sweep over the registered container profiles.
        //    Federated roots sweep only containers hosting their own
        //    shard's analyzers — a peer's tier is the peer's problem.
        let containers: Vec<String> = {
            let df = ctx.df();
            df.container_profiles()
                .filter(|p| {
                    !federated || df.providers_with(&service, &p.container).next().is_some()
                })
                .map(|p| p.container.clone())
                .collect()
        };
        self.suspect.clear();
        // Containers under partition quarantine are pinned to Suspect:
        // the network cut them off, their process is still running.
        let quarantined: BTreeSet<String> = match &self.quarantine {
            Some(q) => q
                .lock()
                .iter()
                .filter(|(_, until)| now < **until)
                .map(|(c, _)| c.clone())
                .collect(),
            None => BTreeSet::new(),
        };
        let mut dead = Vec::new();
        for container in containers {
            let last = ctx.df().last_heartbeat(&container).unwrap_or(0);
            let state = if quarantined.contains(&container) {
                Liveness::Suspect
            } else {
                cfg.liveness.classify(now.saturating_sub(last))
            };
            if let Some(m) = &self.metrics {
                m.liveness_gauge(&container).set(state.as_gauge());
                if let Some(breakers) = &self.breakers {
                    m.breaker_gauge(&container)
                        .set(breakers.gauge_value(&container));
                }
                // Flight-record liveness *changes* only; a container
                // never seen before counts as previously alive.
                let prev = self.liveness_seen.insert(container.clone(), state);
                if prev.unwrap_or(Liveness::Alive) != state {
                    m.telemetry.record_event(
                        now,
                        EventKind::HeartbeatChange {
                            container: container.clone(),
                            state: liveness_label(state),
                        },
                    );
                }
            }
            match state {
                Liveness::Alive => {}
                Liveness::Suspect => {
                    self.suspect.insert(container);
                }
                Liveness::Dead => dead.push(container),
            }
        }

        // 2. Dead containers: drop their stale directory entries so no
        //    further awards can reach them, reclaim their in-flight
        //    ledger, and raise one alert per death.
        let mut to_reaward = Vec::new();
        for container in dead {
            let providers: Vec<AgentId> = ctx
                .df()
                .providers_with(&service, &container)
                .cloned()
                .collect();
            for provider in providers {
                ctx.df().deregister(&provider);
            }
            ctx.df().deregister_container(&container);
            let mut reclaimed = 0;
            self.pending.retain(|p| {
                if p.container == container {
                    to_reaward.push(p.task.clone());
                    reclaimed += 1;
                    false
                } else {
                    true
                }
            });
            // A dead container's breaker state dies with it — liveness
            // already diverted everything, and a restarted container
            // must come back with a closed breaker.
            if let Some(breakers) = &mut self.breakers {
                breakers.forget(&container);
            }
            self.escalate(
                "container-dead",
                &container,
                format!("container {container} missed heartbeats; reclaiming {reclaimed} tasks"),
                ctx,
            );
        }

        // 3. Deadline pass: past-due awards retry with backoff until
        //    the budget runs out, then escalate and re-broker.
        let mut retries = Vec::new();
        let mut exhausted = Vec::new();
        // Deadline expiries double as the circuit breakers' failure
        // signal: each is one timeout against the awarded container.
        let mut timeouts = Vec::new();
        self.pending.retain_mut(|p| {
            p.ticks_outstanding += 1;
            if now < p.deadline_ms {
                return true;
            }
            timeouts.push(p.container.clone());
            if p.attempts < cfg.backoff.max_retries {
                p.attempts += 1;
                p.deadline_ms =
                    now.saturating_add(cfg.backoff.delay_ms(p.attempts, task_key(&p.task.task_id)));
                retries.push((p.task.clone(), p.container.clone()));
                true
            } else {
                exhausted.push(p.task.clone());
                false
            }
        });
        if let Some(breakers) = &mut self.breakers {
            for container in &timeouts {
                breakers.on_failure(container, now);
            }
        }
        for (task, container) in retries {
            let Some(analyzer) = ctx
                .df()
                .providers_with(&service, &container)
                .next()
                .cloned()
            else {
                // Provider vanished between award and retry; the next
                // liveness sweep reclaims the task.
                continue;
            };
            let request = AclMessage::builder(Performative::Request)
                .sender(ctx.self_id().clone())
                .receiver(analyzer)
                .ontology(MANAGEMENT_ONTOLOGY)
                .reply_with(format!("task-{}", task.task_id))
                .content(task.to_content())
                .build()
                .expect("sender and receiver are set");
            ctx.send(request);
            self.stats.lock().retries += 1;
            if let Some(m) = &self.metrics {
                m.retries.inc();
            }
        }
        for task in exhausted {
            if self.escalated.insert(task.task_id.clone()) {
                self.escalate(
                    "task-retry-exhausted",
                    &task.partition,
                    format!(
                        "task {} exhausted {} retries on its container; re-brokering",
                        task.task_id, cfg.backoff.max_retries
                    ),
                    ctx,
                );
            }
            to_reaward.push(task);
        }

        // 4. Re-award reclaimed tasks, then whatever was parked.
        for task in to_reaward {
            self.reaward(task, ctx);
        }
        let parked = std::mem::take(&mut self.parked);
        for (task, is_reaward) in parked {
            if is_reaward {
                self.reaward(task, ctx);
            } else {
                self.assign_and_send(task, ctx);
            }
        }
        self.drain_breaker_transitions(now);
    }
}

impl Agent for ProcessorRootAgent {
    fn on_message(&mut self, message: &AclMessage, ctx: &mut AgentCtx<'_>) {
        // Completion reports. Only a report that clears an in-flight
        // entry counts: after a retry the same task may complete twice
        // (the original award and the retried request), and the second
        // report must not inflate the tally.
        if message.content().get("concept").and_then(Value::as_str) == Some("done") {
            if let Some(task_id) = message.content().get("task-id").and_then(Value::as_str) {
                if self.done_seen.contains(task_id) {
                    // Duplicate verdict: a retransmitted or duplicated
                    // `done`, or a stale award finishing after the task
                    // was already completed through a re-broker. Drop
                    // any matching ledger entry silently — the work is
                    // accounted for, re-awarding or re-counting it
                    // would break exactly-once accounting.
                    self.pending.retain(|p| p.task.task_id != task_id);
                    self.parked.retain(|(t, _)| t.task_id != task_id);
                    self.sync_outstanding();
                    return;
                }
                let mut cleared = None;
                self.pending.retain(|p| {
                    if p.task.task_id == task_id {
                        cleared = Some(p.container.clone());
                        false
                    } else {
                        true
                    }
                });
                // A verdict can also land while the task sits reclaimed
                // in the parked queue — its container was partitioned,
                // the answer arrived after the heal. Honor it instead
                // of re-awarding the finished work.
                if cleared.is_none() {
                    let before = self.parked.len();
                    self.parked.retain(|(t, _)| t.task_id != task_id);
                    if self.parked.len() < before {
                        cleared = Some(String::new());
                    }
                }
                if let Some(container) = cleared {
                    self.done_seen.insert(task_id.to_owned());
                    // A completed spill reports home: the origin root
                    // carries the task as outstanding until this lands.
                    if let Some((_, origin_root)) = self.spilled_in.remove(task_id) {
                        let report = AclMessage::builder(Performative::Inform)
                            .sender(ctx.self_id().clone())
                            .receiver(origin_root)
                            .ontology(MANAGEMENT_ONTOLOGY)
                            .content(federation::spill_done_content(task_id))
                            .build()
                            .expect("sender and receiver are set");
                        ctx.send(report);
                    }
                    let mut stats = self.stats.lock();
                    stats.completed += 1;
                    stats.completed_ids.push(task_id.to_owned());
                    drop(stats);
                    if let Some(m) = &self.metrics {
                        m.completed.inc();
                        // Closes the task's end-to-end span and feeds
                        // the latency histogram.
                        m.telemetry.task_done(task_id, ctx.now_ms());
                    }
                    // A completion is the breaker's success signal (a
                    // parked clear has no awarded container to credit).
                    if !container.is_empty() {
                        if let Some(breakers) = &mut self.breakers {
                            breakers.on_success(&container);
                        }
                    }
                    self.drain_breaker_transitions(ctx.now_ms());
                }
            }
            self.sync_outstanding();
            return;
        }
        // Federation traffic (sharded mode). An unfederated root never
        // receives these concepts; the guard keeps its hot path
        // untouched all the same.
        if self.federation.is_some() {
            if let Some(digest) = LoadDigest::parse(message.content()) {
                self.digests.insert(digest.shard, digest);
                return;
            }
            if let Some((origin_shard, task)) = federation::parse_spill(message.content()) {
                let origin_root = message.sender().clone();
                self.accept_spill(origin_shard, origin_root, task, ctx);
                self.sync_outstanding();
                return;
            }
            if let Some(task_id) = federation::parse_spill_done(message.content()) {
                if self.spilled_out.remove(task_id).is_some() {
                    // The peer ran our rejected task: record it done so
                    // a late duplicate cannot double-count, and take it
                    // off the outstanding set. Completion was counted
                    // at the peer — never here, or the federation total
                    // would double.
                    self.done_seen.insert(task_id.to_owned());
                    if let Some(link) = &self.federation {
                        link.stats.lock().spill_completed += 1;
                        if let Some(m) = &self.metrics {
                            m.telemetry.record_event(
                                ctx.now_ms(),
                                EventKind::SpillCompleted {
                                    task: task_id.to_owned(),
                                    origin_shard: link.shard,
                                },
                            );
                        }
                    }
                    self.sync_outstanding();
                }
                return;
            }
            if let Some((origin_shard, ts_ms, findings)) =
                federation::parse_summary(message.content())
            {
                self.accept_summary(origin_shard, ts_ms, findings);
                return;
            }
        }
        // Fresh-data notifications.
        let Some((_site, partitions)) = parse_data_ready(message.content()) else {
            return;
        };
        self.ready_seen += 1;
        // The collector's observation timestamp rides the data-ready
        // content ("ts"); it anchors each task span's end-to-end
        // latency at the moment the data was observed, not brokered.
        let observed_ms = message
            .content()
            .get("ts")
            .and_then(Value::as_int)
            .and_then(|ts| u64::try_from(ts).ok())
            .unwrap_or_else(|| ctx.now_ms());
        // Alternate level 1 and level 2 so consolidation happens on every
        // other pass over a partition.
        let level = if self.ready_seen.is_multiple_of(2) {
            2
        } else {
            1
        };
        for (partition, size) in partitions {
            let task = AnalysisTask::new(
                self.next_task_id(),
                partition.clone(),
                partition,
                level,
                size,
            );
            if let Some(m) = &self.metrics {
                m.telemetry
                    .task_created(&task.task_id, observed_ms, ctx.now_ms());
            }
            self.assign_and_send(task, ctx);
        }
        if self.ready_seen.is_multiple_of(CORRELATION_EVERY) {
            let task = AnalysisTask::new(self.next_task_id(), "correlation", "*", 3, 0);
            if let Some(m) = &self.metrics {
                m.telemetry
                    .task_created(&task.task_id, observed_ms, ctx.now_ms());
            }
            self.assign_and_send(task, ctx);
            // Cross-domain correlation rides the same cadence as the
            // level-3 sweep: publish our hottest devices to the peers.
            self.publish_summary(ctx);
        }
        self.drain_breaker_transitions(ctx.now_ms());
        self.sync_outstanding();
    }

    fn on_tick(&mut self, ctx: &mut AgentCtx<'_>) {
        // Federated roots gossip their load digest first, so peers
        // base this tick's spill decisions on fresh data.
        if self.federation.is_some() {
            self.gossip_digest(ctx);
        }
        if let Some(cfg) = self.recovery {
            self.recovery_tick(cfg, ctx);
            self.sync_outstanding();
            return;
        }
        // Legacy path: reassign tasks whose container vanished from the
        // directory (orderly kills only — silent crashes need the
        // recovery layer's heartbeat detection).
        let mut orphans = Vec::new();
        self.pending.retain_mut(|p| {
            p.ticks_outstanding += 1;
            let container_alive = ctx.df().container_profile(&p.container).is_some();
            if p.ticks_outstanding >= REASSIGN_AFTER_TICKS && !container_alive {
                orphans.push(p.task.clone());
                false
            } else {
                true
            }
        });
        for task in orphans {
            self.stats.lock().reassigned += 1;
            if let Some(m) = &self.metrics {
                m.reassigned.inc();
            }
            self.assign_and_send(task, ctx);
        }
        self.sync_outstanding();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::KnowledgeCapacityIdle;
    use agentgrid_acl::ontology::{FromContent, ResourceProfile};
    use agentgrid_acl::AgentId;
    use agentgrid_platform::DirectoryFacilitator;
    use std::collections::BTreeMap;

    fn df_with_containers(names: &[&str]) -> DirectoryFacilitator {
        let mut df = DirectoryFacilitator::new();
        for name in names {
            df.register_container(ResourceProfile::new(
                *name,
                1.0,
                1.0,
                1024,
                ["cpu", "disk", "correlation"],
            ));
            df.register_service(
                AgentId::new(format!("analyzer-{name}@g")),
                "analysis",
                [*name],
            );
        }
        df
    }

    fn data_ready_msg(partitions: &[(&str, u64)]) -> AclMessage {
        let mut map = BTreeMap::new();
        for (p, s) in partitions {
            map.insert((*p).to_owned(), *s);
        }
        let content = crate::grid::classifier::data_ready_content("hq", &map, 0);
        AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("clg@g"))
            .receiver(AgentId::new("pg-root@g"))
            .content(content)
            .build()
            .unwrap()
    }

    #[test]
    fn data_ready_produces_one_task_per_partition() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1", "pg-2"]);
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&data_ready_msg(&[("cpu", 10), ("disk", 5)]), &mut ctx);
        drop(ctx);
        let stats = stats.lock();
        assert_eq!(stats.assignments.len(), 2);
        assert_eq!(outbox.len(), 2);
        // Projected load spread the two tasks over both containers.
        let containers: Vec<&str> = stats.assignments.iter().map(|(_, c)| c.as_str()).collect();
        assert!(containers.contains(&"pg-1") && containers.contains(&"pg-2"));
    }

    #[test]
    fn every_third_notification_adds_a_correlation_sweep() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1"]);
        for _ in 0..3 {
            let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
            root.on_message(&data_ready_msg(&[("cpu", 1)]), &mut ctx);
        }
        // 3 partition tasks + 1 correlation task.
        assert_eq!(stats.lock().assignments.len(), 4);
        let last = AnalysisTask::from_content(outbox.last().unwrap().content()).unwrap();
        assert_eq!(last.level, 3);
        assert_eq!(last.skill, "correlation");
    }

    #[test]
    fn levels_alternate_between_notifications() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1"]);
        for _ in 0..2 {
            let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
            root.on_message(&data_ready_msg(&[("cpu", 1)]), &mut ctx);
        }
        let levels: Vec<u8> = outbox
            .iter()
            .map(|m| AnalysisTask::from_content(m.content()).unwrap().level)
            .collect();
        assert_eq!(levels, [1, 2]);
    }

    #[test]
    fn missing_skill_counts_unassigned() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1"]);
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&data_ready_msg(&[("memory", 1)]), &mut ctx);
        drop(ctx);
        assert_eq!(stats.lock().unassigned, 1);
        assert!(outbox.is_empty());
    }

    #[test]
    fn done_report_clears_pending() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1"]);
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&data_ready_msg(&[("cpu", 1)]), &mut ctx);
        drop(ctx);
        assert_eq!(root.pending.len(), 1);
        let done = AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("analyzer-pg-1@g"))
            .receiver(id.clone())
            .content(Value::map([
                ("concept", Value::symbol("done")),
                ("task-id", Value::from("t1")),
                ("findings", Value::Int(0)),
            ]))
            .build()
            .unwrap();
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&done, &mut ctx);
        assert!(root.pending.is_empty());
        assert_eq!(stats.lock().completed, 1);
    }

    #[test]
    fn heartbeat_death_reclaims_and_reawards_exactly_once() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        root.set_recovery(RecoveryConfig::default(), Some(AgentId::new("iface@g")));
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1", "pg-2"]);
        // Force assignment to pg-1 by overloading pg-2.
        df.update_load("pg-2", 0.99);
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&data_ready_msg(&[("cpu", 1)]), &mut ctx);
        drop(ctx);
        assert_eq!(stats.lock().assignments, [("t1".into(), "pg-1".into())]);

        // pg-1 silently stops heartbeating; pg-2 stays alive.
        df.update_load("pg-2", 0.0);
        let dead_at = RecoveryConfig::default().liveness.dead_after_ms;
        df.record_heartbeat("pg-2", dead_at);
        let mut ctx = AgentCtx::new(&id, "root-ct", dead_at, &mut outbox, &mut df);
        root.on_tick(&mut ctx);
        drop(ctx);

        // The dead container left the directory, its task moved to the
        // survivor exactly once, and one death alert escalated.
        assert!(df.container_profile("pg-1").is_none());
        assert!(df.providers_with("analysis", "pg-1").next().is_none());
        let stats = stats.lock();
        assert_eq!(
            stats.assignments,
            [("t1".into(), "pg-1".into()), ("t1".into(), "pg-2".into())]
        );
        assert_eq!(stats.rebrokered, ["t1"]);
        assert_eq!(stats.reassigned, 1);
        assert_eq!(stats.escalations, 1);
        let alert = outbox
            .iter()
            .find(|m| m.receivers() == [AgentId::new("iface@g")])
            .expect("death alert escalated to the interface");
        assert_eq!(
            alert.content().get("rule").and_then(Value::as_str),
            Some("container-dead")
        );
    }

    #[test]
    fn deadline_retries_then_escalates_and_rebrokers() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let cfg = RecoveryConfig {
            backoff: crate::recovery::BackoffPolicy {
                base_ms: 10,
                factor: 2,
                max_ms: 40,
                max_retries: 2,
                jitter_seed: 1,
            },
            ..RecoveryConfig::default()
        };
        root.set_recovery(cfg, Some(AgentId::new("iface@g")));
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1"]);
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&data_ready_msg(&[("cpu", 1)]), &mut ctx);
        drop(ctx);
        assert_eq!(outbox.len(), 1);

        // Ticks 100 ms apart: every deadline (≤ 50 ms with jitter) has
        // passed, so the two budgeted retries fire, then escalation.
        for step in 1..=2u64 {
            let now = step * 100;
            df.record_heartbeat("pg-1", now);
            let mut ctx = AgentCtx::new(&id, "root-ct", now, &mut outbox, &mut df);
            root.on_tick(&mut ctx);
            assert_eq!(stats.lock().retries, step);
        }
        df.record_heartbeat("pg-1", 300);
        let mut ctx = AgentCtx::new(&id, "root-ct", 300, &mut outbox, &mut df);
        root.on_tick(&mut ctx);
        drop(ctx);

        let stats = stats.lock();
        assert_eq!(stats.retries, 2, "retry budget is bounded");
        assert_eq!(stats.escalations, 1);
        assert_eq!(stats.rebrokered, ["t1"], "exhausted task re-brokered");
        assert_eq!(stats.assignments.len(), 2);
        let alert = outbox
            .iter()
            .find(|m| {
                m.content().get("rule").and_then(Value::as_str) == Some("task-retry-exhausted")
            })
            .expect("exhaustion alert escalated");
        assert_eq!(alert.receivers(), [AgentId::new("iface@g")]);
    }

    #[test]
    fn unawardable_task_parks_until_capacity_returns() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        root.set_recovery(RecoveryConfig::default(), None);
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = DirectoryFacilitator::new();
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&data_ready_msg(&[("cpu", 1)]), &mut ctx);
        drop(ctx);
        // Nowhere to run the task: parked, not dropped, not unassigned.
        assert_eq!(stats.lock().unassigned, 0);
        assert!(stats.lock().assignments.is_empty());
        let mut ctx = AgentCtx::new(&id, "root-ct", 60_000, &mut outbox, &mut df);
        root.on_tick(&mut ctx);
        drop(ctx);
        assert!(stats.lock().assignments.is_empty(), "still no capacity");

        // A capable container joins: the parked task is awarded.
        let mut df2 = df_with_containers(&["pg-1"]);
        df2.record_heartbeat("pg-1", 120_000);
        let mut ctx = AgentCtx::new(&id, "root-ct", 120_000, &mut outbox, &mut df2);
        root.on_tick(&mut ctx);
        let stats = stats.lock();
        assert_eq!(stats.assignments, [("t1".into(), "pg-1".into())]);
        assert!(stats.rebrokered.is_empty(), "a first award, not a re-award");
    }

    fn done_msg(task_id: &str, from: &str, to: &AgentId) -> AclMessage {
        AclMessage::builder(Performative::Inform)
            .sender(AgentId::new(from))
            .receiver(to.clone())
            .content(Value::map([
                ("concept", Value::symbol("done")),
                ("task-id", Value::from(task_id)),
                ("findings", Value::Int(0)),
            ]))
            .build()
            .unwrap()
    }

    #[test]
    fn quarantined_container_is_suspect_not_dead() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        root.set_recovery(RecoveryConfig::default(), Some(AgentId::new("iface@g")));
        let quarantine = Arc::new(Mutex::new(BTreeMap::new()));
        root.set_quarantine(Arc::clone(&quarantine));
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1", "pg-2"]);
        df.update_load("pg-2", 0.99);
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&data_ready_msg(&[("cpu", 1)]), &mut ctx);
        drop(ctx);
        assert_eq!(stats.lock().assignments, [("t1".into(), "pg-1".into())]);

        // pg-1 goes silent long enough to classify Dead, but it is
        // quarantined (partitioned): it must stay Suspect — directory
        // entry intact, ledger intact, no death escalation.
        quarantine.lock().insert("pg-1".to_owned(), u64::MAX);
        df.update_load("pg-2", 0.0);
        let dead_at = RecoveryConfig::default().liveness.dead_after_ms;
        df.record_heartbeat("pg-2", dead_at);
        let mut ctx = AgentCtx::new(&id, "root-ct", dead_at, &mut outbox, &mut df);
        root.on_tick(&mut ctx);
        drop(ctx);
        assert!(df.container_profile("pg-1").is_some(), "not deregistered");
        assert!(root.suspect.contains("pg-1"), "pinned to Suspect");
        assert_eq!(stats.lock().escalations, 0, "no container-dead alert");

        // Quarantine expired (healed + grace elapsed): normal liveness
        // classification resumes and the stale container dies for real.
        quarantine.lock().insert("pg-1".to_owned(), dead_at);
        df.record_heartbeat("pg-2", 2 * dead_at);
        let mut ctx = AgentCtx::new(&id, "root-ct", 2 * dead_at, &mut outbox, &mut df);
        root.on_tick(&mut ctx);
        drop(ctx);
        assert!(df.container_profile("pg-1").is_none(), "now reclaimed");
        assert_eq!(stats.lock().escalations, 1);
    }

    #[test]
    fn duplicate_done_counts_exactly_once() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1"]);
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&data_ready_msg(&[("cpu", 1)]), &mut ctx);
        drop(ctx);
        let done = done_msg("t1", "analyzer-pg-1@g", &id);
        for _ in 0..3 {
            let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
            root.on_message(&done, &mut ctx);
        }
        let stats = stats.lock();
        assert_eq!(stats.completed, 1, "duplicated verdicts count once");
        assert_eq!(stats.completed_ids, ["t1"]);
    }

    #[test]
    fn late_done_for_parked_task_completes_without_reaward() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        root.set_recovery(RecoveryConfig::default(), None);
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1"]);
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&data_ready_msg(&[("cpu", 1)]), &mut ctx);
        drop(ctx);
        // Simulate a reclaim: the award moves from in-flight to parked
        // (as when its container was declared dead mid-partition).
        let reclaimed = root.pending.remove(0).task;
        root.parked.push((reclaimed, true));
        // The old container's verdict finally gets through (heal): the
        // parked task completes — no re-award, no double count.
        let done = done_msg("t1", "analyzer-pg-1@g", &id);
        let mut ctx = AgentCtx::new(&id, "root-ct", 60_000, &mut outbox, &mut df);
        root.on_message(&done, &mut ctx);
        drop(ctx);
        assert!(root.parked.is_empty(), "parked entry cleared by the done");
        df.record_heartbeat("pg-1", 120_000);
        let mut ctx = AgentCtx::new(&id, "root-ct", 120_000, &mut outbox, &mut df);
        root.on_tick(&mut ctx);
        drop(ctx);
        let stats = stats.lock();
        assert_eq!(stats.completed, 1);
        assert!(
            stats.rebrokered.is_empty(),
            "finished work is not re-awarded"
        );
        assert_eq!(stats.assignments.len(), 1);
    }

    /// Wires a root into a test federation, returning its store and
    /// federation-stats handles.
    fn federate(
        root: &mut ProcessorRootAgent,
        shard: usize,
        peers: &[(usize, &str)],
    ) -> (Arc<Mutex<ManagementStore>>, Arc<Mutex<FederationStats>>) {
        let store = Arc::new(Mutex::new(ManagementStore::new(
            agentgrid_store::Classifier::standard(),
        )));
        let stats = Arc::new(Mutex::new(FederationStats::default()));
        root.set_federation(FederationLink {
            shard,
            peers: peers
                .iter()
                .map(|(s, id)| (*s, AgentId::new(*id)))
                .collect(),
            service: federation::shard_service(shard),
            store: Arc::clone(&store),
            stats: Arc::clone(&stats),
        });
        (store, stats)
    }

    /// Containers whose analyzers carry both the global and the
    /// shard-scoped directory registration, as the sharded builder
    /// wires them.
    fn df_with_shard_containers(shard: usize, names: &[&str]) -> DirectoryFacilitator {
        let mut df = DirectoryFacilitator::new();
        for name in names {
            df.register_container(ResourceProfile::new(
                *name,
                1.0,
                1.0,
                1024,
                ["cpu", "disk", "correlation"],
            ));
            let agent = AgentId::new(format!("analyzer-{name}@g"));
            df.register_service(agent.clone(), "analysis", [*name]);
            df.register_service(agent, federation::shard_service(shard), [*name]);
        }
        df
    }

    #[test]
    fn unawardable_task_spills_to_peer_and_spill_done_closes_it() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let (_store, fstats) = federate(&mut root, 0, &[(1, "pg-root-s1@g")]);
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root-s0@g");
        let mut outbox = Vec::new();
        // No local capacity at all: the task must cross the boundary.
        let mut df = DirectoryFacilitator::new();
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&data_ready_msg(&[("cpu", 1)]), &mut ctx);
        drop(ctx);
        assert_eq!(fstats.lock().spilled_out, 1);
        let spill = outbox.last().unwrap();
        assert_eq!(spill.receivers(), [AgentId::new("pg-root-s1@g")]);
        let (origin, task) = federation::parse_spill(spill.content()).unwrap();
        assert_eq!(origin, 0);
        assert_eq!(task.task_id, "s0-t1", "shard-qualified id");
        // Still outstanding at the origin — a lost spill is visible.
        assert_eq!(stats.lock().outstanding, ["s0-t1"]);
        assert_eq!(stats.lock().created, 1);

        // The peer's completion report closes it exactly once, even
        // when the reliability layer duplicates it.
        let done = AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("pg-root-s1@g"))
            .receiver(id.clone())
            .content(federation::spill_done_content("s0-t1"))
            .build()
            .unwrap();
        for _ in 0..2 {
            let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
            root.on_message(&done, &mut ctx);
        }
        assert_eq!(fstats.lock().spill_completed, 1);
        assert!(stats.lock().outstanding.is_empty());
        assert_eq!(stats.lock().completed, 0, "completion counts at the peer");
    }

    #[test]
    fn spilled_in_task_runs_locally_and_reports_home() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let (_store, fstats) = federate(&mut root, 1, &[(0, "pg-root-s0@g")]);
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root-s1@g");
        let mut outbox = Vec::new();
        let mut df = df_with_shard_containers(1, &["pg-1"]);
        let task = AnalysisTask::new("s0-t1", "cpu", "cpu", 1, 1);
        let spill = AclMessage::builder(Performative::Request)
            .sender(AgentId::new("pg-root-s0@g"))
            .receiver(id.clone())
            .content(federation::spill_content(0, &task))
            .build()
            .unwrap();
        // A duplicated spill runs once.
        for _ in 0..2 {
            let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
            root.on_message(&spill, &mut ctx);
        }
        assert_eq!(fstats.lock().spilled_in, 1);
        assert_eq!(stats.lock().assignments, [("s0-t1".into(), "pg-1".into())]);
        assert_eq!(stats.lock().created, 0, "created counts at the origin");

        let done = done_msg("s0-t1", "analyzer-pg-1@g", &id);
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&done, &mut ctx);
        drop(ctx);
        assert_eq!(stats.lock().completed, 1, "the running shard owns it");
        let report = outbox.last().unwrap();
        assert_eq!(report.receivers(), [AgentId::new("pg-root-s0@g")]);
        assert_eq!(
            federation::parse_spill_done(report.content()),
            Some("s0-t1")
        );
    }

    #[test]
    fn spill_targets_the_least_loaded_peer_from_gossip() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        federate(&mut root, 0, &[(1, "pg-root-s1@g"), (2, "pg-root-s2@g")]);
        let id = AgentId::new("pg-root-s0@g");
        let mut outbox = Vec::new();
        let mut df = DirectoryFacilitator::new();
        for (shard, peer, load) in [(1usize, "pg-root-s1@g", 900), (2, "pg-root-s2@g", 50)] {
            let digest = LoadDigest {
                shard,
                load_milli: load,
                outstanding: 0,
            };
            let msg = AclMessage::builder(Performative::Inform)
                .sender(AgentId::new(peer))
                .receiver(id.clone())
                .content(digest.to_content())
                .build()
                .unwrap();
            let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
            root.on_message(&msg, &mut ctx);
        }
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&data_ready_msg(&[("cpu", 1)]), &mut ctx);
        drop(ctx);
        assert_eq!(
            outbox.last().unwrap().receivers(),
            [AgentId::new("pg-root-s2@g")],
            "gossip steers the spill to the lighter shard"
        );
    }

    #[test]
    fn fed_summary_injects_aliased_records_once() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let (store, fstats) = federate(&mut root, 0, &[(1, "pg-root-s1@g")]);
        let id = AgentId::new("pg-root-s0@g");
        let mut outbox = Vec::new();
        let mut df = DirectoryFacilitator::new();
        let findings = vec![("site-1-dev0".to_owned(), "cpu.load.1".to_owned(), 97.0)];
        let msg = AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("pg-root-s1@g"))
            .receiver(id.clone())
            .content(federation::summary_content(1, 60_000, &findings))
            .build()
            .unwrap();
        // The second delivery carries the same timestamp: stale, dropped.
        for _ in 0..2 {
            let mut ctx = AgentCtx::new(&id, "root-ct", 60_000, &mut outbox, &mut df);
            root.on_message(&msg, &mut ctx);
        }
        assert_eq!(fstats.lock().summaries_received, 1);
        assert_eq!(fstats.lock().injected_findings, 1);
        assert_eq!(
            store.lock().latest("fed-s1:site-1-dev0", "cpu.load.1"),
            Some((60_000, 97.0)),
            "peer finding lands under the federation alias"
        );
    }

    #[test]
    fn tick_gossips_a_load_digest_to_every_peer() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        federate(&mut root, 2, &[(0, "pg-root-s0@g"), (1, "pg-root-s1@g")]);
        let id = AgentId::new("pg-root-s2@g");
        let mut outbox = Vec::new();
        let mut df = df_with_shard_containers(2, &["pg-1"]);
        df.update_load("pg-1", 0.25);
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_tick(&mut ctx);
        drop(ctx);
        let digests: Vec<LoadDigest> = outbox
            .iter()
            .filter_map(|m| LoadDigest::parse(m.content()))
            .collect();
        assert_eq!(digests.len(), 2, "one digest per peer");
        assert_eq!(
            digests[0],
            LoadDigest {
                shard: 2,
                load_milli: 250,
                outstanding: 0
            }
        );
    }

    #[test]
    fn dead_container_triggers_reassignment() {
        let mut root = ProcessorRootAgent::new(Box::new(KnowledgeCapacityIdle));
        let stats = root.stats_handle();
        let id = AgentId::new("pg-root@g");
        let mut outbox = Vec::new();
        let mut df = df_with_containers(&["pg-1", "pg-2"]);
        // Force assignment to pg-1 by overloading pg-2.
        df.update_load("pg-2", 0.99);
        let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
        root.on_message(&data_ready_msg(&[("cpu", 1)]), &mut ctx);
        drop(ctx);
        assert_eq!(stats.lock().assignments[0].1, "pg-1");
        // pg-1 dies before reporting done.
        df.deregister_container("pg-1");
        df.update_load("pg-2", 0.0);
        for _ in 0..REASSIGN_AFTER_TICKS {
            let mut ctx = AgentCtx::new(&id, "root-ct", 0, &mut outbox, &mut df);
            root.on_tick(&mut ctx);
        }
        let stats = stats.lock();
        assert_eq!(stats.reassigned, 1);
        assert_eq!(stats.assignments.last().unwrap().1, "pg-2");
    }
}
