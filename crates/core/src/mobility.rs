//! Mobility-based rebalancing (paper §5, future work): "agent mobility
//! allows for a migration of analysis activities attributed to them,
//! improving the utilization of resources".
//!
//! The [`Rebalancer`] watches the directory's container loads. When a
//! container running an analyzer is overloaded and a *spare* container
//! (one with a registered resource profile but no analysis agent) is
//! available, it migrates the analyzer — live, with its knowledge base
//! and counters — to the spare, re-registers its `analysis` service
//! under the new container, and seeds the directory loads so brokering
//! immediately follows the move.

use agentgrid_acl::AgentId;
use agentgrid_platform::Platform;

/// One migration decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Migration {
    /// The analyzer that moved.
    pub agent: AgentId,
    /// Container it left.
    pub from: String,
    /// Container it joined.
    pub to: String,
}

/// Migrates analyzers off overloaded containers onto idle spares.
#[derive(Debug, Clone, Copy)]
pub struct Rebalancer {
    /// Load above which a container is considered overloaded.
    pub high_watermark: f64,
    /// Load below which a target container is considered idle.
    pub low_watermark: f64,
}

impl Default for Rebalancer {
    fn default() -> Self {
        Rebalancer {
            high_watermark: 0.75,
            low_watermark: 0.25,
        }
    }
}

impl Rebalancer {
    /// Examines the platform and performs at most one migration per
    /// overloaded container. Returns the decisions taken.
    pub fn rebalance(&self, platform: &mut Platform) -> Vec<Migration> {
        // Snapshot: (container, load, has_analyzer, analyzer id).
        let mut overloaded: Vec<(String, AgentId)> = Vec::new();
        let mut spares: Vec<(String, f64)> = Vec::new();
        for profile in platform.df().container_profiles() {
            let provider = platform
                .df()
                .providers_with("analysis", &profile.container)
                .next()
                .cloned();
            match provider {
                Some(agent) if profile.load >= self.high_watermark => {
                    overloaded.push((profile.container.clone(), agent));
                }
                // A registered container with no analyzer = spare
                // capacity, but only if the platform actually has it.
                None if profile.load <= self.low_watermark
                    && platform.container(&profile.container).is_some() =>
                {
                    spares.push((profile.container.clone(), profile.load));
                }
                _ => {}
            }
        }
        // Most idle spares first.
        spares.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

        let mut migrations = Vec::new();
        for (from, agent) in overloaded {
            let Some((to, _)) = spares.pop() else {
                break;
            };
            if platform.migrate(&agent, &to).is_err() {
                continue;
            }
            // Re-register the service under the new container and move
            // the load figure with the agent.
            platform.df_mut().deregister(&agent);
            platform
                .df_mut()
                .register_service(agent.clone(), "analysis", [to.clone()]);
            let old_load = platform
                .df()
                .container_profile(&from)
                .map(|p| p.load)
                .unwrap_or(0.0);
            platform.df_mut().update_load(&to, old_load.min(0.5));
            platform.df_mut().update_load(&from, 0.0);
            migrations.push(Migration { agent, from, to });
        }
        migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentgrid_acl::ontology::ResourceProfile;
    use agentgrid_platform::Agent;

    struct Analyzer;
    impl Agent for Analyzer {}

    fn platform_with_loads(busy_load: f64, spare_load: f64) -> (Platform, AgentId) {
        let mut p = Platform::new("g");
        p.add_container("busy").add_container("spare");
        let agent = p.spawn("busy", "analyzer-busy", Analyzer).unwrap();
        let mut busy = ResourceProfile::new("busy", 1.0, 1.0, 1024, ["cpu"]);
        busy.load = busy_load;
        let mut spare = ResourceProfile::new("spare", 2.0, 1.0, 4096, ["cpu"]);
        spare.load = spare_load;
        p.df_mut().register_container(busy);
        p.df_mut().register_container(spare);
        p.df_mut()
            .register_service(agent.clone(), "analysis", ["busy"]);
        (p, agent)
    }

    #[test]
    fn overloaded_analyzer_migrates_to_spare() {
        let (mut p, agent) = platform_with_loads(0.9, 0.0);
        let migrations = Rebalancer::default().rebalance(&mut p);
        assert_eq!(migrations.len(), 1);
        assert_eq!(
            migrations[0],
            Migration {
                agent: agent.clone(),
                from: "busy".to_owned(),
                to: "spare".to_owned(),
            }
        );
        assert_eq!(p.find_agent(&agent), Some("spare"));
        // Service re-registered under the new container.
        assert_eq!(
            p.df().providers_with("analysis", "spare").next(),
            Some(&agent)
        );
        assert!(p.df().providers_with("analysis", "busy").next().is_none());
        // The old container's load was reset.
        assert_eq!(p.df().container_profile("busy").unwrap().load, 0.0);
    }

    #[test]
    fn no_migration_below_watermark() {
        let (mut p, agent) = platform_with_loads(0.5, 0.0);
        assert!(Rebalancer::default().rebalance(&mut p).is_empty());
        assert_eq!(p.find_agent(&agent), Some("busy"));
    }

    #[test]
    fn no_migration_without_idle_spare() {
        let (mut p, _) = platform_with_loads(0.9, 0.6);
        assert!(Rebalancer::default().rebalance(&mut p).is_empty());
    }

    #[test]
    fn spare_without_platform_container_is_ignored() {
        let (mut p, _) = platform_with_loads(0.9, 0.0);
        // Register a phantom container profile with no real container.
        p.df_mut()
            .register_container(ResourceProfile::new("ghost", 9.0, 1.0, 1, ["cpu"]));
        let migrations = Rebalancer::default().rebalance(&mut p);
        assert_eq!(migrations.len(), 1);
        assert_eq!(migrations[0].to, "spare", "ghost must not be chosen");
    }

    #[test]
    fn custom_watermarks_are_honoured() {
        let (mut p, _) = platform_with_loads(0.6, 0.0);
        let aggressive = Rebalancer {
            high_watermark: 0.5,
            low_watermark: 0.3,
        };
        assert_eq!(aggressive.rebalance(&mut p).len(), 1);
    }
}
