//! Deterministic chaos schedules for recovery testing.
//!
//! A [`ChaosPlan`] is a seeded, simulated-time-driven schedule of
//! container crashes, restarts and transport-fault windows. The grid
//! applies due actions at the top of each tick, so the same plan
//! produces the same failure sequence on the deterministic runtime and
//! the threaded runtime — no wall clocks, no global RNG.
//!
//! # Examples
//!
//! Hand-written plan: crash an analyzer two minutes in, bring it back at
//! minute five.
//!
//! ```
//! use agentgrid::chaos::ChaosPlan;
//!
//! let plan = ChaosPlan::new()
//!     .crash_at(2 * 60_000, "pg-1")
//!     .restart_at(5 * 60_000, "pg-1");
//! assert_eq!(plan.len(), 2);
//! ```
//!
//! Seeded plan: the schedule is a pure function of the seed.
//!
//! ```
//! use agentgrid::chaos::ChaosPlan;
//!
//! let a = ChaosPlan::seeded(42, &["pg-1".into(), "pg-2".into()], 20 * 60_000);
//! let b = ChaosPlan::seeded(42, &["pg-1".into(), "pg-2".into()], 20 * 60_000);
//! assert_eq!(a, b);
//! ```

use agentgrid_acl::AgentId;
use agentgrid_platform::{LinkFaults, LinkSelector, TransportFault};

use crate::recovery::splitmix64;

/// One scheduled failure (or repair) event.
///
/// Fault windows are **composable**: `SetFault` adds to the active
/// fault set (union semantics — any matching fault drops the leg), and
/// a window closes with [`ClearFaultScoped`](Self::ClearFaultScoped)
/// without healing the others. The blanket
/// [`ClearFault`](Self::ClearFault) still heals everything at once.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosAction {
    /// Silent crash: the container vanishes, the directory keeps its
    /// stale entries — only heartbeat staleness reveals the death.
    Crash(String),
    /// The container rejoins the grid with fresh analyzer agents.
    Restart(String),
    /// A transport fault window opens (joins the composable set).
    SetFault(TransportFault),
    /// The transport heals completely: every open fault window closes.
    ClearFault,
    /// Exactly this fault clears; other open windows stay in force.
    ClearFaultScoped(TransportFault),
    /// A per-link fault window (probabilistic drop, delay, duplication,
    /// reordering) opens under this selector.
    LinkFaultsOpen(LinkSelector, LinkFaults),
    /// Every per-link window opened under exactly this selector closes.
    LinkFaultsClear(LinkSelector),
    /// A named partition opens: containers in different groups can no
    /// longer exchange messages (containers in no group are unaffected).
    PartitionOpen(String, Vec<Vec<String>>),
    /// The named partition heals.
    PartitionHeal(String),
}

/// A sorted schedule of [`ChaosAction`]s against simulated time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosPlan {
    /// `(due_ms, action)`, kept sorted by time (stable for equal times:
    /// insertion order breaks ties, so plans replay identically).
    events: Vec<(u64, ChaosAction)>,
}

impl ChaosPlan {
    /// An empty plan.
    pub fn new() -> Self {
        ChaosPlan::default()
    }

    fn push(mut self, at_ms: u64, action: ChaosAction) -> Self {
        let idx = self.events.partition_point(|(t, _)| *t <= at_ms);
        self.events.insert(idx, (at_ms, action));
        self
    }

    /// Schedules a silent crash of `container` at `at_ms`.
    pub fn crash_at(self, at_ms: u64, container: impl Into<String>) -> Self {
        self.push(at_ms, ChaosAction::Crash(container.into()))
    }

    /// Schedules a restart of `container` at `at_ms`.
    pub fn restart_at(self, at_ms: u64, container: impl Into<String>) -> Self {
        self.push(at_ms, ChaosAction::Restart(container.into()))
    }

    /// Schedules a window `[from_ms, until_ms)` during which messages
    /// **to** `agent` are dropped silently. The close is the blanket
    /// [`ChaosAction::ClearFault`] (legacy behaviour, kept so existing
    /// seeded schedules replay identically); overlapping windows should
    /// use [`drop_to_between_scoped`](Self::drop_to_between_scoped).
    pub fn drop_to_between(self, from_ms: u64, until_ms: u64, agent: AgentId) -> Self {
        self.push(
            from_ms,
            ChaosAction::SetFault(TransportFault::DropTo(agent)),
        )
        .push(until_ms, ChaosAction::ClearFault)
    }

    /// Schedules a drop-to window `[from_ms, until_ms)` whose close
    /// removes exactly this fault, leaving other open windows in force
    /// — the composable form of
    /// [`drop_to_between`](Self::drop_to_between).
    pub fn drop_to_between_scoped(self, from_ms: u64, until_ms: u64, agent: AgentId) -> Self {
        self.push(
            from_ms,
            ChaosAction::SetFault(TransportFault::DropTo(agent.clone())),
        )
        .push(
            until_ms,
            ChaosAction::ClearFaultScoped(TransportFault::DropTo(agent)),
        )
    }

    /// Schedules a per-link fault window `[from_ms, until_ms)` under
    /// `selector`. The close clears exactly that selector's rules, so
    /// overlapping windows compose (union semantics while both are
    /// open).
    pub fn link_faults_between(
        self,
        from_ms: u64,
        until_ms: u64,
        selector: LinkSelector,
        faults: LinkFaults,
    ) -> Self {
        self.push(
            from_ms,
            ChaosAction::LinkFaultsOpen(selector.clone(), faults),
        )
        .push(until_ms, ChaosAction::LinkFaultsClear(selector))
    }

    /// Schedules a named partition over `[from_ms, until_ms)`:
    /// containers in different `groups` cannot exchange messages until
    /// the heal.
    pub fn partition_between(
        self,
        from_ms: u64,
        until_ms: u64,
        name: impl Into<String>,
        groups: Vec<Vec<String>>,
    ) -> Self {
        let name = name.into();
        self.push(from_ms, ChaosAction::PartitionOpen(name.clone(), groups))
            .push(until_ms, ChaosAction::PartitionHeal(name))
    }

    /// Generates a crash/restart (and possibly one transport-fault
    /// window) schedule as a pure function of `seed`, choosing victims
    /// among `containers` within `[0, horizon_ms)`.
    ///
    /// The generated shape is deliberately simple — one victim container
    /// crashed a few minutes in and restarted a few minutes later,
    /// optionally preceded by a drop-to window that strands in-flight
    /// work on the victim — because the point is reproducible recovery
    /// pressure, not adversarial scheduling.
    pub fn seeded(seed: u64, containers: &[String], horizon_ms: u64) -> Self {
        if containers.is_empty() || horizon_ms < 8 * 60_000 {
            return ChaosPlan::new();
        }
        let minute = 60_000;
        let r0 = splitmix64(seed);
        let victim = &containers[(r0 % containers.len() as u64) as usize];
        // Crash between minutes 2 and 5; restart 2–4 minutes later.
        let crash_ms = (2 + splitmix64(seed ^ 1) % 4) * minute;
        let restart_ms = crash_ms + (2 + splitmix64(seed ^ 2) % 3) * minute;
        let mut plan = ChaosPlan::new()
            .crash_at(crash_ms, victim.clone())
            .restart_at(
                restart_ms.min(horizon_ms.saturating_sub(2 * minute)),
                victim.clone(),
            );
        // Half the seeds also open a one-minute drop window to the
        // victim's analyzer right before the crash, so awards made in
        // that window are stranded in flight when the container dies.
        if splitmix64(seed ^ 3).is_multiple_of(2) {
            let agent = AgentId::new(format!("analyzer-{victim}@grid"));
            plan = plan.drop_to_between(crash_ms.saturating_sub(minute), crash_ms, agent);
        }
        plan
    }

    /// Generates a pure-**network** adversary schedule (no crashes) as a
    /// pure function of `seed`: a long loss+duplication window across
    /// every link, a delay+reorder window aimed at the seeded victim's
    /// analyzer, and one named partition separating the victim container
    /// from the rest of the grid, healed a few minutes later. Designed
    /// to run with the reliability layer on: the loss and partition
    /// windows force retransmissions, the duplication window forces
    /// dedup suppressions, and no task may be lost.
    pub fn seeded_net(seed: u64, containers: &[String], horizon_ms: u64) -> Self {
        if containers.is_empty() || horizon_ms < 10 * 60_000 {
            return ChaosPlan::new();
        }
        let minute = 60_000;
        let r0 = splitmix64(seed ^ 0x006e_6574);
        let victim = containers[(r0 % containers.len() as u64) as usize].clone();
        let rest: Vec<String> = containers
            .iter()
            .filter(|c| **c != victim)
            .cloned()
            .collect();
        let loss = LinkFaults {
            drop_ppm: (150_000 + splitmix64(seed ^ 1) % 100_000) as u32,
            duplicate_ppm: (100_000 + splitmix64(seed ^ 2) % 100_000) as u32,
            ..LinkFaults::default()
        };
        let churn = LinkFaults {
            delay_ms: 10_000 + splitmix64(seed ^ 3) % 50_000,
            delay_jitter_ms: 30_000,
            reorder_window: 4,
            ..LinkFaults::default()
        };
        let analyzer = AgentId::new(format!("analyzer-{victim}@grid"));
        let part_open = (3 + splitmix64(seed ^ 4) % 3) * minute;
        let part_heal = part_open + (3 + splitmix64(seed ^ 5) % 2) * minute;
        ChaosPlan::new()
            .link_faults_between(
                minute,
                horizon_ms.saturating_sub(2 * minute),
                LinkSelector::All,
                loss,
            )
            .link_faults_between(
                2 * minute,
                horizon_ms.saturating_sub(3 * minute),
                LinkSelector::To(analyzer),
                churn,
            )
            .partition_between(
                part_open,
                part_heal.min(horizon_ms.saturating_sub(3 * minute)),
                "seeded-net",
                vec![vec![victim], rest],
            )
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, sorted by due time.
    pub fn events(&self) -> &[(u64, ChaosAction)] {
        &self.events
    }

    /// Containers this plan ever crashes (victims need their specs kept
    /// around for restart).
    pub fn victims(&self) -> impl Iterator<Item = &str> {
        self.events.iter().filter_map(|(_, a)| match a {
            ChaosAction::Crash(c) => Some(c.as_str()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_stay_sorted_by_time() {
        let plan = ChaosPlan::new()
            .restart_at(300, "a")
            .crash_at(100, "a")
            .crash_at(200, "b");
        let times: Vec<u64> = plan.events().iter().map(|(t, _)| *t).collect();
        assert_eq!(times, [100, 200, 300]);
    }

    #[test]
    fn seeded_plans_are_pure_functions_of_the_seed() {
        let containers = vec!["pg-1".to_string(), "pg-2".to_string()];
        let horizon = 20 * 60_000;
        assert_eq!(
            ChaosPlan::seeded(7, &containers, horizon),
            ChaosPlan::seeded(7, &containers, horizon)
        );
        // Some nearby seed must differ (schedule actually uses the seed).
        assert!((0..10).any(|s| ChaosPlan::seeded(s, &containers, horizon)
            != ChaosPlan::seeded(7, &containers, horizon)));
    }

    #[test]
    fn seeded_plan_crashes_before_restarting() {
        for seed in 0..20 {
            let containers = vec!["pg-1".to_string()];
            let plan = ChaosPlan::seeded(seed, &containers, 20 * 60_000);
            let crash = plan
                .events()
                .iter()
                .find(|(_, a)| matches!(a, ChaosAction::Crash(_)))
                .map(|(t, _)| *t)
                .expect("seeded plan crashes someone");
            let restart = plan
                .events()
                .iter()
                .find(|(_, a)| matches!(a, ChaosAction::Restart(_)))
                .map(|(t, _)| *t)
                .expect("…and brings them back");
            assert!(crash < restart, "seed {seed}: {plan:?}");
        }
    }

    #[test]
    fn degenerate_inputs_yield_empty_plans() {
        assert!(ChaosPlan::seeded(1, &[], 20 * 60_000).is_empty());
        assert!(ChaosPlan::seeded(1, &["a".into()], 60_000).is_empty());
    }

    #[test]
    fn drop_window_opens_and_closes() {
        let plan = ChaosPlan::new().drop_to_between(100, 200, AgentId::new("x"));
        assert!(matches!(plan.events()[0], (100, ChaosAction::SetFault(_))));
        assert!(matches!(plan.events()[1], (200, ChaosAction::ClearFault)));
    }

    #[test]
    fn scoped_windows_close_only_their_own_fault() {
        let plan = ChaosPlan::new()
            .drop_to_between_scoped(100, 300, AgentId::new("x"))
            .drop_to_between_scoped(200, 400, AgentId::new("y"));
        // The close at 300 names exactly x's fault, so y's window
        // (200–400) survives it — the replace-semantics bug this fixes.
        let (t, close) = &plan.events()[2];
        assert_eq!(*t, 300);
        assert_eq!(
            close,
            &ChaosAction::ClearFaultScoped(TransportFault::DropTo(AgentId::new("x")))
        );
        assert!(matches!(
            plan.events()[3],
            (400, ChaosAction::ClearFaultScoped(_))
        ));
    }

    #[test]
    fn link_fault_and_partition_windows_pair_open_with_close() {
        let plan = ChaosPlan::new()
            .link_faults_between(
                100,
                200,
                LinkSelector::All,
                LinkFaults {
                    drop_ppm: 1,
                    ..LinkFaults::default()
                },
            )
            .partition_between(150, 250, "p", vec![vec!["a".into()], vec!["b".into()]]);
        assert!(matches!(
            plan.events()[0],
            (100, ChaosAction::LinkFaultsOpen(LinkSelector::All, _))
        ));
        assert!(matches!(
            plan.events()[1],
            (150, ChaosAction::PartitionOpen(..))
        ));
        assert!(matches!(
            plan.events()[2],
            (200, ChaosAction::LinkFaultsClear(LinkSelector::All))
        ));
        assert!(matches!(
            plan.events()[3],
            (250, ChaosAction::PartitionHeal(_))
        ));
    }

    #[test]
    fn seeded_net_is_deterministic_and_always_partitions() {
        let containers = vec!["pg-1".to_string(), "pg-2".to_string(), "cg-hq".to_string()];
        let horizon = 20 * 60_000;
        assert_eq!(
            ChaosPlan::seeded_net(9, &containers, horizon),
            ChaosPlan::seeded_net(9, &containers, horizon)
        );
        for seed in 0..16 {
            let plan = ChaosPlan::seeded_net(seed, &containers, horizon);
            let open = plan
                .events()
                .iter()
                .find_map(|(t, a)| matches!(a, ChaosAction::PartitionOpen(..)).then_some(*t))
                .expect("seeded net plans always partition");
            let heal = plan
                .events()
                .iter()
                .find_map(|(t, a)| matches!(a, ChaosAction::PartitionHeal(_)).then_some(*t))
                .expect("…and always heal");
            assert!(open < heal, "seed {seed}: {plan:?}");
            assert!(plan.victims().next().is_none(), "no crashes in net plans");
        }
        assert!(ChaosPlan::seeded_net(1, &[], horizon).is_empty());
    }
}
