//! The inter-grid federation protocol (sharded mode).
//!
//! A federated [`ManagementGrid`](crate::grid::ManagementGrid) is N peer
//! grids — each with its own root, directory scope, classifier, analyzer
//! tier and store — partitioned over the managed sites by
//! [`shard_of_site`]. The shards cooperate through exactly three message
//! families, all carried as ordinary ACL content so they ride the same
//! delivery, reliability and adversary machinery as every other message:
//!
//! * **`load-digest`** — each root gossips its shard's aggregate load
//!   and in-flight depth to every peer once per tick, so spill-over can
//!   pick the least-loaded peer without a global directory;
//! * **`spill`** / **`spill-done`** — when a shard's admission gate or
//!   broker turns a first award away, the task forwards to the
//!   least-loaded peer, which runs it as its own and reports completion
//!   back to the origin. The origin keeps the task in its outstanding
//!   set until the `spill-done` lands (a lost spill is *visible*, never
//!   silently dropped), and its `done_seen` ledger makes the completion
//!   exactly-once under duplication and retransmission;
//! * **`fed-summary`** — on the correlation cadence each root publishes
//!   its [`SUMMARY_TOP_K`] hottest devices as compact findings; peers
//!   inject them into their own stores under a [`fed_device`] alias so
//!   the existing level-3 rules (e.g. `correlated-cpu`) see cross-domain
//!   pairs without any rule or ontology change — summaries, not raw
//!   facts, cross the domain boundary.
//!
//! Everything here is a pure function of message content plus the
//! shard's own deterministic state, so federated runs stay bit-identical
//! across the deterministic stepper and the pool runtime.

use agentgrid_acl::ontology::{AnalysisTask, FromContent, ToContent};
use agentgrid_acl::Value;

/// How many hot devices a `fed-summary` carries.
pub const SUMMARY_TOP_K: usize = 4;

/// Deterministic site partitioner: sites (in sorted name order) are
/// dealt round-robin over the shards, so shard membership depends only
/// on the topology, never on timing.
pub fn shard_of_site(site_index: usize, shards: usize) -> usize {
    site_index % shards.max(1)
}

/// The shard-scoped directory service analyzers register beside the
/// global `"analysis"` entry, so each root brokers only over its own
/// tier while interface-grid broadcasts still reach every analyzer.
pub fn shard_service(shard: usize) -> String {
    format!("analysis-s{shard}")
}

/// Alias under which a peer shard's finding is stored locally; keeps
/// the metric name intact so [`facts_for`](crate::grid::facts_for)
/// produces the same fact family as a local observation.
pub fn fed_device(origin_shard: usize, device: &str) -> String {
    format!("fed-s{origin_shard}:{device}")
}

/// One gossiped per-shard load digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadDigest {
    /// Shard the digest describes.
    pub shard: usize,
    /// Mean analyzer load across the shard, in milli-units (integer so
    /// the wire encoding round-trips exactly).
    pub load_milli: i64,
    /// Tasks in flight or parked on the shard's root.
    pub outstanding: u64,
}

impl LoadDigest {
    /// Wire encoding.
    pub fn to_content(&self) -> Value {
        Value::map([
            ("concept", Value::symbol("load-digest")),
            ("shard", Value::Int(self.shard as i64)),
            ("load-milli", Value::Int(self.load_milli)),
            ("outstanding", Value::Int(self.outstanding as i64)),
        ])
    }

    /// Parses a digest; `None` for any other content.
    pub fn parse(content: &Value) -> Option<LoadDigest> {
        if content.get("concept").and_then(Value::as_str) != Some("load-digest") {
            return None;
        }
        Some(LoadDigest {
            shard: usize::try_from(content.get("shard")?.as_int()?).ok()?,
            load_milli: content.get("load-milli")?.as_int()?,
            outstanding: u64::try_from(content.get("outstanding")?.as_int()?).ok()?,
        })
    }
}

/// Wire encoding of a spill-over: the full task plus its origin shard.
pub fn spill_content(origin_shard: usize, task: &AnalysisTask) -> Value {
    Value::map([
        ("concept", Value::symbol("spill")),
        ("origin-shard", Value::Int(origin_shard as i64)),
        ("task", task.to_content()),
    ])
}

/// Parses a spill into `(origin shard, task)`.
pub fn parse_spill(content: &Value) -> Option<(usize, AnalysisTask)> {
    if content.get("concept").and_then(Value::as_str) != Some("spill") {
        return None;
    }
    let origin = usize::try_from(content.get("origin-shard")?.as_int()?).ok()?;
    let task = AnalysisTask::from_content(content.get("task")?).ok()?;
    Some((origin, task))
}

/// Wire encoding of a spill completion report back to the origin root.
pub fn spill_done_content(task_id: &str) -> Value {
    Value::map([
        ("concept", Value::symbol("spill-done")),
        ("task-id", Value::from(task_id)),
    ])
}

/// Parses a spill completion into the task id.
pub fn parse_spill_done(content: &Value) -> Option<&str> {
    if content.get("concept").and_then(Value::as_str) != Some("spill-done") {
        return None;
    }
    content.get("task-id").and_then(Value::as_str)
}

/// One compact finding inside a `fed-summary`: a hot device's latest
/// reading, `(device, metric, value)`.
pub type Finding = (String, String, f64);

/// Wire encoding of a cross-domain finding summary.
pub fn summary_content(shard: usize, ts_ms: u64, findings: &[Finding]) -> Value {
    let items = findings.iter().map(|(device, metric, value)| {
        Value::map([
            ("device", Value::from(device.as_str())),
            ("metric", Value::from(metric.as_str())),
            ("value", Value::Float(*value)),
        ])
    });
    Value::map([
        ("concept", Value::symbol("fed-summary")),
        ("shard", Value::Int(shard as i64)),
        ("ts", Value::Int(ts_ms as i64)),
        ("findings", Value::list(items)),
    ])
}

/// Parses a summary into `(origin shard, timestamp, findings)`.
pub fn parse_summary(content: &Value) -> Option<(usize, u64, Vec<Finding>)> {
    if content.get("concept").and_then(Value::as_str) != Some("fed-summary") {
        return None;
    }
    let shard = usize::try_from(content.get("shard")?.as_int()?).ok()?;
    let ts = u64::try_from(content.get("ts")?.as_int()?).ok()?;
    let mut findings = Vec::new();
    for item in content.get("findings")?.as_list()? {
        findings.push((
            item.get("device")?.as_str()?.to_owned(),
            item.get("metric")?.as_str()?.to_owned(),
            item.get("value")?.as_float()?,
        ));
    }
    Some((shard, ts, findings))
}

/// Federation counters one shard's root maintains; the grid facade sums
/// them across shards for the report's federation section.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FederationStats {
    /// Tasks this shard forwarded to a peer.
    pub spilled_out: u64,
    /// Tasks this shard accepted from a peer.
    pub spilled_in: u64,
    /// Spilled-out tasks whose `spill-done` landed back here.
    pub spill_completed: u64,
    /// `fed-summary` messages published to peers.
    pub summaries_sent: u64,
    /// `fed-summary` messages accepted (fresh, not stale duplicates).
    pub summaries_received: u64,
    /// Peer findings injected into the local store.
    pub injected_findings: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_deal_round_robin() {
        assert_eq!(shard_of_site(0, 4), 0);
        assert_eq!(shard_of_site(5, 4), 1);
        assert_eq!(shard_of_site(7, 1), 0);
        assert_eq!(shard_of_site(3, 0), 0, "degenerate shard count is safe");
    }

    #[test]
    fn load_digest_round_trips() {
        let digest = LoadDigest {
            shard: 2,
            load_milli: 417,
            outstanding: 9,
        };
        assert_eq!(LoadDigest::parse(&digest.to_content()), Some(digest));
        assert_eq!(
            LoadDigest::parse(&Value::map([("concept", Value::symbol("done"))])),
            None
        );
    }

    #[test]
    fn spill_round_trips_the_task() {
        let task = AnalysisTask::new("s0-t7", "cpu", "cpu", 2, 40);
        let content = spill_content(0, &task);
        let (origin, parsed) = parse_spill(&content).unwrap();
        assert_eq!(origin, 0);
        assert_eq!(parsed, task);
        assert_eq!(parse_spill_done(&content), None, "concepts are disjoint");
    }

    #[test]
    fn spill_done_round_trips() {
        assert_eq!(
            parse_spill_done(&spill_done_content("s1-t3")),
            Some("s1-t3")
        );
    }

    #[test]
    fn summary_round_trips_findings() {
        let findings = vec![
            ("site-0-dev2".to_owned(), "cpu.load.1".to_owned(), 97.5),
            ("site-0-dev0".to_owned(), "cpu.load.1".to_owned(), 91.0),
        ];
        let content = summary_content(3, 120_000, &findings);
        assert_eq!(parse_summary(&content), Some((3, 120_000, findings)));
    }

    #[test]
    fn fed_device_alias_keeps_the_metric_family() {
        assert_eq!(fed_device(1, "site-1-dev0"), "fed-s1:site-1-dev0");
    }
}
