//! The processor-grid root's task-division broker (paper Fig. 3).
//!
//! "The analysis grid root receives a message from the classifier grid
//! indicating that there is data to be analyzed and that this analysis
//! needs to be distributed among the containers of the grid." The broker
//! turns classified partitions into [`AnalysisTask`]s, consults the
//! directory's [`ResourceProfile`]s and a [`LoadBalancer`], and produces
//! an assignment — plus a human-readable trace reproducing the Fig. 3
//! exchange.

use std::fmt;

use agentgrid_acl::ontology::{AnalysisTask, ResourceProfile};

use crate::balance::LoadBalancer;

/// One task→container decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The task.
    pub task: AnalysisTask,
    /// The chosen container, or `None` if no container qualified.
    pub container: Option<String>,
}

/// The result of dividing a batch of analysis work.
#[derive(Debug, Clone, Default)]
pub struct Division {
    /// Decisions, in task order.
    pub assignments: Vec<Assignment>,
}

impl Division {
    /// Tasks that found a container.
    pub fn assigned(&self) -> impl Iterator<Item = &Assignment> {
        self.assignments.iter().filter(|a| a.container.is_some())
    }

    /// Tasks no container could take (skill gap or overload).
    pub fn unassigned(&self) -> impl Iterator<Item = &AnalysisTask> {
        self.assignments
            .iter()
            .filter(|a| a.container.is_none())
            .map(|a| &a.task)
    }

    /// How many tasks the given container received.
    pub fn load_of(&self, container: &str) -> usize {
        self.assignments
            .iter()
            .filter(|a| a.container.as_deref() == Some(container))
            .count()
    }

    /// Renders the Fig. 3-style trace.
    pub fn trace(&self) -> String {
        let mut out = String::new();
        for a in &self.assignments {
            match &a.container {
                Some(c) => out.push_str(&format!(
                    "task {id} ({skill}, level {level}, {size} records) -> container {c}\n",
                    id = a.task.task_id,
                    skill = a.task.skill,
                    level = a.task.level,
                    size = a.task.size,
                )),
                None => out.push_str(&format!(
                    "task {id} ({skill}) -> UNASSIGNED (no capable container)\n",
                    id = a.task.task_id,
                    skill = a.task.skill,
                )),
            }
        }
        out
    }
}

impl fmt::Display for Division {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.trace())
    }
}

/// The broker: binds a balancing policy to the division procedure.
///
/// Between assignments the broker *projects* the load its own decisions
/// add (each task adds `size / (capacity × 1000)` to the chosen
/// container's load), so a burst of tasks does not all land on the host
/// that was idle at the start — mirroring the root "requesting the
/// current profile" mid-negotiation (§3.5).
///
/// # Examples
///
/// ```
/// use agentgrid::balance::KnowledgeCapacityIdle;
/// use agentgrid::broker::Broker;
/// use agentgrid::ontology::{AnalysisTask, ResourceProfile};
///
/// let mut broker = Broker::new(KnowledgeCapacityIdle);
/// let profiles = vec![
///     ResourceProfile::new("pg-1", 1.0, 1.0, 2048, ["cpu-analysis"]),
///     ResourceProfile::new("pg-2", 1.0, 1.0, 2048, ["cpu-analysis"]),
/// ];
/// let tasks = vec![
///     AnalysisTask::new("t1", "cpu-analysis", "cpu", 1, 500),
///     AnalysisTask::new("t2", "cpu-analysis", "cpu", 1, 500),
/// ];
/// let division = broker.divide(tasks, profiles);
/// // Projected load pushes the second task to the other container.
/// assert_eq!(division.load_of("pg-1"), 1);
/// assert_eq!(division.load_of("pg-2"), 1);
/// ```
pub struct Broker<P> {
    policy: P,
}

impl<P: fmt::Debug> fmt::Debug for Broker<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("policy", &self.policy)
            .finish()
    }
}

impl<P: LoadBalancer> Broker<P> {
    /// Creates a broker with the given policy.
    pub fn new(policy: P) -> Self {
        Broker { policy }
    }

    /// The policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Divides `tasks` over `profiles`, projecting load as it assigns.
    pub fn divide(
        &mut self,
        tasks: impl IntoIterator<Item = AnalysisTask>,
        mut profiles: Vec<ResourceProfile>,
    ) -> Division {
        let mut division = Division::default();
        for task in tasks {
            let container = self.policy.select(&task, &profiles);
            if let Some(name) = &container {
                if let Some(profile) = profiles.iter_mut().find(|p| &p.container == name) {
                    let added = task.size as f64 / (profile.cpu_capacity * 1000.0);
                    profile.load = (profile.load + added).min(1.0);
                }
            }
            division.assignments.push(Assignment { task, container });
        }
        division
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{KnowledgeCapacityIdle, RoundRobin};

    fn profiles() -> Vec<ResourceProfile> {
        vec![
            ResourceProfile::new("pg-1", 1.0, 1.0, 1024, ["cpu", "disk"]),
            ResourceProfile::new("pg-2", 1.0, 1.0, 1024, ["cpu"]),
            ResourceProfile::new("pg-3", 1.0, 1.0, 1024, ["interface"]),
        ]
    }

    fn task(id: &str, skill: &str, size: u64) -> AnalysisTask {
        AnalysisTask::new(id, skill, skill, 1, size)
    }

    #[test]
    fn knowledge_gates_assignment() {
        let mut broker = Broker::new(KnowledgeCapacityIdle);
        let division = broker.divide(
            [task("t1", "disk", 10), task("t2", "memory", 10)],
            profiles(),
        );
        assert_eq!(division.load_of("pg-1"), 1);
        let unassigned: Vec<_> = division.unassigned().collect();
        assert_eq!(unassigned.len(), 1);
        assert_eq!(unassigned[0].skill, "memory");
    }

    #[test]
    fn projected_load_spreads_bursts() {
        let mut broker = Broker::new(KnowledgeCapacityIdle);
        let tasks: Vec<_> = (0..4).map(|i| task(&format!("t{i}"), "cpu", 500)).collect();
        let division = broker.divide(tasks, profiles());
        assert_eq!(division.load_of("pg-1"), 2);
        assert_eq!(division.load_of("pg-2"), 2);
    }

    #[test]
    fn trace_mentions_every_task() {
        let mut broker = Broker::new(RoundRobin::default());
        let division = broker.divide([task("t1", "cpu", 1), task("t2", "nothing", 1)], profiles());
        let trace = division.trace();
        assert!(trace.contains("task t1"));
        assert!(trace.contains("UNASSIGNED"));
        assert_eq!(broker.policy_name(), "round-robin");
    }

    #[test]
    fn empty_inputs_yield_empty_division() {
        let mut broker = Broker::new(KnowledgeCapacityIdle);
        let division = broker.divide([], profiles());
        assert!(division.assignments.is_empty());
        let division = broker.divide([task("t", "cpu", 1)], Vec::new());
        assert_eq!(division.unassigned().count(), 1);
    }
}
