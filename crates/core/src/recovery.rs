//! Failure-detection and recovery policies.
//!
//! The paper's grids assume a benign network; this module adds the
//! knobs that make the processor grid survive a hostile one:
//!
//! * [`LivenessConfig`] — how stale a container's heartbeat (recorded in
//!   the directory, see
//!   [`DirectoryFacilitator::record_heartbeat`](agentgrid_platform::DirectoryFacilitator::record_heartbeat))
//!   may grow before the grid root marks it [`Liveness::Suspect`] and
//!   then [`Liveness::Dead`];
//! * [`BackoffPolicy`] — seeded exponential backoff with jitter for
//!   request/reply deadlines (broker task awards, collector polls);
//! * [`RecoveryConfig`] — the bundle handed to
//!   [`GridBuilder::recovery`](crate::grid::GridBuilder::recovery).
//!
//! Everything here is driven by **simulated time** and a caller-provided
//! seed — no wall clocks, no global RNG — so recovery decisions are
//! exactly reproducible on the deterministic runtime and statistically
//! reproducible on the threaded one.
//!
//! # Examples
//!
//! ```
//! use agentgrid::recovery::{BackoffPolicy, Liveness, LivenessConfig};
//!
//! let backoff = BackoffPolicy::default().with_seed(42);
//! let d0 = backoff.delay_ms(0, 7);
//! let d1 = backoff.delay_ms(1, 7);
//! assert!(d1 > d0, "delays grow with the attempt number");
//! assert_eq!(d0, BackoffPolicy::default().with_seed(42).delay_ms(0, 7));
//!
//! let liveness = LivenessConfig::default();
//! assert_eq!(liveness.classify(0), Liveness::Alive);
//! assert_eq!(liveness.classify(liveness.dead_after_ms + 1), Liveness::Dead);
//! ```

/// SplitMix64: tiny, high-quality stateless mixer. Used wherever the
/// recovery layer needs reproducible pseudo-randomness from a seed and a
/// counter (backoff jitter, chaos schedules).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stable jitter key for a string identifier (task id, device name):
/// folds the bytes through [`splitmix64`] so the retry schedules of
/// different work items decorrelate.
pub fn jitter_key(id: &str) -> u64 {
    id.bytes()
        .fold(0xacde_u64, |h, b| splitmix64(h ^ u64::from(b)))
}

/// Liveness verdict for a container, derived from heartbeat staleness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Heartbeats are current; the container receives work.
    Alive,
    /// Heartbeats are stale; the container is excluded from new awards
    /// but its in-flight tasks are left to their deadlines.
    Suspect,
    /// Heartbeats exceeded the death threshold: the container is
    /// deregistered and its in-flight tasks are re-brokered.
    Dead,
}

impl Liveness {
    /// Numeric encoding used by the
    /// `agentgrid_container_liveness` gauge (0 = alive, 1 = suspect,
    /// 2 = dead).
    pub fn as_gauge(self) -> i64 {
        match self {
            Liveness::Alive => 0,
            Liveness::Suspect => 1,
            Liveness::Dead => 2,
        }
    }
}

/// Heartbeat staleness thresholds.
///
/// Containers heartbeat once per tick (their agents record into the
/// directory on every `on_tick`). The defaults assume the grid's
/// canonical 60-second tick: two missed beats make a container suspect,
/// three make it dead — N-missed-heartbeats failure detection à la
/// φ-accrual's crude integer cousin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessConfig {
    /// Staleness (ms of simulated time since the last heartbeat) after
    /// which a container is suspect.
    pub suspect_after_ms: u64,
    /// Staleness after which a container is declared dead.
    pub dead_after_ms: u64,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        LivenessConfig {
            suspect_after_ms: 2 * 60_000,
            dead_after_ms: 3 * 60_000,
        }
    }
}

impl LivenessConfig {
    /// Classifies a container from its heartbeat staleness.
    pub fn classify(&self, staleness_ms: u64) -> Liveness {
        if staleness_ms >= self.dead_after_ms {
            Liveness::Dead
        } else if staleness_ms >= self.suspect_after_ms {
            Liveness::Suspect
        } else {
            Liveness::Alive
        }
    }
}

/// Seeded exponential backoff with jitter.
///
/// The delay before retry `attempt` (0-based) is
///
/// ```text
/// base_ms · factor^attempt, capped at max_ms, ± up to 25% jitter
/// ```
///
/// where the jitter is drawn deterministically from
/// `(jitter_seed, key, attempt)` via [`splitmix64`] — two parties with
/// the same seed compute identical schedules, and distinct keys (task
/// ids, device names) decorrelate their retry storms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-retry delay in simulated milliseconds.
    pub base_ms: u64,
    /// Multiplier applied per attempt.
    pub factor: u32,
    /// Upper bound on the pre-jitter delay.
    pub max_ms: u64,
    /// Retries before the caller escalates (the initial try is not
    /// counted).
    pub max_retries: u32,
    /// Seed decorrelating jitter across grids.
    pub jitter_seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 60_000,
            factor: 2,
            max_ms: 8 * 60_000,
            max_retries: 2,
            jitter_seed: 0,
        }
    }
}

impl BackoffPolicy {
    /// Returns the policy with its jitter seed replaced.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Delay before retry `attempt` (0-based) of the work item
    /// identified by `key`. Always at least 1 ms, so a retry scheduled
    /// "now" still lands strictly in the future of the current tick.
    pub fn delay_ms(&self, attempt: u32, key: u64) -> u64 {
        let exp = u64::from(self.factor).saturating_pow(attempt);
        let raw = self.base_ms.saturating_mul(exp).min(self.max_ms);
        // ± up to 25%, deterministic in (seed, key, attempt).
        let r = splitmix64(
            self.jitter_seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(key)
                .wrapping_add(u64::from(attempt) << 32),
        );
        let span = raw / 2; // jitter window: raw ± raw/4
        let jitter = if span == 0 { 0 } else { r % (span + 1) };
        (raw - raw / 4 + jitter).max(1)
    }
}

/// The recovery bundle: liveness detection plus retry/backoff, handed to
/// [`GridBuilder::recovery`](crate::grid::GridBuilder::recovery).
/// Recovery is **opt-in**: without it the grid behaves byte-identically
/// to the pre-recovery baseline.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Heartbeat staleness thresholds.
    pub liveness: LivenessConfig,
    /// Deadline/backoff policy for broker awards and collector polls.
    pub backoff: BackoffPolicy,
}

impl RecoveryConfig {
    /// A default-threshold config whose backoff jitter uses `seed`.
    pub fn seeded(seed: u64) -> Self {
        RecoveryConfig {
            liveness: LivenessConfig::default(),
            backoff: BackoffPolicy::default().with_seed(seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_staleness_to_states() {
        let cfg = LivenessConfig {
            suspect_after_ms: 100,
            dead_after_ms: 200,
        };
        assert_eq!(cfg.classify(0), Liveness::Alive);
        assert_eq!(cfg.classify(99), Liveness::Alive);
        assert_eq!(cfg.classify(100), Liveness::Suspect);
        assert_eq!(cfg.classify(199), Liveness::Suspect);
        assert_eq!(cfg.classify(200), Liveness::Dead);
        assert_eq!(cfg.classify(u64::MAX), Liveness::Dead);
    }

    #[test]
    fn backoff_grows_caps_and_reproduces() {
        let p = BackoffPolicy {
            base_ms: 1_000,
            factor: 2,
            max_ms: 8_000,
            max_retries: 3,
            jitter_seed: 9,
        };
        let d: Vec<u64> = (0..6).map(|a| p.delay_ms(a, 1)).collect();
        // Within ±25% of 1s, 2s, 4s, then capped at 8s ± 25%.
        assert!(d[0] >= 750 && d[0] <= 1_250, "{d:?}");
        assert!(d[1] >= 1_500 && d[1] <= 2_500, "{d:?}");
        assert!(d[2] >= 3_000 && d[2] <= 5_000, "{d:?}");
        for late in &d[3..] {
            assert!(*late >= 6_000 && *late <= 10_000, "{d:?}");
        }
        // Deterministic in (seed, key, attempt)…
        assert_eq!(p.delay_ms(2, 1), p.delay_ms(2, 1));
        // …and decorrelated across keys and seeds.
        assert_ne!(p.delay_ms(2, 1), p.delay_ms(2, 2));
        assert_ne!(
            p.delay_ms(2, 1),
            BackoffPolicy {
                jitter_seed: 10,
                ..p
            }
            .delay_ms(2, 1)
        );
    }

    #[test]
    fn backoff_never_returns_zero() {
        let p = BackoffPolicy {
            base_ms: 0,
            factor: 2,
            max_ms: 0,
            max_retries: 1,
            jitter_seed: 0,
        };
        assert_eq!(p.delay_ms(0, 0), 1);
    }

    #[test]
    fn liveness_gauge_encoding_is_stable() {
        assert_eq!(Liveness::Alive.as_gauge(), 0);
        assert_eq!(Liveness::Suspect.as_gauge(), 1);
        assert_eq!(Liveness::Dead.as_gauge(), 2);
    }
}
