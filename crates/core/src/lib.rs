//! `agentgrid` — grids of agents for computer and telecommunication
//! network management.
//!
//! This crate is a faithful, executable reproduction of the architecture
//! proposed by Assunção, Westphall and Koch (Middleware 2003): a network
//! management system decomposed into four cooperating **grids of
//! agents** — collectors, classifiers, processors and interfaces —
//! replacing the classic centralized manager.
//!
//! The main entry points:
//!
//! * [`grid::ManagementGrid`] — the live system (paper Fig. 2): point it
//!   at a simulated [`Network`](agentgrid_net::Network), configure
//!   analyzer containers, run simulated time, get alerts and reports;
//! * [`costmodel`] — Table 1, the relative task costs of the evaluation;
//! * [`scenario`] — the three architectures of Figure 6 as
//!   discrete-event simulations (centralized / multi-agent / agent grid);
//! * [`balance`] — the load-balancing policies of §3.5 plus ablation
//!   baselines and a contract-net variant;
//! * [`broker`] — the Fig. 3 task-division broker;
//! * [`mobility`] — agent migration driven rebalancing (the paper's
//!   future-work item);
//! * [`workflow`] — the traditional management workflow of Fig. 1 as an
//!   executable pipeline;
//! * [`recovery`] — heartbeat liveness, retry/backoff and re-brokering
//!   policies (opt-in via [`grid::GridBuilder::recovery`]);
//! * [`chaos`] — seeded, simulated-time chaos schedules for recovery
//!   testing ([`grid::GridBuilder::chaos`]);
//! * [`overload`] — bounded mailboxes, priority shedding, admission
//!   control, circuit breakers and collector pacing (opt-in via
//!   [`grid::GridBuilder::overload`]);
//! * [`federation`] — the inter-grid protocol behind domain-partitioned
//!   peer shards: spill-over brokering and cross-domain finding
//!   summaries (opt-in via [`grid::GridBuilder::shards`]).
//!
//! # Quickstart
//!
//! ```
//! use agentgrid::grid::ManagementGrid;
//! use agentgrid_net::{Device, DeviceKind, Network};
//!
//! let mut network = Network::new();
//! network.add_device(Device::builder("r1", DeviceKind::Router).site("hq").seed(7).build());
//! network.add_device(Device::builder("s1", DeviceKind::Server).site("hq").seed(8).build());
//!
//! let mut grid = ManagementGrid::builder()
//!     .network(network)
//!     .analyzer("pg-1", 1.0, ["cpu", "memory", "disk", "interface",
//!                             "process", "system", "other", "correlation"])
//!     .build();
//! let report = grid.run(5 * 60_000, 60_000); // five minutes, 1-minute ticks
//! assert!(report.records_stored > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod broker;
pub mod chaos;
pub mod costmodel;
pub mod federation;
pub mod grid;
pub mod mobility;
pub mod overload;
pub mod recovery;
pub mod scenario;
pub mod workflow;

pub use agentgrid_acl::ontology;
pub use chaos::{ChaosAction, ChaosPlan};
pub use costmodel::{CostModel, RequestType, TaskCost, TaskKind};
pub use grid::{GridReport, ManagementGrid};
pub use overload::{
    AdmissionConfig, BreakerConfig, MailboxConfig, MessageClass, OverflowPolicy, OverloadConfig,
};
pub use recovery::{BackoffPolicy, Liveness, LivenessConfig, RecoveryConfig};
pub use scenario::{Architecture, Workload};
