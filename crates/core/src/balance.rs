//! Load-balancing policies for the processor grid (paper §3.5).
//!
//! The paper distributes analysis work by three principles, in order:
//! containers "with knowledge to process it", "that have computational
//! capacity", and "that are idle". [`KnowledgeCapacityIdle`] implements
//! exactly that ranking; [`RoundRobin`], [`Random`] and [`LeastLoaded`]
//! exist as ablation baselines, and [`ContractNet`] runs a full FIPA
//! auction where each candidate bids its headroom.

use agentgrid_acl::ontology::{AnalysisTask, ResourceProfile};
use agentgrid_acl::protocol::{ContractNetInitiator, ContractNetOutcome};
use agentgrid_acl::{AgentId, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A policy that picks the container to run an analysis task.
///
/// Implementations must be deterministic given their own state (the
/// random policy owns a seeded generator).
pub trait LoadBalancer: Send {
    /// Chooses a container from `candidates` for `task`, or `None` when
    /// no candidate is acceptable (e.g. nobody has the skill).
    fn select(&mut self, task: &AnalysisTask, candidates: &[ResourceProfile]) -> Option<String>;

    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// A fresh boxed copy of this policy, for builds that wire one
    /// broker per shard ([`GridBuilder::shards`](crate::grid::GridBuilder::shards)
    /// gives every shard root its own instance). Stateful policies
    /// (e.g. the seeded [`Random`]) duplicate their current state.
    fn boxed_clone(&self) -> Box<dyn LoadBalancer>;
}

/// The paper's policy: knowledge match first, then capacity, then
/// idleness — implemented as: among skilled candidates, maximize
/// *headroom* (`cpu_capacity × (1 − load)`), tie-broken by lower load,
/// then by name for determinism.
#[derive(Debug, Clone, Copy, Default)]
pub struct KnowledgeCapacityIdle;

impl LoadBalancer for KnowledgeCapacityIdle {
    fn select(&mut self, task: &AnalysisTask, candidates: &[ResourceProfile]) -> Option<String> {
        candidates
            .iter()
            .filter(|p| p.has_skill(&task.skill))
            .max_by(|a, b| {
                a.headroom()
                    .partial_cmp(&b.headroom())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| {
                        b.load
                            .partial_cmp(&a.load)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    // Prefer the lexicographically earlier name on ties.
                    .then_with(|| b.container.cmp(&a.container))
            })
            .map(|p| p.container.clone())
    }

    fn name(&self) -> &'static str {
        "knowledge-capacity-idle"
    }

    fn boxed_clone(&self) -> Box<dyn LoadBalancer> {
        Box::new(*self)
    }
}

/// Ablation: rotate over *skilled* candidates regardless of load.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl LoadBalancer for RoundRobin {
    fn select(&mut self, task: &AnalysisTask, candidates: &[ResourceProfile]) -> Option<String> {
        let skilled: Vec<&ResourceProfile> = candidates
            .iter()
            .filter(|p| p.has_skill(&task.skill))
            .collect();
        if skilled.is_empty() {
            return None;
        }
        let pick = skilled[self.next % skilled.len()].container.clone();
        self.next = self.next.wrapping_add(1);
        Some(pick)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn boxed_clone(&self) -> Box<dyn LoadBalancer> {
        Box::new(*self)
    }
}

/// Ablation: uniformly random skilled candidate (seeded, reproducible).
#[derive(Debug, Clone)]
pub struct Random {
    rng: StdRng,
}

impl Random {
    /// Creates the policy with a seed.
    pub fn new(seed: u64) -> Self {
        Random {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl LoadBalancer for Random {
    fn select(&mut self, task: &AnalysisTask, candidates: &[ResourceProfile]) -> Option<String> {
        let skilled: Vec<&ResourceProfile> = candidates
            .iter()
            .filter(|p| p.has_skill(&task.skill))
            .collect();
        if skilled.is_empty() {
            return None;
        }
        let index = self.rng.random_range(0..skilled.len());
        Some(skilled[index].container.clone())
    }

    fn name(&self) -> &'static str {
        "random"
    }

    fn boxed_clone(&self) -> Box<dyn LoadBalancer> {
        Box::new(self.clone())
    }
}

/// Ablation: lowest current load among skilled candidates, ignoring
/// capacity (so a slow idle host beats a fast busy one).
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl LoadBalancer for LeastLoaded {
    fn select(&mut self, task: &AnalysisTask, candidates: &[ResourceProfile]) -> Option<String> {
        candidates
            .iter()
            .filter(|p| p.has_skill(&task.skill))
            .min_by(|a, b| {
                a.load
                    .partial_cmp(&b.load)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.container.cmp(&b.container))
            })
            .map(|p| p.container.clone())
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn boxed_clone(&self) -> Box<dyn LoadBalancer> {
        Box::new(*self)
    }
}

/// The negotiation path (§3.5): run a FIPA contract-net auction in which
/// every skilled container bids its headroom; the award goes to the best
/// bid. Equivalent in outcome to [`KnowledgeCapacityIdle`] but exercises
/// the full protocol machinery — and honestly models containers that
/// refuse (load ≥ 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct ContractNet;

impl LoadBalancer for ContractNet {
    fn select(&mut self, task: &AnalysisTask, candidates: &[ResourceProfile]) -> Option<String> {
        let skilled: Vec<&ResourceProfile> = candidates
            .iter()
            .filter(|p| p.has_skill(&task.skill))
            .collect();
        if skilled.is_empty() {
            return None;
        }
        let root = AgentId::new("pg-root");
        let mut auction = ContractNetInitiator::new(
            root,
            skilled.iter().map(|p| AgentId::new(p.container.clone())),
            Value::from(task.task_id.clone()),
        );
        auction.call_for_proposals();
        for profile in &skilled {
            let bidder = AgentId::new(profile.container.clone());
            if profile.load >= 1.0 {
                auction
                    .handle_refuse(&bidder)
                    .expect("bidder was invited exactly once");
            } else {
                auction
                    .handle_propose(&bidder, profile.headroom())
                    .expect("bidder was invited exactly once");
            }
        }
        match auction.award().expect("bidding phase is open") {
            ContractNetOutcome::Awarded { winner, .. } => Some(winner.name().to_owned()),
            ContractNetOutcome::NoBids => None,
        }
    }

    fn name(&self) -> &'static str {
        "contract-net"
    }

    fn boxed_clone(&self) -> Box<dyn LoadBalancer> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(skill: &str) -> AnalysisTask {
        AnalysisTask::new("t1", skill, "p", 1, 10)
    }

    fn profile(name: &str, capacity: f64, load: f64, skills: &[&str]) -> ResourceProfile {
        let mut p = ResourceProfile::new(name, capacity, 1.0, 1024, skills.iter().copied());
        p.load = load;
        p
    }

    #[test]
    fn kci_requires_knowledge() {
        let mut policy = KnowledgeCapacityIdle;
        let candidates = [profile("c1", 10.0, 0.0, &["disk"])];
        assert_eq!(policy.select(&task("cpu"), &candidates), None);
        assert_eq!(
            policy.select(&task("disk"), &candidates),
            Some("c1".to_owned())
        );
    }

    #[test]
    fn kci_prefers_headroom_over_raw_capacity() {
        let mut policy = KnowledgeCapacityIdle;
        let candidates = [
            profile("big-busy", 4.0, 0.9, &["cpu"]),   // headroom 0.4
            profile("small-idle", 1.0, 0.0, &["cpu"]), // headroom 1.0
        ];
        assert_eq!(
            policy.select(&task("cpu"), &candidates),
            Some("small-idle".to_owned())
        );
    }

    #[test]
    fn kci_is_deterministic_on_ties() {
        let mut policy = KnowledgeCapacityIdle;
        let candidates = [
            profile("b", 1.0, 0.0, &["cpu"]),
            profile("a", 1.0, 0.0, &["cpu"]),
        ];
        assert_eq!(
            policy.select(&task("cpu"), &candidates),
            Some("a".to_owned())
        );
    }

    #[test]
    fn round_robin_rotates_over_skilled_only() {
        let mut policy = RoundRobin::default();
        let candidates = [
            profile("a", 1.0, 0.0, &["cpu"]),
            profile("b", 1.0, 0.0, &["disk"]),
            profile("c", 1.0, 0.0, &["cpu"]),
        ];
        let picks: Vec<_> = (0..4)
            .map(|_| policy.select(&task("cpu"), &candidates).unwrap())
            .collect();
        assert_eq!(picks, ["a", "c", "a", "c"]);
    }

    #[test]
    fn random_is_reproducible_and_skill_bound() {
        let candidates = [
            profile("a", 1.0, 0.0, &["cpu"]),
            profile("b", 1.0, 0.0, &["cpu"]),
        ];
        let run = |seed| {
            let mut policy = Random::new(seed);
            (0..10)
                .map(|_| policy.select(&task("cpu"), &candidates).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        let mut policy = Random::new(1);
        assert_eq!(policy.select(&task("net"), &candidates), None);
    }

    #[test]
    fn least_loaded_ignores_capacity() {
        let mut policy = LeastLoaded;
        let candidates = [
            profile("fast-busy", 8.0, 0.5, &["cpu"]),
            profile("slow-idle", 1.0, 0.1, &["cpu"]),
        ];
        assert_eq!(
            policy.select(&task("cpu"), &candidates),
            Some("slow-idle".to_owned())
        );
    }

    #[test]
    fn contract_net_awards_highest_headroom_and_honours_refusals() {
        let mut policy = ContractNet;
        let candidates = [
            profile("overloaded", 8.0, 1.0, &["cpu"]), // refuses
            profile("winner", 2.0, 0.5, &["cpu"]),     // bids 1.0
            profile("loser", 1.0, 0.5, &["cpu"]),      // bids 0.5
        ];
        assert_eq!(
            policy.select(&task("cpu"), &candidates),
            Some("winner".to_owned())
        );
        // Everyone overloaded → no award.
        let all_busy = [profile("x", 1.0, 1.0, &["cpu"])];
        assert_eq!(policy.select(&task("cpu"), &all_busy), None);
    }

    #[test]
    fn policies_report_names() {
        assert_eq!(KnowledgeCapacityIdle.name(), "knowledge-capacity-idle");
        assert_eq!(RoundRobin::default().name(), "round-robin");
        assert_eq!(Random::new(0).name(), "random");
        assert_eq!(LeastLoaded.name(), "least-loaded");
        assert_eq!(ContractNet.name(), "contract-net");
    }
}
