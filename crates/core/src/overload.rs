//! Overload protection: bounded mailboxes, admission control, circuit
//! breakers and collector pacing — all opt-in (§3.5 taken defensively).
//!
//! The paper's load balancing picks the *best* worker, but offers no
//! defense once every worker is saturated. This module adds the four
//! graceful-degradation mechanisms wired up by
//! [`GridBuilder::overload`](crate::grid::GridBuilder::overload):
//!
//! 1. **Bounded mailboxes** ([`MailboxConfig`], enforced by the
//!    platform layer on both runtimes) with [`OverflowPolicy`] choosing
//!    between backpressure and priority-aware shedding over the
//!    [`MessageClass`] lattice.
//! 2. **Admission control** ([`AdmissionConfig`]): a token bucket at
//!    the grid root, refilled once per clock window and gated on the
//!    aggregate measured load of the directory's resource profiles.
//!    Non-admitted task awards park (recovery on) or count `rejected`
//!    (recovery off).
//! 3. **Circuit breakers** ([`BreakerConfig`]): per-container
//!    Closed→Open→HalfOpen state driven by consecutive award timeouts,
//!    with [`BackoffPolicy`] scheduling the half-open probe. An open
//!    breaker diverts awards exactly like the Suspect liveness state —
//!    and *only* that: liveness sweeps run first and unconditionally,
//!    so a breaker can never mask a dead container (nor vice versa: a
//!    dead container's breaker state is forgotten on reclaim).
//! 4. **Collector pacing**: collectors stretch their poll interval
//!    multiplicatively while the platform signals mailbox pressure and
//!    recover additively once it clears.
//!
//! Every mechanism defaults to off; an unset [`OverloadConfig`] keeps
//! runs byte-identical to the unprotected grid.

use std::collections::BTreeMap;

use crate::recovery::{jitter_key, BackoffPolicy};

pub use agentgrid_platform::{
    MailboxConfig, MessageClass, OverflowPolicy, OverloadStats, PressureSignal,
};

/// Admission-control knobs for the grid root (token bucket + aggregate
/// load gate).
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum tokens the bucket holds — the burst allowance. The
    /// bucket starts full.
    pub bucket_capacity: u32,
    /// Tokens restored at each new clock window (distinct simulated
    /// timestamp), capped at `bucket_capacity`.
    pub refill_per_window: u32,
    /// Aggregate measured-load ceiling in `[0, 1]`: when the mean load
    /// across the directory's container profiles exceeds this, awards
    /// are not admitted regardless of tokens. `1.0` disables the gate.
    pub load_threshold: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            bucket_capacity: 8,
            refill_per_window: 4,
            load_threshold: 0.9,
        }
    }
}

/// Circuit-breaker knobs for per-container award diversion.
///
/// Breakers trip on consecutive award *timeouts* (deadline expiries in
/// the recovery layer), so configuring one implies recovery defaults —
/// without deadlines there is no failure signal.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive timeouts that trip Closed → Open.
    pub failure_threshold: u32,
    /// Schedules the Open → HalfOpen probe: the `n`-th open waits
    /// `backoff.delay_ms(n, jitter_key(container))`.
    pub backoff: BackoffPolicy,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            backoff: BackoffPolicy::default(),
        }
    }
}

/// The full opt-in overload-protection configuration for
/// [`GridBuilder::overload`](crate::grid::GridBuilder::overload).
///
/// The default has every mechanism off, preserving today's unbounded
/// behavior byte-for-byte.
#[derive(Debug, Clone, Default)]
pub struct OverloadConfig {
    /// Bounded per-container mailboxes (platform layer, both runtimes).
    pub mailbox: Option<MailboxConfig>,
    /// Token-bucket admission control at the grid root.
    pub admission: Option<AdmissionConfig>,
    /// Per-container circuit breakers (implies recovery defaults).
    pub breaker: Option<BreakerConfig>,
    /// Collector poll-interval pacing under mailbox pressure (requires
    /// `mailbox` — the pressure signal comes from the bounded-mailbox
    /// tracker).
    pub collector_pacing: bool,
}

impl OverloadConfig {
    /// An all-off configuration (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds every container's mailbox at `capacity` deliveries per
    /// clock window, resolving overflow with `policy`.
    pub fn mailbox(mut self, capacity: usize, policy: OverflowPolicy) -> Self {
        self.mailbox = Some(MailboxConfig::new(capacity, policy));
        self
    }

    /// Enables root admission control.
    pub fn admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = Some(config);
        self
    }

    /// Enables per-container circuit breakers.
    pub fn breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = Some(config);
        self
    }

    /// Enables collector pacing (effective only together with
    /// [`mailbox`](Self::mailbox)).
    pub fn collector_pacing(mut self, enabled: bool) -> Self {
        self.collector_pacing = enabled;
        self
    }
}

/// Token-bucket admission gate, window-keyed: both runtimes may tick
/// several times within one simulated timestamp, so refills key on the
/// timestamp itself — identical token sequences on identical clocks.
#[derive(Debug)]
pub(crate) struct AdmissionGate {
    config: AdmissionConfig,
    tokens: u32,
    last_refill_ms: Option<u64>,
}

impl AdmissionGate {
    pub(crate) fn new(config: AdmissionConfig) -> Self {
        AdmissionGate {
            tokens: config.bucket_capacity,
            config,
            last_refill_ms: None,
        }
    }

    /// Admits one award at `now` given the directory's aggregate
    /// measured load. A rejected award consumes no token.
    pub(crate) fn admit(&mut self, now_ms: u64, aggregate_load: f64) -> bool {
        if self.last_refill_ms != Some(now_ms) {
            self.last_refill_ms = Some(now_ms);
            self.tokens = self
                .tokens
                .saturating_add(self.config.refill_per_window)
                .min(self.config.bucket_capacity);
        }
        if aggregate_load > self.config.load_threshold {
            return false;
        }
        if self.tokens == 0 {
            return false;
        }
        self.tokens -= 1;
        true
    }
}

/// One container's breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Healthy; counting consecutive timeouts toward the threshold.
    Closed { consecutive: u32 },
    /// Tripped: awards divert until the probe time, counting how many
    /// times this breaker has opened (drives the probe backoff).
    Open { until_ms: u64, opens: u32 },
    /// Probing: one award is allowed through; its outcome closes or
    /// re-opens the breaker.
    HalfOpen { opens: u32 },
}

/// Per-container circuit breakers at the grid root.
#[derive(Debug)]
pub(crate) struct BreakerBoard {
    config: BreakerConfig,
    states: BTreeMap<String, BreakerState>,
    /// State changes since the last [`take_transitions`](Self::take_transitions)
    /// drain, as `(container, new-state label)` — feeds the flight recorder.
    transitions: Vec<(String, &'static str)>,
}

impl BreakerBoard {
    pub(crate) fn new(config: BreakerConfig) -> Self {
        BreakerBoard {
            config,
            states: BTreeMap::new(),
            transitions: Vec::new(),
        }
    }

    /// Whether awards to `container` should divert right now. An Open
    /// breaker whose probe time arrived transitions to HalfOpen and
    /// stops blocking (one probe award flows).
    pub(crate) fn blocks(&mut self, container: &str, now_ms: u64) -> bool {
        match self.states.get(container).copied() {
            Some(BreakerState::Open { until_ms, opens }) => {
                if now_ms < until_ms {
                    true
                } else {
                    self.states
                        .insert(container.to_owned(), BreakerState::HalfOpen { opens });
                    self.transitions.push((container.to_owned(), "half-open"));
                    false
                }
            }
            _ => false,
        }
    }

    /// Records one award timeout against `container`. Returns `true`
    /// when this failure tripped (or re-tripped) the breaker open.
    pub(crate) fn on_failure(&mut self, container: &str, now_ms: u64) -> bool {
        let state = self
            .states
            .entry(container.to_owned())
            .or_insert(BreakerState::Closed { consecutive: 0 });
        let opened = match *state {
            BreakerState::Closed { consecutive } => {
                let consecutive = consecutive + 1;
                if consecutive >= self.config.failure_threshold {
                    Some(0)
                } else {
                    *state = BreakerState::Closed { consecutive };
                    None
                }
            }
            // A failed probe re-opens with a longer wait.
            BreakerState::HalfOpen { opens } => Some(opens + 1),
            BreakerState::Open { .. } => None,
        };
        match opened {
            Some(opens) => {
                let wait = self.config.backoff.delay_ms(opens, jitter_key(container));
                *state = BreakerState::Open {
                    until_ms: now_ms.saturating_add(wait),
                    opens,
                };
                self.transitions.push((container.to_owned(), "open"));
                true
            }
            None => false,
        }
    }

    /// Records a completed task from `container`: closes its breaker
    /// and resets the consecutive-failure count.
    pub(crate) fn on_success(&mut self, container: &str) {
        let was_closed = matches!(
            self.states.get(container),
            None | Some(BreakerState::Closed { .. })
        );
        self.states.insert(
            container.to_owned(),
            BreakerState::Closed { consecutive: 0 },
        );
        if !was_closed {
            self.transitions.push((container.to_owned(), "closed"));
        }
    }

    /// Drains the state changes accumulated since the last drain, in
    /// occurrence order.
    pub(crate) fn take_transitions(&mut self) -> Vec<(String, &'static str)> {
        std::mem::take(&mut self.transitions)
    }

    /// Forgets a container (it died and was reclaimed): breaker state
    /// must not outlive the container, or a restart would inherit it.
    pub(crate) fn forget(&mut self, container: &str) {
        self.states.remove(container);
    }

    /// Gauge encoding for `agentgrid_breaker_state{container}`:
    /// 0 closed, 1 open, 2 half-open.
    pub(crate) fn gauge_value(&self, container: &str) -> i64 {
        match self.states.get(container) {
            Some(BreakerState::Open { .. }) => 1,
            Some(BreakerState::HalfOpen { .. }) => 2,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_breaker() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            backoff: BackoffPolicy {
                base_ms: 100,
                factor: 2,
                max_ms: 1_000,
                max_retries: 2,
                jitter_seed: 7,
            },
        }
    }

    #[test]
    fn bucket_refills_once_per_window() {
        let mut gate = AdmissionGate::new(AdmissionConfig {
            bucket_capacity: 2,
            refill_per_window: 1,
            load_threshold: 1.0,
        });
        // Starts full; two admits drain it within the same window.
        assert!(gate.admit(0, 0.0));
        assert!(gate.admit(0, 0.0));
        assert!(!gate.admit(0, 0.0), "empty within the window");
        // Same-window re-asks never refill, a new window refills once.
        assert!(!gate.admit(0, 0.0));
        assert!(gate.admit(1, 0.0));
        assert!(!gate.admit(1, 0.0));
    }

    #[test]
    fn load_threshold_rejects_without_consuming_tokens() {
        let mut gate = AdmissionGate::new(AdmissionConfig {
            bucket_capacity: 1,
            refill_per_window: 1,
            load_threshold: 0.5,
        });
        assert!(!gate.admit(0, 0.9), "over threshold");
        assert!(gate.admit(0, 0.1), "token survived the rejection");
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_and_probes() {
        let mut board = BreakerBoard::new(fast_breaker());
        assert!(!board.blocks("pg-1", 0));
        assert!(!board.on_failure("pg-1", 0), "one failure: still closed");
        assert!(board.on_failure("pg-1", 0), "second failure trips it");
        assert!(board.blocks("pg-1", 1), "open diverts");
        assert_eq!(board.gauge_value("pg-1"), 1);
        // Probe time (base 100 ms ± 25 % jitter) certainly passed at
        // 10 s: the breaker half-opens and lets one award through.
        assert!(!board.blocks("pg-1", 10_000));
        assert_eq!(board.gauge_value("pg-1"), 2);
        // Failed probe re-opens; success closes for good.
        assert!(board.on_failure("pg-1", 10_000));
        assert!(board.blocks("pg-1", 10_001));
        assert!(!board.blocks("pg-1", 30_000));
        board.on_success("pg-1");
        assert!(!board.blocks("pg-1", 30_001));
        assert_eq!(board.gauge_value("pg-1"), 0);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut board = BreakerBoard::new(fast_breaker());
        assert!(!board.on_failure("pg-1", 0));
        board.on_success("pg-1");
        assert!(!board.on_failure("pg-1", 0), "count restarted");
        assert!(board.on_failure("pg-1", 0));
    }

    #[test]
    fn transitions_log_records_every_state_change_once() {
        let mut board = BreakerBoard::new(fast_breaker());
        board.on_failure("pg-1", 0);
        board.on_success("pg-1"); // closed → closed: not a transition
        assert!(board.take_transitions().is_empty());
        board.on_failure("pg-1", 0);
        board.on_failure("pg-1", 0); // trips open
        assert!(!board.blocks("pg-1", 10_000)); // probe: half-open
        board.on_success("pg-1"); // closes
        assert_eq!(
            board.take_transitions(),
            vec![
                ("pg-1".to_owned(), "open"),
                ("pg-1".to_owned(), "half-open"),
                ("pg-1".to_owned(), "closed"),
            ]
        );
        assert!(board.take_transitions().is_empty(), "drained");
    }

    #[test]
    fn forget_clears_state_so_a_restart_starts_closed() {
        let mut board = BreakerBoard::new(fast_breaker());
        board.on_failure("pg-1", 0);
        board.on_failure("pg-1", 0);
        assert!(board.blocks("pg-1", 1));
        board.forget("pg-1");
        assert!(!board.blocks("pg-1", 1));
        assert_eq!(board.gauge_value("pg-1"), 0);
    }
}
