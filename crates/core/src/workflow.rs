//! The traditional network-management workflow (paper Fig. 1) as an
//! executable pipeline.
//!
//! "Data is collected from network devices using some management
//! protocol; the collected data is analyzed and finally it is
//! transformed into high-level management information" — this module
//! runs exactly that sequence, single-threaded and centralized, tracing
//! each stage. It is both the Fig. 1 reproduction and the engine of the
//! centralized baseline in `agentgrid-baselines`.

use agentgrid_acl::ontology::{Alert, Severity};
use agentgrid_net::{snmp, Network, Oid};
use agentgrid_rules::{Engine, Fact, KnowledgeBase, RuleSeverity};
use agentgrid_store::{ManagementStore, Record};

/// One stage of the Fig. 1 workflow with its item counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRecord {
    /// Stage name as in the figure.
    pub stage: &'static str,
    /// Items flowing into the stage.
    pub items_in: usize,
    /// Items flowing out of the stage.
    pub items_out: usize,
}

/// The trace of one workflow pass.
#[derive(Debug, Clone, Default)]
pub struct WorkflowTrace {
    /// Stage records, in execution order.
    pub stages: Vec<StageRecord>,
}

impl WorkflowTrace {
    fn push(&mut self, stage: &'static str, items_in: usize, items_out: usize) {
        self.stages.push(StageRecord {
            stage,
            items_in,
            items_out,
        });
    }

    /// Renders the Fig. 1 flow with counts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push_str(" -> ");
            }
            out.push_str(&format!(
                "{} ({} in, {} out)",
                s.stage, s.items_in, s.items_out
            ));
        }
        out.push('\n');
        out
    }
}

/// Runs one pass of the traditional workflow at simulated time `now_ms`:
/// collect from every device via SNMP, consolidate into the store,
/// analyze with the rule engine, and present alerts.
///
/// Returns the alerts ("management information") and the stage trace.
pub fn run_pass(
    network: &mut Network,
    store: &mut ManagementStore,
    kb: &KnowledgeBase,
    now_ms: u64,
) -> (Vec<Alert>, WorkflowTrace) {
    let mut trace = WorkflowTrace::default();

    // Stage 1: Collecting (management protocol).
    let device_names: Vec<String> = network.devices().map(|d| d.name().to_owned()).collect();
    let mut collected: Vec<Record> = Vec::new();
    for name in &device_names {
        let device = network.device_mut(name).expect("device exists");
        let site = device.site().to_owned();
        match snmp::walk(device, &Oid::from([1])) {
            Ok(rows) => {
                for (oid, value) in rows {
                    if let Some(v) = value.as_f64() {
                        collected.push(
                            Record::new(name.clone(), format!("oid.{oid}"), v, now_ms)
                                .with_site(site.clone()),
                        );
                    }
                }
                // Normalized convenience metrics, same as the collectors.
                let device = network.device_mut(name).expect("device exists");
                for (metric, oid) in [
                    ("cpu.load.1", agentgrid_net::oids::hr_processor_load(1)),
                    (
                        "processes.count",
                        agentgrid_net::oids::hr_system_processes(),
                    ),
                ] {
                    if let Ok(value) = snmp::get(device, &oid) {
                        if let Some(v) = value.as_f64() {
                            collected.push(
                                Record::new(name.clone(), metric, v, now_ms)
                                    .with_site(site.clone()),
                            );
                        }
                    }
                }
            }
            Err(_) => {
                collected.push(
                    Record::new(name.clone(), "agent.reachable", 0.0, now_ms)
                        .with_site(site.clone()),
                );
            }
        }
    }
    trace.push("Collecting", device_names.len(), collected.len());

    // Stage 2: Analysis (classification + storage = consolidation).
    let items_in = collected.len();
    store.insert_all(collected);
    trace.push("Analysis", items_in, store.partitions().len());

    // Stage 3: Consolidated data → inference.
    let mut engine = Engine::new(kb.clone());
    let mut fact_count = 0usize;
    let devices: Vec<String> = store.devices().map(str::to_owned).collect();
    for device in &devices {
        let metrics: Vec<String> = store.metrics_of(device).map(str::to_owned).collect();
        for metric in metrics {
            if let Some((_, value)) = store.latest(device, &metric) {
                engine.insert(
                    Fact::new("obs")
                        .with("device", device.as_str())
                        .with("metric", metric.as_str())
                        .with("value", value),
                );
                if metric.starts_with("cpu.load.") {
                    engine.insert(
                        Fact::new("cpu")
                            .with("device", device.as_str())
                            .with("value", value),
                    );
                }
                fact_count += 1;
            }
        }
    }
    let outcome = engine.run();
    trace.push("Consolidated", fact_count, outcome.findings.len());

    // Stage 4: Presentation of reports.
    let alerts: Vec<Alert> = outcome
        .findings
        .into_iter()
        .map(|f| {
            Alert::new(
                f.rule,
                f.device,
                match f.severity {
                    RuleSeverity::Info => Severity::Info,
                    RuleSeverity::Warning => Severity::Warning,
                    RuleSeverity::Critical => Severity::Critical,
                },
                f.message,
                now_ms,
            )
        })
        .collect();
    trace.push("Presentation", alerts.len(), alerts.len());

    (alerts, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentgrid_net::{Device, DeviceKind, FaultKind};
    use agentgrid_rules::parse_rules;

    fn kb() -> KnowledgeBase {
        KnowledgeBase::from_rules(
            parse_rules(
                r#"rule "high-cpu" {
                    when cpu(device: ?d, value: ?v)
                    if ?v > 90
                    then emit critical ?d "cpu ?v%"
                }"#,
            )
            .unwrap(),
        )
    }

    fn network() -> Network {
        let mut net = Network::new();
        net.add_device(Device::builder("s1", DeviceKind::Server).seed(1).build());
        net.add_device(Device::builder("s2", DeviceKind::Server).seed(2).build());
        net.tick_all(60_000);
        net
    }

    #[test]
    fn pass_traces_the_four_stages_in_order() {
        let mut net = network();
        let mut store = ManagementStore::default();
        let (_, trace) = run_pass(&mut net, &mut store, &kb(), 60_000);
        let names: Vec<&str> = trace.stages.iter().map(|s| s.stage).collect();
        assert_eq!(
            names,
            ["Collecting", "Analysis", "Consolidated", "Presentation"]
        );
        assert!(trace.stages[0].items_out > 0, "collected something");
        assert!(!store.is_empty(), "consolidated into the store");
    }

    #[test]
    fn injected_fault_surfaces_as_alert() {
        let mut net = network();
        net.device_mut("s1").unwrap().inject(FaultKind::CpuRunaway);
        net.tick_all(120_000);
        let mut store = ManagementStore::default();
        let (alerts, _) = run_pass(&mut net, &mut store, &kb(), 120_000);
        assert!(alerts
            .iter()
            .any(|a| a.device == "s1" && a.rule == "high-cpu"));
    }

    #[test]
    fn unreachable_device_is_recorded_not_fatal() {
        let mut net = network();
        net.device_mut("s1").unwrap().inject(FaultKind::Unreachable);
        let mut store = ManagementStore::default();
        let (_, trace) = run_pass(&mut net, &mut store, &kb(), 60_000);
        assert!(trace.stages[0].items_out > 0, "s2 still collected");
        assert!(store.latest("s1", "agent.reachable").is_some());
    }

    #[test]
    fn trace_renders_as_flow() {
        let mut net = network();
        let mut store = ManagementStore::default();
        let (_, trace) = run_pass(&mut net, &mut store, &kb(), 0);
        let text = trace.render();
        assert!(text.contains("Collecting"));
        assert!(text.contains("->"));
    }
}
