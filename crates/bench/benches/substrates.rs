//! Substrate micro-benchmarks: the building blocks whose costs the
//! architecture-level numbers decompose into — SNMP walks, CLI polls,
//! content-codec round-trips, store inserts and rule-engine runs.

use agentgrid_acl::{Envelope, Value};
use agentgrid_net::{cli, snmp, Device, DeviceKind, Oid};
use agentgrid_rules::{parse_rules, Engine, Fact, KnowledgeBase};
use agentgrid_store::{ManagementStore, Record};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_snmp_walk(c: &mut Criterion) {
    let mut device = Device::builder("bench", DeviceKind::Switch)
        .interfaces(24)
        .cpus(4)
        .seed(1)
        .build();
    device.tick(60_000);
    c.bench_function("snmp_walk_full_mib", |b| {
        b.iter(|| black_box(snmp::walk(&mut device, &Oid::from([1])).unwrap().len()))
    });
}

fn bench_cli_poll(c: &mut Criterion) {
    let mut device = Device::builder("bench", DeviceKind::Server)
        .cpus(4)
        .seed(2)
        .build();
    device.tick(60_000);
    c.bench_function("cli_poll_all_commands", |b| {
        b.iter(|| {
            let mut values = 0usize;
            for command in cli::COMMANDS {
                let report = cli::execute(&device, command).unwrap();
                values += cli::parse_report(&report).len();
            }
            black_box(values)
        })
    });
}

fn bench_content_codec(c: &mut Criterion) {
    let value = Value::list((0..100).map(|i| {
        Value::map([
            ("device", Value::from(format!("dev-{i}"))),
            ("metric", Value::from("cpu.load.1")),
            ("value", Value::from(i as f64)),
        ])
    }));
    let text = value.to_string();
    c.bench_function("content_print_parse_100obs", |b| {
        b.iter(|| {
            let printed = value.to_string();
            let parsed: Value = printed.parse().unwrap();
            black_box(parsed.node_count())
        })
    });
    c.bench_function("content_parse_only_100obs", |b| {
        b.iter(|| black_box(text.parse::<Value>().unwrap().node_count()))
    });
    let msg = agentgrid_acl::AclMessage::builder(agentgrid_acl::Performative::Inform)
        .sender(agentgrid_acl::AgentId::new("a@x"))
        .receiver(agentgrid_acl::AgentId::new("b@y"))
        .content(value)
        .build()
        .unwrap();
    c.bench_function("envelope_roundtrip_100obs", |b| {
        b.iter(|| {
            let bytes = Envelope::seal(&msg).encode();
            black_box(Envelope::decode(bytes).unwrap().open().unwrap())
        })
    });
}

fn bench_store_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_insert");
    for n in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut store = ManagementStore::default();
                for i in 0..n {
                    store.insert(Record::new(
                        format!("d{}", i % 20),
                        "cpu.load.1",
                        i as f64,
                        i as u64,
                    ));
                }
                black_box(store.len())
            })
        });
    }
    group.finish();
}

fn bench_rule_engine(c: &mut Criterion) {
    let kb = KnowledgeBase::from_rules(parse_rules(agentgrid::grid::DEFAULT_RULES).unwrap());
    let mut group = c.benchmark_group("rule_engine_run");
    // The default rule set contains a two-pattern correlation rule, so the
    // naive engine's cost grows quadratically in the hot-fact count (see
    // DESIGN.md §8 on RETE); keep the sizes realistic for one partition.
    group.sample_size(20);
    for facts in [20usize, 60] {
        group.bench_with_input(BenchmarkId::from_parameter(facts), &facts, |b, &facts| {
            b.iter(|| {
                let mut engine = Engine::new(kb.clone());
                for i in 0..facts {
                    engine.insert(
                        Fact::new("cpu")
                            .with("device", format!("d{i}"))
                            .with("value", (i % 100) as f64),
                    );
                }
                black_box(engine.run().findings.len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_snmp_walk,
    bench_cli_poll,
    bench_content_codec,
    bench_store_insert,
    bench_rule_engine
);
criterion_main!(benches);
