//! End-to-end live-grid benchmark (Fig. 2): the full
//! collect→classify→broker→analyze→alert pipeline over simulated
//! minutes, against the centralized and multi-agent baselines on the
//! identical network — the live-system counterpart of Figure 6.

use agentgrid::grid::ManagementGrid;
use agentgrid_baselines::{CentralizedManager, MultiAgentSystem};
use agentgrid_bench::{standard_network, ALL_SKILLS};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const MINUTES: u64 = 5;

fn bench_live_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("live_5min");
    group.sample_size(10);
    group.bench_function("agent-grid", |b| {
        b.iter(|| {
            let mut grid = ManagementGrid::builder()
                .network(standard_network(2, 4, 3))
                .collectors_per_site(2)
                .analyzer("pg-1", 1.0, ALL_SKILLS)
                .analyzer("pg-2", 1.0, ALL_SKILLS)
                .build();
            let report = grid.run(MINUTES * 60_000, 60_000);
            black_box(report.records_stored)
        })
    });
    group.bench_function("multi-agent", |b| {
        b.iter(|| {
            let mut mas = MultiAgentSystem::new(standard_network(2, 4, 3), 2);
            let reports = mas.run(MINUTES * 60_000, 60_000);
            black_box(reports.values().map(|r| r.records).sum::<usize>())
        })
    });
    group.bench_function("centralized", |b| {
        b.iter(|| {
            let mut manager = CentralizedManager::new(standard_network(2, 4, 3));
            let report = manager.run(MINUTES * 60_000, 60_000);
            black_box(report.records_stored)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_live_grid);
criterion_main!(benches);
