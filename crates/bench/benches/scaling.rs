//! Scaling benchmark (extension Ext-3): the agent-grid architecture with
//! a growing analysis pool; the DES makespans printed by
//! `repro -- scaling` are the figure, this guards the harness cost.

use agentgrid_bench::grid_scaling_report;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_analyzers");
    group.sample_size(20);
    for analyzers in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(analyzers),
            &analyzers,
            |b, &analyzers| b.iter(|| black_box(grid_scaling_report(50, analyzers).makespan())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
