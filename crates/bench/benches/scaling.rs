//! Scaling benchmarks (extension Ext-3): the agent-grid architecture
//! with a growing analysis pool, and the federated grid with a growing
//! shard count.
//!
//! * `scaling_analyzers/*` — DES makespans vs analysis hosts; the
//!   figures printed by `repro -- scaling`, this guards the harness
//!   cost.
//! * `scaling_shards/*` — the live grid at 1/2/4/8 domain shards over
//!   a fixed 16-site network and a fixed 8-analyzer pool, so the only
//!   variable is the partitioning. Unsharded, every site's data-ready
//!   fans into tasks that each scan the whole store; sharded, each
//!   root sees only its sites and each task scans only its shard's
//!   store — the wall-clock curve is that work reduction. The
//!   10 000-device headline numbers live in `BENCH_pr10.json`
//!   (`repro --sharded 4 --shard-bench-json …`).

use agentgrid::grid::ManagementGrid;
use agentgrid_bench::{grid_scaling_report, standard_network, ALL_SKILLS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Single-pattern alert rules plus a consolidation-stats rule: the
/// shard tier measures the task-fan-in × store-scan product, so the
/// default two-pattern correlation join (quadratic in devices at any
/// shard count) is trimmed — same reason as `scenario_throughput.rs`.
const SHARD_RULES: &str = r#"
rule "high-cpu" salience 10 {
    when cpu(device: ?d, value: ?v)
    if ?v > 90
    then emit critical ?d "cpu load at ?v% on ?d"
}
rule "disk-pressure" salience 8 {
    when disk(device: ?d, value: ?v)
    if ?v >= 85
    then emit warning ?d "disk ?v% full on ?d"
}
rule "sustained-cpu" salience 5 {
    when stat(device: ?d, metric: "cpu.load.1", mean: ?m)
    if ?m > 80
    then emit warning ?d "sustained cpu pressure on ?d (mean ?m%)"
}
"#;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_analyzers");
    group.sample_size(20);
    for analyzers in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(analyzers),
            &analyzers,
            |b, &analyzers| b.iter(|| black_box(grid_scaling_report(50, analyzers).makespan())),
        );
    }
    group.finish();
}

fn bench_shards(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_shards");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut builder = ManagementGrid::builder()
                        .network(standard_network(16, 12, 42))
                        .collectors_per_site(1)
                        .rules(SHARD_RULES)
                        .shards(shards);
                    for a in 0..8 {
                        builder = builder.analyzer(format!("pg-{}", a + 1), 1.0, ALL_SKILLS);
                    }
                    let mut grid = builder.build();
                    black_box(grid.run(3 * 60_000, 60_000).records_stored)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_shards);
criterion_main!(benches);
