//! Load-balancing ablation benchmark (extension Ext-2): brokering 1 000
//! analysis tasks over a heterogeneous container pool under each policy.

use agentgrid::balance::{
    ContractNet, KnowledgeCapacityIdle, LeastLoaded, LoadBalancer, Random, RoundRobin,
};
use agentgrid::broker::Broker;
use agentgrid::ontology::{AnalysisTask, ResourceProfile};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn profiles() -> Vec<ResourceProfile> {
    (0..8)
        .map(|i| {
            ResourceProfile::new(
                format!("pg-{i}"),
                1.0 + (i % 4) as f64,
                1.0,
                4096,
                ["cpu", "disk", "memory", "interface"],
            )
        })
        .collect()
}

fn tasks() -> Vec<AnalysisTask> {
    (0..1000)
        .map(|i| {
            let skill = ["cpu", "disk", "memory", "interface"][i % 4];
            AnalysisTask::new(format!("t{i}"), skill, skill, 1, 100 + (i as u64 % 400))
        })
        .collect()
}

fn bench_policy<P: LoadBalancer + Clone + 'static>(c: &mut Criterion, name: &str, policy: P) {
    let profiles = profiles();
    let tasks = tasks();
    c.bench_function(&format!("lb_divide_1000/{name}"), |b| {
        b.iter(|| {
            let mut broker = Broker::new(policy.clone());
            let division = broker.divide(tasks.iter().cloned(), profiles.clone());
            black_box(division.assignments.len())
        })
    });
}

fn bench_policies(c: &mut Criterion) {
    bench_policy(c, "knowledge-capacity-idle", KnowledgeCapacityIdle);
    bench_policy(c, "round-robin", RoundRobin::default());
    bench_policy(c, "least-loaded", LeastLoaded);
    bench_policy(c, "contract-net", ContractNet);
    // Random owns an RNG and is not Clone; construct per iteration.
    let profiles = profiles();
    let tasks = tasks();
    c.bench_function("lb_divide_1000/random", |b| {
        b.iter(|| {
            let mut broker = Broker::new(Random::new(42));
            black_box(
                broker
                    .divide(tasks.iter().cloned(), profiles.clone())
                    .assignments
                    .len(),
            )
        })
    });
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
