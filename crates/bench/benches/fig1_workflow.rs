//! Figure 1 benchmark: one pass of the traditional (centralized)
//! management workflow over networks of increasing size — the cost the
//! paper argues grows beyond one station's capacity.

use agentgrid::grid::DEFAULT_RULES;
use agentgrid::workflow;
use agentgrid_bench::standard_network;
use agentgrid_rules::{parse_rules, KnowledgeBase};
use agentgrid_store::ManagementStore;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_workflow_pass(c: &mut Criterion) {
    let kb = KnowledgeBase::from_rules(parse_rules(DEFAULT_RULES).unwrap());
    let mut group = c.benchmark_group("fig1_workflow_pass");
    group.sample_size(30);
    for devices in [4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(devices),
            &devices,
            |b, &devices| {
                b.iter_batched(
                    || {
                        let mut network = standard_network(1, devices, 5);
                        network.tick_all(60_000);
                        (network, ManagementStore::default())
                    },
                    |(mut network, mut store)| {
                        let (alerts, _) = workflow::run_pass(&mut network, &mut store, &kb, 60_000);
                        black_box(alerts.len())
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_workflow_pass);
criterion_main!(benches);
