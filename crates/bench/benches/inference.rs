//! Inference benchmark: the naive reference matcher vs the incremental
//! (TREAT-style agenda + alpha-indexed) engine on the same rule set and
//! fact stream, at 10/100/1000 facts — plus the store's whole-series
//! `stats`/`latest` hot loop. The naive engine rebuilds its conflict set
//! from scratch every recognize-act cycle; the incremental engine only
//! re-matches rules touched by the previous cycle's delta, so the gap
//! widens with fact count. `repro --bench-json <path>` records the same
//! comparison without Criterion for CI artifacts.

use agentgrid_bench::{inference_facts, inference_kb, inference_store};
use agentgrid_rules::{Engine, NaiveEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

const MAX_CYCLES: u64 = 100_000;

fn bench_inference(c: &mut Criterion) {
    let kb = Arc::new(inference_kb());
    let mut group = c.benchmark_group("inference");
    group.sample_size(20);
    for n in [10usize, 100, 1000] {
        let facts = inference_facts(n);
        group.bench_with_input(BenchmarkId::new("naive", n), &facts, |b, facts| {
            b.iter(|| {
                let mut engine = NaiveEngine::new((*kb).clone()).with_max_cycles(MAX_CYCLES);
                for fact in facts {
                    engine.insert(fact.clone());
                }
                black_box(engine.run().stats.match_attempts)
            })
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &facts, |b, facts| {
            b.iter(|| {
                let mut engine = Engine::shared(Arc::clone(&kb)).with_max_cycles(MAX_CYCLES);
                for fact in facts {
                    engine.insert(fact.clone());
                }
                black_box(engine.run().stats.match_attempts)
            })
        });
    }
    group.finish();
}

fn bench_store_stats(c: &mut Criterion) {
    let store = inference_store(1000);
    c.bench_function("store_stats_hot_loop", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for device in 0..5 {
                let device = format!("host-{device}");
                for metric in ["cpu.load.1", "storage.ram.used"] {
                    let stats = store
                        .stats(&device, metric, 0, u64::MAX)
                        .expect("series populated");
                    acc += stats.mean + stats.max;
                    acc += store.latest(&device, metric).expect("series populated").1;
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_inference, bench_store_stats);
criterion_main!(benches);
