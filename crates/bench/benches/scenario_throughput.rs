//! Wall-clock throughput of the Fig. 2 scenario across the three
//! execution models — deterministic stepper, one-OS-thread-per-container
//! threaded runtime, and the work-stealing pool.
//!
//! Two tiers:
//!
//! * `fig2_grid/*/64` — the full [`ManagementGrid`] (real collectors,
//!   classifier, broker, analyzers, rules) at 64 collector containers.
//!   Beyond a few hundred containers the grid's *analysis* stage
//!   dominates: every per-partition task scans the partition across all
//!   devices, so total analysis work grows quadratically with site
//!   count, identically on every runtime — it would both dwarf and
//!   serialize a runtime comparison (and takes minutes per run at 1k).
//! * `fig2_pipeline/*/{64,256,1024}` — the same Fig. 2 topology
//!   (per-site collector containers → classifier → processor root →
//!   analyzers → interface sink) with synthetic lightweight agents, so
//!   the measured cost *is* the runtime layer: message batching,
//!   routing, per-container scheduling. This is the tier where the
//!   pool's advantage over one-OS-thread-per-container shows up — the
//!   headline numbers recorded in `BENCH_pr6.json`.
//!
//! All three runtimes produce byte-identical grid reports on seeded
//! scenarios (asserted in `tests/architecture_comparison.rs`); this
//! bench measures what that equivalence costs.

use agentgrid::grid::ManagementGrid;
use agentgrid_bench::ALL_SKILLS;
use agentgrid_net::{Device, DeviceKind, Network};
use agentgrid_platform::{
    AclMessage, Agent, AgentCtx, AgentId, Performative, Platform, PoolRuntime, Runtime, Telemetry,
    ThreadedRuntime, Value,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Simulated minutes per full-grid run.
const GRID_MINUTES: u64 = 2;
/// Collector containers in the full-grid tier (see module docs for why
/// this tier does not scale to 1k).
const GRID_CONTAINERS: usize = 64;
/// Clock ticks driven through the synthetic pipeline.
const PIPELINE_TICKS: u64 = 10;
/// Observations per synthetic collector batch.
const BATCH_OBS: u64 = 16;

/// One cheap rule keeps the full-grid tier's rule engine from dominating
/// the runtime comparison while still exercising the alert path.
const BENCH_RULES: &str = r#"
rule "high-cpu" salience 10 {
    when cpu(device: ?d, value: ?v)
    if ?v > 90
    then emit critical ?d "cpu load at ?v% on ?d"
}
"#;

fn slim_network(sites: usize, seed: u64) -> Network {
    let mut net = Network::new();
    for s in 0..sites {
        let site = format!("site-{s}");
        net.add_device(
            Device::builder(format!("{site}-dev0"), DeviceKind::Server)
                .site(&site)
                .interfaces(1)
                .cpus(1)
                .ram_units(1)
                .disk_units(1)
                .seed(seed.wrapping_add(s as u64))
                .build(),
        );
    }
    net
}

// --- Synthetic Fig. 2 pipeline ------------------------------------------

/// Emits one synthetic collected batch per clock advance — the cadence
/// gate mirrors the real collector's poll period, so repeated `step`s at
/// the same simulated time (while the pipeline drains) fire it once.
struct SimCollector {
    classifier: AgentId,
    site: u64,
    last_fired: Option<u64>,
}
impl Agent for SimCollector {
    fn on_tick(&mut self, ctx: &mut AgentCtx<'_>) {
        let now = ctx.now_ms();
        if self.last_fired == Some(now) {
            return;
        }
        self.last_fired = Some(now);
        let observations = Value::list((0..BATCH_OBS).map(|m| {
            let v = ((now / 1_000) * 31 + m * 7 + self.site) % 997;
            Value::map([
                ("metric", Value::Int(m as i64)),
                ("value", Value::Float(v as f64 * 0.1)),
            ])
        }));
        let batch = AclMessage::builder(Performative::Inform)
            .sender(ctx.self_id().clone())
            .receiver(self.classifier.clone())
            .content(Value::map([
                ("concept", Value::symbol("collected-batch")),
                ("site", Value::Int(self.site as i64)),
                ("observations", observations),
            ]))
            .build()
            .unwrap();
        ctx.send(batch);
    }
}

/// Counts the batch's observations and notifies the root — the data-ready
/// hop of Fig. 2.
struct SimClassifier {
    root: AgentId,
}
impl Agent for SimClassifier {
    fn on_message(&mut self, msg: &AclMessage, ctx: &mut AgentCtx<'_>) {
        let size = msg
            .content()
            .get("observations")
            .and_then(Value::as_list)
            .map(|l| l.len())
            .unwrap_or(0);
        let notify = AclMessage::builder(Performative::Inform)
            .sender(ctx.self_id().clone())
            .receiver(self.root.clone())
            .content(Value::map([
                ("concept", Value::symbol("data-ready")),
                ("size", Value::Int(size as i64)),
            ]))
            .build()
            .unwrap();
        ctx.send(notify);
    }
}

/// Awards each data-ready notification to an analyzer, round-robin.
struct SimRoot {
    analyzers: Vec<AgentId>,
    next: usize,
}
impl Agent for SimRoot {
    fn on_message(&mut self, msg: &AclMessage, ctx: &mut AgentCtx<'_>) {
        let target = &self.analyzers[self.next % self.analyzers.len()];
        self.next += 1;
        let award = AclMessage::builder(Performative::Request)
            .sender(ctx.self_id().clone())
            .receiver(target.clone())
            .content(msg.content().clone())
            .build()
            .unwrap();
        ctx.send(award);
    }
}

/// Raises an alert to the interface sink for every eighth task.
struct SimAnalyzer {
    interface: AgentId,
    tasks: u64,
}
impl Agent for SimAnalyzer {
    fn on_message(&mut self, _msg: &AclMessage, ctx: &mut AgentCtx<'_>) {
        self.tasks += 1;
        if self.tasks.is_multiple_of(8) {
            let alert = AclMessage::builder(Performative::Inform)
                .sender(ctx.self_id().clone())
                .receiver(self.interface.clone())
                .content(Value::map([("concept", Value::symbol("alert"))]))
                .build()
                .unwrap();
            ctx.send(alert);
        }
    }
}

struct Sink;
impl Agent for Sink {}

/// Wires the Fig. 2 topology on any runtime and drives `PIPELINE_TICKS`
/// simulated minutes through it. Returns the dead-letter count (always
/// zero — returned so the work cannot be optimized away).
fn run_pipeline<R: Runtime>(containers: usize) -> usize {
    let mut rt = R::create("bench");
    rt.add_container("ig");
    let interface = rt.spawn_agent("ig", "interface", Sink).unwrap();
    rt.add_container("pg-1");
    rt.add_container("pg-2");
    let analyzers = vec![
        rt.spawn_agent(
            "pg-1",
            "an-1",
            SimAnalyzer {
                interface: interface.clone(),
                tasks: 0,
            },
        )
        .unwrap(),
        rt.spawn_agent(
            "pg-2",
            "an-2",
            SimAnalyzer {
                interface,
                tasks: 0,
            },
        )
        .unwrap(),
    ];
    rt.add_container("pg-root-ct");
    let root = rt
        .spawn_agent("pg-root-ct", "root", SimRoot { analyzers, next: 0 })
        .unwrap();
    rt.add_container("clg");
    let classifier = rt
        .spawn_agent("clg", "classifier", SimClassifier { root })
        .unwrap();
    for site in 0..containers {
        let container = format!("cg-{site}");
        rt.add_container(&container);
        rt.hint_parallel(&container);
        rt.spawn_agent(
            &container,
            &format!("col-{site}"),
            SimCollector {
                classifier: classifier.clone(),
                site: site as u64,
                last_fired: None,
            },
        )
        .unwrap();
    }
    for t in 1..=PIPELINE_TICKS {
        rt.run_until_idle(t * 60_000);
    }
    rt.dead_letter_count()
}

fn bench_scenario_throughput(c: &mut Criterion) {
    let mut grid = c.benchmark_group("fig2_grid");
    grid.sample_size(10);
    let containers = GRID_CONTAINERS;
    let scenario = |containers: usize| {
        ManagementGrid::builder()
            .network(slim_network(containers, 11))
            .collectors_per_site(1)
            .rules(BENCH_RULES)
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS)
    };
    grid.bench_function(BenchmarkId::new("deterministic", containers), |b| {
        b.iter(|| {
            let mut g = scenario(containers).build();
            black_box(g.run(GRID_MINUTES * 60_000, 60_000).records_stored)
        })
    });
    grid.bench_function(BenchmarkId::new("pool", containers), |b| {
        b.iter(|| {
            let mut g = scenario(containers).build_pool();
            black_box(g.run(GRID_MINUTES * 60_000, 60_000).records_stored)
        })
    });
    grid.bench_function(BenchmarkId::new("threaded", containers), |b| {
        b.iter(|| {
            let mut g = scenario(containers).build_threaded();
            black_box(g.run(GRID_MINUTES * 60_000, 60_000).records_stored)
        })
    });
    grid.finish();

    let mut pipeline = c.benchmark_group("fig2_pipeline");
    pipeline.sample_size(10);
    for containers in [64usize, 256, 1024] {
        pipeline.bench_function(BenchmarkId::new("deterministic", containers), |b| {
            b.iter(|| black_box(run_pipeline::<Platform>(containers)))
        });
        pipeline.bench_function(BenchmarkId::new("pool", containers), |b| {
            b.iter(|| black_box(run_pipeline::<PoolRuntime>(containers)))
        });
        pipeline.bench_function(BenchmarkId::new("threaded", containers), |b| {
            b.iter(|| black_box(run_pipeline::<ThreadedRuntime>(containers)))
        });
    }
    pipeline.finish();

    // Observability tax on the full grid: the identical deterministic
    // run bare, with the metrics/span pillars attached, and with the
    // flight recorder enabled on top. The bare run is the zero line
    // every release must hold — telemetry off costs nothing but the
    // per-hook `Option`/atomic check.
    let mut overhead = c.benchmark_group("telemetry_overhead");
    overhead.sample_size(10);
    overhead.bench_function(BenchmarkId::new("off", containers), |b| {
        b.iter(|| {
            let mut g = scenario(containers).build();
            black_box(g.run(GRID_MINUTES * 60_000, 60_000).records_stored)
        })
    });
    overhead.bench_function(BenchmarkId::new("metrics", containers), |b| {
        b.iter(|| {
            let telemetry = Telemetry::new();
            let mut g = scenario(containers).telemetry(telemetry).build();
            black_box(g.run(GRID_MINUTES * 60_000, 60_000).records_stored)
        })
    });
    overhead.bench_function(BenchmarkId::new("metrics_recorder", containers), |b| {
        b.iter(|| {
            let telemetry = Telemetry::new();
            telemetry.flight_recorder().enable();
            let mut g = scenario(containers).telemetry(telemetry).build();
            black_box(g.run(GRID_MINUTES * 60_000, 60_000).records_stored)
        })
    });
    overhead.finish();
}

criterion_group!(benches, bench_scenario_throughput);
criterion_main!(benches);
