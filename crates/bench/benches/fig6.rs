//! Figure 6 benchmark: simulate the three management architectures under
//! the paper's workload (10 requests of each type, Table 1 costs) and, as
//! the measured quantity, the wall-clock cost of evaluating each
//! architecture. The *result series* (utilization tables) is printed by
//! `repro -- fig6`; this bench guards the harness itself against
//! regressions and reports the per-architecture makespans as throughput
//! anchors.

use agentgrid::scenario::{run_architecture, Architecture, Workload};
use agentgrid::CostModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let costs = CostModel::table1();
    let workload = Workload::paper();
    let mut group = c.benchmark_group("fig6");
    for architecture in Architecture::paper_configs() {
        group.bench_with_input(
            BenchmarkId::from_parameter(architecture.label()),
            &architecture,
            |b, arch| {
                b.iter(|| {
                    let report = run_architecture(black_box(*arch), workload, &costs);
                    black_box(report.makespan())
                })
            },
        );
    }
    group.finish();
}

fn bench_fig6_large(c: &mut Criterion) {
    let costs = CostModel::table1();
    let workload = Workload::rounds(100);
    let mut group = c.benchmark_group("fig6_100rounds");
    group.sample_size(20);
    for architecture in Architecture::paper_configs() {
        group.bench_with_input(
            BenchmarkId::from_parameter(architecture.label()),
            &architecture,
            |b, arch| {
                b.iter(|| run_architecture(black_box(*arch), workload, &costs).peak_utilization())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6, bench_fig6_large);
criterion_main!(benches);
