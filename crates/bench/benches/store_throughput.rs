//! Store throughput benchmark: the record-per-point `NaiveStore` spec vs
//! the chunk-compressed engine on the same 20-series telemetry workload.
//! Three axes: ingest (classify + index + append/encode), the
//! capacity-report "daily peak" windowed sweep (where the chunked engine
//! absorbs whole-chunk min/max summaries without decompressing), and the
//! consolidation "mean per ten minutes" sweep (which decodes every
//! point). `repro --store-bench-json <path>` records the same comparison
//! without Criterion for CI artifacts.

use agentgrid_bench::store_workload;
use agentgrid_store::{AggKind, Classifier, LabelFilter, ManagementStore, StoreBackend};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn build(backend: StoreBackend, records: &[agentgrid_store::Record]) -> ManagementStore {
    let mut store = ManagementStore::with_backend(backend, Classifier::standard());
    store.insert_all(records.iter().cloned());
    store
}

fn sweep(store: &ManagementStore, step_ms: u64, kind: AggKind) -> u64 {
    store
        .query_windows(&LabelFilter::Any, 0, u64::MAX, step_ms, kind)
        .iter()
        .map(|series| series.windows.len() as u64)
        .sum()
}

fn bench_store_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let records = store_workload(n);
        for backend in [StoreBackend::Naive, StoreBackend::Chunked] {
            let label = match backend {
                StoreBackend::Naive => "naive",
                StoreBackend::Chunked => "chunked",
            };
            group.bench_with_input(
                BenchmarkId::new(format!("ingest/{label}"), n),
                &records,
                |b, records| b.iter(|| black_box(build(backend, records).len())),
            );
            let store = build(backend, &records);
            group.bench_with_input(
                BenchmarkId::new(format!("daily_peak/{label}"), n),
                &store,
                |b, store| b.iter(|| black_box(sweep(store, 1_440 * 60_000, AggKind::Max))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("mean_10m/{label}"), n),
                &store,
                |b, store| b.iter(|| black_box(sweep(store, 10 * 60_000, AggKind::Mean))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_store_throughput);
criterion_main!(benches);
