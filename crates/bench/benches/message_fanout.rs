//! Multicast fan-out benchmark: one message with a deep content tree
//! delivered to 1, 8 and 64 receivers on both runtimes.
//!
//! Routing moves `Arc<AclMessage>`s, so fan-out is N refcount bumps —
//! per-receiver cost must stay flat as the receiver count grows. The
//! `deep_clone_baseline` series re-creates the cost shape routing had
//! before shared messages (one deep clone of the content tree per
//! receiver) as the comparison anchor: at 64 receivers the multicast
//! series must beat it clearly.

use agentgrid_acl::{AclMessage, AgentId, Performative, SharedMessage, Value};
use agentgrid_platform::threaded::ThreadedPlatform;
use agentgrid_platform::{Agent, Platform};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const RECEIVERS: [usize; 3] = [1, 8, 64];
const CONTAINERS: usize = 4;

struct Sink;
impl Agent for Sink {}

/// A content tree shaped like a large collected batch (~1k nodes).
fn deep_payload() -> Value {
    Value::list((0..64).map(|d| {
        Value::map([
            ("device", Value::from(format!("srv-{d}"))),
            ("metric", Value::symbol("cpu.load.1")),
            (
                "samples",
                Value::list((0..12).map(|s| Value::Float(s as f64 * 0.25))),
            ),
        ])
    }))
}

fn receiver_ids(n: usize) -> Vec<AgentId> {
    (0..n)
        .map(|i| AgentId::with_platform(format!("sink-{i}"), "bench"))
        .collect()
}

fn multicast(to: &[AgentId]) -> AclMessage {
    AclMessage::builder(Performative::Inform)
        .sender(AgentId::new("driver@bench"))
        .receivers(to.iter().cloned())
        .content(deep_payload())
        .build()
        .unwrap()
}

/// Deterministic platform with `n` sinks spread over [`CONTAINERS`].
fn deterministic_platform(n: usize) -> Platform {
    let mut platform = Platform::new("bench");
    for c in 0..CONTAINERS {
        platform.add_container(format!("c{c}"));
    }
    for (i, _) in receiver_ids(n).iter().enumerate() {
        platform
            .spawn(&format!("c{}", i % CONTAINERS), &format!("sink-{i}"), Sink)
            .unwrap();
    }
    platform
}

fn bench_deterministic(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_fanout/deterministic");
    for n in RECEIVERS {
        let mut platform = deterministic_platform(n);
        let message: SharedMessage = multicast(&receiver_ids(n)).into_shared();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                platform.post(SharedMessage::clone(&message));
                black_box(platform.step(0))
            })
        });
    }
    group.finish();
}

fn bench_deterministic_deep_clone_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_fanout/deep_clone_baseline");
    for n in RECEIVERS {
        let mut platform = deterministic_platform(n);
        // One unicast per receiver, deep-cloned per iteration: the cost
        // shape of per-receiver `AclMessage::clone()` fan-out.
        let unicasts: Vec<AclMessage> = receiver_ids(n)
            .into_iter()
            .map(|id| multicast(std::slice::from_ref(&id)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                for message in &unicasts {
                    platform.post(message.clone());
                }
                black_box(platform.step(0))
            })
        });
    }
    group.finish();
}

fn bench_threaded(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_fanout/threaded");
    for n in RECEIVERS {
        let mut platform = ThreadedPlatform::new("bench");
        for c in 0..CONTAINERS {
            platform.add_container(format!("c{c}"));
        }
        for (i, _) in receiver_ids(n).iter().enumerate() {
            platform
                .spawn(&format!("c{}", i % CONTAINERS), &format!("sink-{i}"), Sink)
                .unwrap();
        }
        let mut handle = platform.start();
        let message: SharedMessage = multicast(&receiver_ids(n)).into_shared();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                handle.post(SharedMessage::clone(&message));
                black_box(handle.wait_idle())
            })
        });
        handle.shutdown();
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_deterministic,
    bench_deterministic_deep_clone_baseline,
    bench_threaded,
);
criterion_main!(benches);
