//! Regenerates every table and figure of the paper (plus the extension
//! experiments from its future-work list).
//!
//! ```text
//! cargo run -p agentgrid-bench --bin repro -- all
//! cargo run -p agentgrid-bench --bin repro -- table1 fig6 crossover
//! cargo run -p agentgrid-bench --bin repro -- fig2 --metrics /tmp/metrics.json
//! ```
//!
//! `--metrics <path>` attaches a telemetry sink to every live-grid
//! experiment (fig2, lb, mobility, chaos) and writes the final snapshot
//! to `<path>` — JSON when the path ends in `.json`, Prometheus text
//! otherwise; `-` writes Prometheus text to stdout.
//!
//! `--trace <path>` attaches the same telemetry sink with the flight
//! recorder and pool profiler enabled, and writes a Chrome-trace /
//! Perfetto JSON file to `<path>` after the run: task spans and
//! flight-recorder instants on the simulated-time track, per-worker
//! job lanes and route/tick/merge phases on the wall-clock track when
//! `--runtime pool` is selected. Load it at <https://ui.perfetto.dev>.
//!
//! `--chaos <seed>` runs the seeded chaos-recovery experiment: a grid
//! with a [`ChaosPlan`](agentgrid::chaos::ChaosPlan) derived from the
//! seed (container crash + restart, possibly a transport-fault window),
//! executed twice to check the run is bit-identical, with zero
//! permanently lost tasks. With no explicit experiment list, `--chaos`
//! runs only the chaos experiment.
//!
//! `--netchaos <seed>` runs the network-adversary experiment: a seeded
//! composable fault plan (probabilistic loss, duplication, delay with
//! jitter, bounded reordering and a named partition that heals) against
//! the reliable-delivery protocol and the recovery layer. The scenario
//! runs twice on the deterministic stepper and once on the pool
//! runtime; exits nonzero unless all three reports are byte-identical,
//! zero tasks were permanently lost, and the reliability layer actually
//! worked (nonzero retransmits and suppressed duplicates). With no
//! explicit experiment list, `--netchaos` runs only this experiment.
//!
//! `--overload <seed>` runs the overload-protection experiment: a burst
//! scenario against bounded mailboxes (shed-by-priority), admission
//! control, circuit breakers and collector pacing, executed twice to
//! check the run is bit-identical. Exits nonzero unless messages were
//! shed, zero alert-class messages were lost and the mailbox high-water
//! respected the configured cap. With no explicit experiment list,
//! `--overload` runs only the overload experiment.
//!
//! `--bench-json <path>` times the incremental engine against the naive
//! reference matcher (10/100/1000 facts) plus the store's whole-series
//! stats hot loop, and writes median wall-times in nanoseconds, match
//! counts and speedups to `<path>` as JSON. With no explicit experiment
//! list, `--bench-json` runs only the benchmark.
//!
//! `--runtime {deterministic,threaded,pool}` selects the execution model
//! for the live-grid experiments (fig2, lb, chaos, overload):
//! `deterministic` (default) is the in-order stepper, `threaded` runs one
//! OS thread per container, `pool` ticks collector containers on a
//! work-stealing thread pool. All three produce byte-identical reports
//! on these seeded scenarios — CI diffs `--runtime pool` output against
//! the default to prove it. (`mobility` always uses the deterministic
//! stepper: migration is a stepper-only API.)
//!
//! `--store {chunked,naive}` selects the time-series backend for the
//! live-grid experiments: `chunked` (default) is the compressed
//! chunk engine, `naive` is the executable specification it is proved
//! against. Both produce byte-identical reports — CI diffs
//! `--store naive` output against the default to prove it.
//!
//! `--store-bench-json <path>` times store ingest, windowed range
//! queries and bytes/sample for both backends at 1k/100k/1M points and
//! writes the medians to `<path>` as JSON (the `BENCH_pr8.json`
//! artifact). With no explicit experiment list, `--store-bench-json`
//! runs only the store benchmark.
//!
//! `--sharded <n> [seed]` runs the federated-grid experiment: the grid
//! split into `n` domain shards connected by the federation protocol
//! (load gossip, task spill-over, cross-domain finding summaries). The
//! deterministic checks run the sharded scenario twice on the stepper
//! and once on the pool runtime (all three must be byte-identical),
//! then an overload scenario that forces spill-over and proves every
//! task in the federation is counted exactly once — stdout is fully
//! deterministic so CI can diff two fresh runs. With
//! `--shard-bench-json <path>`, a 10 000-device scenario is also timed
//! on the pool runtime at 1 shard vs `n` shards and the measured
//! throughputs written to `<path>` (the `BENCH_pr10.json` artifact).
//! With no explicit experiment list, `--sharded` runs only this
//! experiment.

use agentgrid::balance::{
    ContractNet, KnowledgeCapacityIdle, LeastLoaded, LoadBalancer, Random, RoundRobin,
};
use agentgrid::broker::Broker;
use agentgrid::chaos::ChaosPlan;
use agentgrid::grid::{GridBuilder, GridReport, ManagementGrid, DEFAULT_RULES};
use agentgrid::mobility::Rebalancer;
use agentgrid::ontology::{AnalysisTask, ResourceProfile};
use agentgrid::overload::{
    AdmissionConfig, BreakerConfig, MessageClass, OverflowPolicy, OverloadConfig, OverloadStats,
};
use agentgrid::recovery::RecoveryConfig;
use agentgrid::workflow;
use agentgrid::CostModel;
use agentgrid_baselines::MultiAgentSystem;
use agentgrid_bench::{
    fig6_reports, grid_scaling_report, inference_facts, inference_kb, inference_store,
    mean_completions, standard_network, store_workload, ALL_SKILLS,
};
use agentgrid_net::{FaultKind, ScheduledFault};
use agentgrid_platform::{ReliabilityConfig, Telemetry, TelemetryHandle};
use agentgrid_rules::{parse_rules, Engine, KnowledgeBase, NaiveEngine};
use agentgrid_store::{AggKind, Classifier, LabelFilter, ManagementStore, StoreBackend};

/// Execution model for the live-grid experiments; all three produce
/// byte-identical reports on the seeded scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RuntimeChoice {
    /// In-order deterministic stepper (the default).
    Deterministic,
    /// One OS thread per container.
    Threaded,
    /// Work-stealing pool over collector containers.
    Pool,
}

/// Builds the configured grid on the chosen runtime, runs it, and
/// returns the report plus overload stats (when bounded mailboxes were
/// configured). One generic body keeps the wiring identical per model.
fn run_grid(
    builder: GridBuilder,
    runtime: RuntimeChoice,
    duration_ms: u64,
    tick_ms: u64,
) -> (GridReport, Option<OverloadStats>) {
    match runtime {
        RuntimeChoice::Deterministic => {
            let mut grid = builder.build();
            let report = grid.run(duration_ms, tick_ms);
            let stats = grid.overload_stats();
            (report, stats)
        }
        RuntimeChoice::Threaded => {
            let mut grid = builder.build_threaded();
            let report = grid.run(duration_ms, tick_ms);
            let stats = grid.overload_stats();
            (report, stats)
        }
        RuntimeChoice::Pool => {
            let mut grid = builder.build_pool();
            let report = grid.run(duration_ms, tick_ms);
            let stats = grid.overload_stats();
            (report, stats)
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_path = take_metrics_flag(&mut args);
    let trace_path = take_trace_flag(&mut args);
    let chaos_seed = take_chaos_flag(&mut args);
    let netchaos_seed = take_netchaos_flag(&mut args);
    let overload_seed = take_overload_flag(&mut args);
    let bench_json = take_bench_json_flag(&mut args);
    let store_bench_json = take_store_bench_json_flag(&mut args);
    let sharded_shards = take_sharded_flag(&mut args);
    let shard_bench_json = take_shard_bench_json_flag(&mut args);
    // `--sharded N SEED`: the bare number after the flags is the seed.
    let sharded_seed = sharded_shards.and_then(|_| {
        args.iter()
            .position(|a| a.parse::<u64>().is_ok())
            .map(|i| args.remove(i).parse().expect("position checked"))
    });
    let runtime = take_runtime_flag(&mut args);
    let store = take_store_flag(&mut args);
    let telemetry = (metrics_path.is_some() || trace_path.is_some()).then(Telemetry::new);
    if let (Some(_), Some(t)) = (&trace_path, &telemetry) {
        t.flight_recorder().enable();
        t.pool_profiler().enable();
    }
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        if args.is_empty()
            && (chaos_seed.is_some()
                || netchaos_seed.is_some()
                || overload_seed.is_some()
                || bench_json.is_some()
                || store_bench_json.is_some()
                || sharded_shards.is_some())
        {
            let mut only = Vec::new();
            if chaos_seed.is_some() {
                only.push("chaos");
            }
            if netchaos_seed.is_some() {
                only.push("netchaos");
            }
            if overload_seed.is_some() {
                only.push("overload");
            }
            if bench_json.is_some() {
                only.push("bench");
            }
            if store_bench_json.is_some() {
                only.push("store-bench");
            }
            if sharded_shards.is_some() {
                only.push("sharded");
            }
            only
        } else {
            vec![
                "table1",
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "crossover",
                "lb",
                "scaling",
                "mobility",
                "chaos",
            ]
        }
    } else {
        args.iter().map(String::as_str).collect()
    };
    for experiment in wanted {
        match experiment {
            "table1" => table1(),
            "fig1" => fig1(),
            "fig2" => fig2(telemetry.as_ref(), runtime, store),
            "fig3" => fig3(),
            "fig4" => fig4(),
            "fig5" => fig5(),
            "fig6" => fig6(),
            "crossover" => crossover(),
            "lb" => lb_ablation(telemetry.as_ref(), runtime, store),
            "scaling" => scaling(),
            "mobility" => mobility(telemetry.as_ref(), store),
            "chaos" => chaos(chaos_seed.unwrap_or(42), telemetry.as_ref(), runtime, store),
            "netchaos" => netchaos(netchaos_seed.unwrap_or(42), telemetry.as_ref(), store),
            "overload" => overload(
                overload_seed.unwrap_or(7),
                telemetry.as_ref(),
                runtime,
                store,
            ),
            "bench" => bench_inference(bench_json.as_deref()),
            "store-bench" => store_bench(store_bench_json.as_deref()),
            "sharded" => sharded(
                sharded_shards.unwrap_or(4),
                sharded_seed.unwrap_or(42),
                shard_bench_json.as_deref(),
            ),
            other => eprintln!("unknown experiment `{other}` (try `all`)"),
        }
    }
    if let (Some(path), Some(telemetry)) = (&metrics_path, &telemetry) {
        write_metrics(path, telemetry);
    }
    if let (Some(path), Some(telemetry)) = (&trace_path, &telemetry) {
        write_trace(path, telemetry);
    }
}

/// Removes `--metrics <path>` (or `--metrics=<path>`) from `args` and
/// returns the path, if present.
fn take_metrics_flag(args: &mut Vec<String>) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == "--metrics") {
        if i + 1 >= args.len() {
            eprintln!("--metrics needs a path argument");
            std::process::exit(2);
        }
        let path = args.remove(i + 1);
        args.remove(i);
        return Some(path);
    }
    if let Some(i) = args.iter().position(|a| a.starts_with("--metrics=")) {
        let path = args.remove(i)["--metrics=".len()..].to_owned();
        return Some(path);
    }
    None
}

/// Removes `--trace <path>` (or `--trace=<path>`) from `args` and
/// returns the path, if present.
fn take_trace_flag(args: &mut Vec<String>) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        if i + 1 >= args.len() {
            eprintln!("--trace needs a path argument");
            std::process::exit(2);
        }
        let path = args.remove(i + 1);
        args.remove(i);
        return Some(path);
    }
    if let Some(i) = args.iter().position(|a| a.starts_with("--trace=")) {
        let path = args.remove(i)["--trace=".len()..].to_owned();
        return Some(path);
    }
    None
}

/// Removes `--chaos <seed>` (or `--chaos=<seed>`) from `args` and
/// returns the seed, if present.
fn take_chaos_flag(args: &mut Vec<String>) -> Option<u64> {
    let parse = |raw: &str| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("--chaos needs an unsigned integer seed, got `{raw}`");
            std::process::exit(2);
        })
    };
    if let Some(i) = args.iter().position(|a| a == "--chaos") {
        if i + 1 >= args.len() {
            eprintln!("--chaos needs a seed argument");
            std::process::exit(2);
        }
        let raw = args.remove(i + 1);
        args.remove(i);
        return Some(parse(&raw));
    }
    if let Some(i) = args.iter().position(|a| a.starts_with("--chaos=")) {
        let raw = args.remove(i)["--chaos=".len()..].to_owned();
        return Some(parse(&raw));
    }
    None
}

/// Removes `--netchaos <seed>` (or `--netchaos=<seed>`) from `args` and
/// returns the seed, if present.
fn take_netchaos_flag(args: &mut Vec<String>) -> Option<u64> {
    let parse = |raw: &str| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("--netchaos needs an unsigned integer seed, got `{raw}`");
            std::process::exit(2);
        })
    };
    if let Some(i) = args.iter().position(|a| a == "--netchaos") {
        if i + 1 >= args.len() {
            eprintln!("--netchaos needs a seed argument");
            std::process::exit(2);
        }
        let raw = args.remove(i + 1);
        args.remove(i);
        return Some(parse(&raw));
    }
    if let Some(i) = args.iter().position(|a| a.starts_with("--netchaos=")) {
        let raw = args.remove(i)["--netchaos=".len()..].to_owned();
        return Some(parse(&raw));
    }
    None
}

/// Removes `--overload <seed>` (or `--overload=<seed>`) from `args` and
/// returns the seed, if present.
fn take_overload_flag(args: &mut Vec<String>) -> Option<u64> {
    let parse = |raw: &str| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("--overload needs an unsigned integer seed, got `{raw}`");
            std::process::exit(2);
        })
    };
    if let Some(i) = args.iter().position(|a| a == "--overload") {
        if i + 1 >= args.len() {
            eprintln!("--overload needs a seed argument");
            std::process::exit(2);
        }
        let raw = args.remove(i + 1);
        args.remove(i);
        return Some(parse(&raw));
    }
    if let Some(i) = args.iter().position(|a| a.starts_with("--overload=")) {
        let raw = args.remove(i)["--overload=".len()..].to_owned();
        return Some(parse(&raw));
    }
    None
}

/// Removes `--runtime <name>` (or `--runtime=<name>`) from `args` and
/// returns the chosen execution model; defaults to the deterministic
/// stepper.
fn take_runtime_flag(args: &mut Vec<String>) -> RuntimeChoice {
    let parse = |raw: &str| match raw {
        "deterministic" => RuntimeChoice::Deterministic,
        "threaded" => RuntimeChoice::Threaded,
        "pool" => RuntimeChoice::Pool,
        other => {
            eprintln!("--runtime must be deterministic, threaded or pool, got `{other}`");
            std::process::exit(2);
        }
    };
    if let Some(i) = args.iter().position(|a| a == "--runtime") {
        if i + 1 >= args.len() {
            eprintln!("--runtime needs an argument (deterministic, threaded or pool)");
            std::process::exit(2);
        }
        let raw = args.remove(i + 1);
        args.remove(i);
        return parse(&raw);
    }
    if let Some(i) = args.iter().position(|a| a.starts_with("--runtime=")) {
        let raw = args.remove(i)["--runtime=".len()..].to_owned();
        return parse(&raw);
    }
    RuntimeChoice::Deterministic
}

/// Removes `--store <backend>` (or `--store=<backend>`) from `args` and
/// returns the chosen time-series backend; defaults to the chunked
/// engine.
fn take_store_flag(args: &mut Vec<String>) -> StoreBackend {
    let parse = |raw: &str| {
        StoreBackend::parse(raw).unwrap_or_else(|| {
            eprintln!("--store must be chunked or naive, got `{raw}`");
            std::process::exit(2);
        })
    };
    if let Some(i) = args.iter().position(|a| a == "--store") {
        if i + 1 >= args.len() {
            eprintln!("--store needs an argument (chunked or naive)");
            std::process::exit(2);
        }
        let raw = args.remove(i + 1);
        args.remove(i);
        return parse(&raw);
    }
    if let Some(i) = args.iter().position(|a| a.starts_with("--store=")) {
        let raw = args.remove(i)["--store=".len()..].to_owned();
        return parse(&raw);
    }
    StoreBackend::default()
}

/// Removes `--store-bench-json <path>` (or `--store-bench-json=<path>`)
/// from `args` and returns the path, if present.
fn take_store_bench_json_flag(args: &mut Vec<String>) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == "--store-bench-json") {
        if i + 1 >= args.len() {
            eprintln!("--store-bench-json needs a path argument");
            std::process::exit(2);
        }
        let path = args.remove(i + 1);
        args.remove(i);
        return Some(path);
    }
    if let Some(i) = args
        .iter()
        .position(|a| a.starts_with("--store-bench-json="))
    {
        let path = args.remove(i)["--store-bench-json=".len()..].to_owned();
        return Some(path);
    }
    None
}

/// Removes `--sharded <n>` (or `--sharded=<n>`) from `args` and returns
/// the shard count, if present.
fn take_sharded_flag(args: &mut Vec<String>) -> Option<usize> {
    let parse = |raw: &str| {
        let shards: usize = raw.parse().unwrap_or_else(|_| {
            eprintln!("--sharded needs a shard count, got `{raw}`");
            std::process::exit(2);
        });
        if shards == 0 {
            eprintln!("--sharded needs at least one shard");
            std::process::exit(2);
        }
        shards
    };
    if let Some(i) = args.iter().position(|a| a == "--sharded") {
        if i + 1 >= args.len() {
            eprintln!("--sharded needs a shard count argument");
            std::process::exit(2);
        }
        let raw = args.remove(i + 1);
        args.remove(i);
        return Some(parse(&raw));
    }
    if let Some(i) = args.iter().position(|a| a.starts_with("--sharded=")) {
        let raw = args.remove(i)["--sharded=".len()..].to_owned();
        return Some(parse(&raw));
    }
    None
}

/// Removes `--shard-bench-json <path>` (or `--shard-bench-json=<path>`)
/// from `args` and returns the path, if present.
fn take_shard_bench_json_flag(args: &mut Vec<String>) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == "--shard-bench-json") {
        if i + 1 >= args.len() {
            eprintln!("--shard-bench-json needs a path argument");
            std::process::exit(2);
        }
        let path = args.remove(i + 1);
        args.remove(i);
        return Some(path);
    }
    if let Some(i) = args
        .iter()
        .position(|a| a.starts_with("--shard-bench-json="))
    {
        let path = args.remove(i)["--shard-bench-json=".len()..].to_owned();
        return Some(path);
    }
    None
}

/// Removes `--bench-json <path>` (or `--bench-json=<path>`) from `args`
/// and returns the path, if present.
fn take_bench_json_flag(args: &mut Vec<String>) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == "--bench-json") {
        if i + 1 >= args.len() {
            eprintln!("--bench-json needs a path argument");
            std::process::exit(2);
        }
        let path = args.remove(i + 1);
        args.remove(i);
        return Some(path);
    }
    if let Some(i) = args.iter().position(|a| a.starts_with("--bench-json=")) {
        let path = args.remove(i)["--bench-json=".len()..].to_owned();
        return Some(path);
    }
    None
}

/// Writes the telemetry snapshot to `path`: JSON for `.json` paths,
/// Prometheus text format otherwise; `-` streams Prometheus text to
/// stdout.
fn write_metrics(path: &str, telemetry: &TelemetryHandle) {
    if path == "-" {
        print!("{}", telemetry.prometheus());
        return;
    }
    let rendered = if path.ends_with(".json") {
        telemetry.json()
    } else {
        telemetry.prometheus()
    };
    if let Err(err) = std::fs::write(path, &rendered) {
        eprintln!("failed to write metrics to {path}: {err}");
        std::process::exit(1);
    }
    println!(
        "\nmetrics: {} samples written to {path}",
        telemetry.snapshot().samples.len()
    );
}

/// Writes the Chrome-trace / Perfetto JSON export to `path`.
fn write_trace(path: &str, telemetry: &TelemetryHandle) {
    let rendered = telemetry.chrome_trace();
    if let Err(err) = std::fs::write(path, &rendered) {
        eprintln!("failed to write trace to {path}: {err}");
        std::process::exit(1);
    }
    println!(
        "\ntrace: {} task spans, {} flight-recorder events written to {path}",
        telemetry.task_spans().len(),
        telemetry.flight_recorder().len(),
    );
}

fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Table 1: relative times of management tasks.
fn table1() {
    banner("Table 1 — relative times of management tasks");
    print!("{}", CostModel::table1().render());
}

/// Figure 1: the traditional management workflow, executed and traced.
fn fig1() {
    banner("Figure 1 — traditional network management workflow (executed)");
    let mut network = standard_network(1, 4, 7);
    network.tick_all(60_000);
    let kb = KnowledgeBase::from_rules(parse_rules(DEFAULT_RULES).expect("rules parse"));
    let mut store = ManagementStore::default();
    let (alerts, trace) = workflow::run_pass(&mut network, &mut store, &kb, 60_000);
    print!("{}", trace.render());
    println!("management information produced: {} alerts", alerts.len());
}

/// Figure 2: the full agent-grid architecture, live, over two sites.
fn fig2(telemetry: Option<&TelemetryHandle>, runtime: RuntimeChoice, store: StoreBackend) {
    banner("Figure 2 — agent-grid architecture, live run over two sites");
    let mut builder = ManagementGrid::builder()
        .network(standard_network(2, 4, 11))
        .store_backend(store)
        .collectors_per_site(2)
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .analyzer("pg-2", 1.0, ALL_SKILLS)
        .fault(ScheduledFault::from(
            "site-0-dev2",
            FaultKind::CpuRunaway,
            120_000,
        ))
        .fault(ScheduledFault::from(
            "site-1-dev0",
            FaultKind::LinkDown(2),
            180_000,
        ));
    if let Some(t) = telemetry {
        builder = builder.telemetry(t.clone());
    }
    let (report, _) = run_grid(builder, runtime, 10 * 60_000, 60_000);
    print!("{}", report.render());
}

/// Figure 3: division of analysis tasks by knowledge/capacity/idleness.
fn fig3() {
    banner("Figure 3 — division of analysis tasks in the grid");
    let profiles = vec![
        // "Container A has computational capacity to analyze X"
        ResourceProfile::new("container-a", 4.0, 1.0, 8192, ["x-analysis"]),
        // "Container B has knowledge to analyze W"
        ResourceProfile::new("container-b", 1.0, 1.0, 2048, ["w-analysis"]),
        // "C replies, as it is idle, has capacity to process ... Y"
        ResourceProfile::new("container-c", 1.0, 1.0, 2048, ["y-analysis", "x-analysis"]),
    ];
    let tasks = vec![
        AnalysisTask::new("info-x", "x-analysis", "x", 1, 400),
        AnalysisTask::new("info-y", "y-analysis", "y", 1, 200),
        AnalysisTask::new("info-w", "w-analysis", "w", 1, 300),
    ];
    let mut broker = Broker::new(KnowledgeCapacityIdle);
    let division = broker.divide(tasks, profiles);
    print!("{}", division.trace());
}

/// Figure 4: container registration with the grid root's directory.
fn fig4() {
    banner("Figure 4 — container joins the grid and registers its profile");
    let mut df = agentgrid_platform::DirectoryFacilitator::new();
    let profile = ResourceProfile::new("container-1", 2.0, 1.5, 4096, ["cpu", "disk"]);
    println!(
        "container-1 -> root: register (cpu {:.1}, disk {:.1}, mem {} MB, skills {:?})",
        profile.cpu_capacity, profile.disk_capacity, profile.memory_mb, profile.skills
    );
    df.register_container(profile);
    println!("root records the profile in directory D1:");
    for p in df.container_profiles() {
        println!(
            "  D1[{}] = capacity {:.1}, load {:.2}, skills {:?}",
            p.container, p.cpu_capacity, p.load, p.skills
        );
    }
    println!("root may now submit jobs to container-1 based on D1.");
}

/// Figure 5: the architecture without agent grids (per-site silos).
fn fig5() {
    banner("Figure 5 — architecture without agent grids (isolated sites)");
    let mut mas = MultiAgentSystem::new(standard_network(2, 4, 13), 2).with_fault(
        ScheduledFault::from("site-0-dev2", FaultKind::CpuRunaway, 120_000),
    );
    let reports = mas.run(10 * 60_000, 60_000);
    for (site, report) in &reports {
        println!(
            "site {site}: {} records stored locally, {} alerts (no cross-site sharing)",
            report.records,
            report.alerts.len()
        );
    }
    println!("messages delivered: {}", mas.messages_delivered());
}

/// Figure 6: per-host resource utilization under the three architectures.
fn fig6() {
    banner("Figure 6 — compared performances of the three architectures");
    println!("workload: 10 requests of each type (A, B, C); costs from Table 1\n");
    for (label, report) in fig6_reports(10) {
        println!("--- ({label}) ---");
        println!("makespan: {} units", report.makespan());
        print!("{}", report.utilization_table());
        let (host, kind, busy) = report.bottleneck().expect("non-empty run");
        println!("bottleneck: {host}/{kind} ({busy} busy units)");
        println!("timeline (time, left to right):");
        print!("{}", report.gantt(56));
        println!();
    }
}

/// Extension: where does the grid become advantageous? (paper §5,
/// "determining more clearly the point at which ...").
fn crossover() {
    banner("Extension — crossover: mean completion time vs workload size");
    println!(
        "{:>7} {:>14} {:>14} {:>14}",
        "rounds", "centralized", "multi-agent", "agent-grid"
    );
    for rounds in [1, 2, 3, 5, 8, 10, 20, 50, 100, 200] {
        let [(_, cen), (_, mas), (_, grid)] = mean_completions(rounds);
        println!("{rounds:>7} {cen:>14.1} {mas:>14.1} {grid:>14.1}");
    }
    // Locate the smallest workload where the grid's mean completion is
    // strictly best.
    let mut crossover = None;
    for rounds in 1..=50 {
        let [(_, cen), (_, mas), (_, grid)] = mean_completions(rounds);
        if grid < mas && grid < cen {
            crossover = Some(rounds);
            break;
        }
    }
    match crossover {
        Some(rounds) => println!("\ngrid wins on mean completion from {rounds} round(s) on"),
        None => println!("\nno crossover up to 50 rounds"),
    }
}

/// Extension: load-balancing policy ablation on the live grid.
fn lb_ablation(telemetry: Option<&TelemetryHandle>, runtime: RuntimeChoice, store: StoreBackend) {
    banner("Extension — load-balancing policy ablation (live grid)");
    fn run_with(
        policy: impl LoadBalancer + 'static,
        telemetry: Option<&TelemetryHandle>,
        runtime: RuntimeChoice,
        store: StoreBackend,
    ) -> (String, String) {
        let name = policy.name().to_owned();
        let mut builder = ManagementGrid::builder()
            .network(standard_network(1, 6, 17))
            .store_backend(store)
            .collectors_per_site(2)
            .analyzer("pg-fast", 4.0, ALL_SKILLS)
            .analyzer("pg-slow", 1.0, ALL_SKILLS)
            .policy(policy);
        if let Some(t) = telemetry {
            builder = builder.telemetry(t.clone());
        }
        let (report, _) = run_grid(builder, runtime, 10 * 60_000, 60_000);
        let per = report.tasks_per_container();
        let fast = per.get("pg-fast").copied().unwrap_or(0);
        let slow = per.get("pg-slow").copied().unwrap_or(0);
        (
            name,
            format!(
                "pg-fast {fast:>3} tasks, pg-slow {slow:>3} tasks, unassigned {}",
                report.unassigned
            ),
        )
    }
    for (name, line) in [
        run_with(KnowledgeCapacityIdle, telemetry, runtime, store),
        run_with(ContractNet, telemetry, runtime, store),
        run_with(LeastLoaded, telemetry, runtime, store),
        run_with(RoundRobin::default(), telemetry, runtime, store),
        run_with(Random::new(42), telemetry, runtime, store),
    ] {
        println!("{name:<24} {line}");
    }
    println!("\n(knowledge-capacity-idle and contract-net route more work to the");
    println!(" 4x-capacity container; round-robin/random split evenly.)");
}

/// Extension: grid scaling — makespan vs number of analysis hosts.
fn scaling() {
    banner("Extension — scaling: agent-grid makespan vs analysis hosts");
    println!(
        "{:>10} {:>10} {:>16}",
        "analyzers", "makespan", "peak-utilization"
    );
    for analyzers in [1, 2, 4, 8, 16] {
        let report = grid_scaling_report(50, analyzers);
        println!(
            "{analyzers:>10} {:>10} {:>15.1}%",
            report.makespan(),
            report.peak_utilization() * 100.0
        );
    }
}

/// Extension: mobility — migrating an analyzer to a spare container.
fn mobility(telemetry: Option<&TelemetryHandle>, store: StoreBackend) {
    banner("Extension — mobility: analyzer migration to spare capacity");
    let mut builder = ManagementGrid::builder()
        .network(standard_network(1, 6, 23))
        .store_backend(store)
        .collectors_per_site(2)
        .analyzer("pg-1", 1.0, ALL_SKILLS);
    if let Some(t) = telemetry {
        builder = builder.telemetry(t.clone());
    }
    let mut grid = builder.build();
    // A spare container joins the grid (profile registered, no agent).
    grid.platform_mut().add_container("spare-1");
    grid.platform_mut()
        .df_mut()
        .register_container(ResourceProfile::new("spare-1", 2.0, 1.0, 8192, ALL_SKILLS));
    let before = grid.run(6 * 60_000, 60_000);
    let load_before = grid
        .platform_mut()
        .df()
        .container_profile("pg-1")
        .map(|p| p.load)
        .unwrap_or(0.0);
    println!(
        "after 6 min: pg-1 load {:.2}, {} tasks on pg-1",
        load_before,
        before
            .tasks_per_container()
            .get("pg-1")
            .copied()
            .unwrap_or(0)
    );
    let rebalancer = Rebalancer {
        high_watermark: load_before.clamp(0.01, 0.9),
        low_watermark: 0.25,
    };
    let migrations = rebalancer.rebalance(grid.platform_mut());
    for m in &migrations {
        println!("migrated {} : {} -> {}", m.agent, m.from, m.to);
    }
    let after = grid.run(6 * 60_000, 60_000);
    let per = after.tasks_per_container();
    println!(
        "after migration: spare-1 carries {} of {} total tasks",
        per.get("spare-1").copied().unwrap_or(0),
        after.assignments.len()
    );
}

/// Chaos experiment: seeded failure injection against the recovering
/// grid, run twice on the deterministic runtime to prove the whole
/// crash-detect-re-broker sequence is reproducible. Exits nonzero if
/// any task is permanently lost or the replay diverges, so CI can use
/// it as a smoke check.
fn chaos(
    seed: u64,
    telemetry: Option<&TelemetryHandle>,
    runtime: RuntimeChoice,
    store: StoreBackend,
) {
    banner(&format!(
        "Chaos — seeded failures vs the recovery layer (seed {seed})"
    ));
    let horizon = 20 * 60_000;
    let containers = vec!["pg-1".to_string(), "pg-2".to_string()];
    let plan = ChaosPlan::seeded(seed, &containers, horizon);
    println!("schedule:");
    for (at_ms, action) in plan.events() {
        println!("  t={:>4}s {action:?}", at_ms / 1000);
    }
    let run_once = |telemetry: Option<&TelemetryHandle>| {
        let mut builder = ManagementGrid::builder()
            .network(standard_network(1, 4, 7))
            .store_backend(store)
            .collectors_per_site(2)
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS)
            .recovery(RecoveryConfig::seeded(seed))
            .chaos(plan.clone());
        if let Some(t) = telemetry {
            builder = builder.telemetry(t.clone());
        }
        run_grid(builder, runtime, horizon, 60_000).0
    };
    let first = run_once(telemetry);
    // The replay gets a *fresh* sink when the first run had one: the
    // task-latency line in the render is sim-time-deterministic, so the
    // reports must still match byte for byte — and do not when only one
    // run carries telemetry.
    let fresh = telemetry.map(|_| Telemetry::new());
    let second = run_once(fresh.as_ref());

    let distinct: std::collections::BTreeSet<&str> = first
        .assignments
        .iter()
        .map(|(id, _)| id.as_str())
        .collect();
    println!(
        "tasks: {} awards over {} distinct tasks, {} completed, \
         {} re-brokered, {} retries, {} escalations, {} outstanding at horizon",
        first.assignments.len(),
        distinct.len(),
        first.tasks_completed,
        first.rebrokered.len(),
        first.retries,
        first.escalations,
        first.outstanding.len(),
    );
    let lost = first.lost_tasks();
    println!("lost tasks: {}", lost.len());
    let identical = first.render() == second.render()
        && first.completed_ids == second.completed_ids
        && first.assignments == second.assignments;
    println!(
        "deterministic replay: {}",
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    if !lost.is_empty() || !identical {
        eprintln!("chaos check FAILED (lost: {lost:?}, identical: {identical})");
        std::process::exit(1);
    }
}

/// Network-chaos experiment: a seeded composable network adversary
/// (probabilistic loss and duplication on every link, delay + jitter +
/// reordering into one analyzer, and a named partition that heals)
/// against the reliable-delivery protocol and the recovery layer. The
/// scenario runs twice on the deterministic stepper — the whole
/// drop/delay/duplicate/retransmit sequence is a pure function of the
/// seed — and once on the pool runtime, which must match byte for
/// byte. Exits nonzero if any task is permanently lost, any replay
/// diverges, or the reliability layer never retransmitted/suppressed
/// anything (an idle defence proves nothing), so CI can use it as a
/// smoke check.
fn netchaos(seed: u64, telemetry: Option<&TelemetryHandle>, store: StoreBackend) {
    banner(&format!(
        "Net chaos — seeded network adversary vs reliable delivery (seed {seed})"
    ));
    let horizon = 20 * 60_000;
    let containers: Vec<String> = ["pg-1", "pg-2", "pg-root-ct", "clg", "ig", "cg-site-0"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let plan = ChaosPlan::seeded_net(seed, &containers, horizon);
    println!("schedule:");
    for (at_ms, action) in plan.events() {
        println!("  t={:>4}s {action:?}", at_ms / 1000);
    }
    let run_once = |telemetry: Option<&TelemetryHandle>, pool: bool| {
        let mut builder = ManagementGrid::builder()
            .network(standard_network(1, 4, 7))
            .store_backend(store)
            .collectors_per_site(2)
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS)
            .recovery(RecoveryConfig::seeded(seed))
            .net_adversary(seed)
            .reliability(ReliabilityConfig::seeded(seed))
            .chaos(plan.clone())
            // A device fault mid-run so Alert-class traffic crosses the
            // adversary too — reliable delivery must land every alert.
            .fault(ScheduledFault::from(
                "site-0-dev2",
                FaultKind::CpuRunaway,
                120_000,
            ));
        if let Some(t) = telemetry {
            builder = builder.telemetry(t.clone());
        }
        let runtime = if pool {
            RuntimeChoice::Pool
        } else {
            RuntimeChoice::Deterministic
        };
        run_grid(builder, runtime, horizon, 60_000).0
    };
    let first = run_once(telemetry, false);
    // Fresh sink for the replay (see `chaos`): keeps the rendered
    // reports comparable when the first run carries telemetry.
    let fresh = telemetry.map(|_| Telemetry::new());
    let second = run_once(fresh.as_ref(), false);
    let fresh_pool = telemetry.map(|_| Telemetry::new());
    let pool = run_once(fresh_pool.as_ref(), true);

    let net = first.net.unwrap_or_default();
    println!(
        "adversary: {} dropped, {} partition-dropped, {} delayed, {} duplicated, {} reordered",
        net.dropped, net.partition_dropped, net.delayed, net.duplicated, net.reordered,
    );
    println!(
        "reliability: {} retransmits, {} delivered after retry, {} duplicates suppressed, \
         {} retransmit overflows",
        net.retransmits, net.delivered_after_retry, net.dup_suppressed, net.retransmit_overflow,
    );
    println!(
        "tasks: {} awards, {} completed, {} re-brokered, {} retries, \
         {} outstanding at horizon, {} alerts",
        first.assignments.len(),
        first.tasks_completed,
        first.rebrokered.len(),
        first.retries,
        first.outstanding.len(),
        first.alerts.len(),
    );
    let lost = first.lost_tasks();
    println!("lost tasks: {}", lost.len());
    let replay_identical = first.render() == second.render()
        && first.completed_ids == second.completed_ids
        && first.assignments == second.assignments;
    let pool_identical = first.render() == pool.render()
        && first.completed_ids == pool.completed_ids
        && first.assignments == pool.assignments;
    println!(
        "deterministic replay: {}",
        if replay_identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "pool runtime: {}",
        if pool_identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    let exercised = net.retransmits > 0 && net.dup_suppressed > 0 && !first.alerts.is_empty();
    if lost.is_empty() && replay_identical && pool_identical && exercised {
        println!(
            "netchaos check PASSED ({} retransmits, {} duplicates suppressed, 0 lost)",
            net.retransmits, net.dup_suppressed
        );
    } else {
        eprintln!(
            "netchaos check FAILED (lost: {lost:?}, replay identical: {replay_identical}, \
             pool identical: {pool_identical}, retransmits: {}, dup_suppressed: {})",
            net.retransmits, net.dup_suppressed
        );
        std::process::exit(1);
    }
}

/// Median wall time of `runs` invocations of `f`, in nanoseconds.
fn median_ns(runs: usize, mut f: impl FnMut() -> u64) -> (u128, u64) {
    let mut samples = Vec::with_capacity(runs);
    let mut result = 0;
    for _ in 0..runs {
        let start = std::time::Instant::now();
        result = f();
        samples.push(start.elapsed().as_nanos());
    }
    samples.sort_unstable();
    (samples[samples.len() / 2], result)
}

/// Inference micro-benchmark: the incremental (agenda + alpha-index)
/// engine vs the naive reference matcher at 10/100/1000 facts, plus the
/// store's whole-series stats hot loop. Prints a table; with a path,
/// also writes the medians as JSON (the `BENCH_pr5.json` artifact).
fn bench_inference(json_path: Option<&str>) {
    banner("Bench — incremental vs naive inference; store stats hot path");
    const MAX_CYCLES: u64 = 100_000;
    let kb = std::sync::Arc::new(inference_kb());
    println!(
        "{:>7} {:>14} {:>14} {:>9} {:>15} {:>15}",
        "facts", "naive-ns", "incremental-ns", "speedup", "naive-matches", "incr-matches"
    );
    let mut rows = Vec::new();
    for n in [10usize, 100, 1000] {
        let facts = inference_facts(n);
        let runs = if n >= 1000 { 5 } else { 15 };
        let (naive_ns, naive_matches) = median_ns(runs, || {
            let mut engine = NaiveEngine::new((*kb).clone()).with_max_cycles(MAX_CYCLES);
            for fact in &facts {
                engine.insert(fact.clone());
            }
            engine.run().stats.match_attempts
        });
        let (incr_ns, incr_matches) = median_ns(runs, || {
            let mut engine = Engine::shared(std::sync::Arc::clone(&kb)).with_max_cycles(MAX_CYCLES);
            for fact in &facts {
                engine.insert(fact.clone());
            }
            engine.run().stats.match_attempts
        });
        let speedup = naive_ns as f64 / incr_ns.max(1) as f64;
        println!(
            "{n:>7} {naive_ns:>14} {incr_ns:>14} {speedup:>8.1}x {naive_matches:>15} {incr_matches:>15}"
        );
        rows.push(format!(
            "    {{\"facts\": {n}, \"naive_ns\": {naive_ns}, \"incremental_ns\": {incr_ns}, \
             \"speedup\": {speedup:.2}, \"naive_match_attempts\": {naive_matches}, \
             \"incremental_match_attempts\": {incr_matches}}}"
        ));
    }
    let store = inference_store(1000);
    let (store_ns, _) = median_ns(50, || {
        let mut acc = 0.0;
        for device in 0..5 {
            let device = format!("host-{device}");
            for metric in ["cpu.load.1", "storage.ram.used"] {
                let stats = store
                    .stats(&device, metric, 0, u64::MAX)
                    .expect("series populated");
                acc += stats.mean + stats.max;
                acc += store.latest(&device, metric).expect("series populated").1;
            }
        }
        acc.to_bits().count_ones() as u64
    });
    println!("store stats hot loop (10 series x 1000 points): {store_ns} ns");
    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"inference\": [\n{}\n  ],\n  \"store_stats_hot_loop_ns\": {store_ns}\n}}\n",
            rows.join(",\n")
        );
        if let Err(err) = std::fs::write(path, &json) {
            eprintln!("failed to write bench results to {path}: {err}");
            std::process::exit(1);
        }
        println!("bench results written to {path}");
    }
}

/// Store micro-benchmark: the chunked engine vs the `NaiveStore`
/// executable spec on the SNMP-shaped workload (twenty series: integer
/// gauges plus octet counters on a 60 s cadence) at 1k/100k/1M points.
/// Times ingest and a full windowed range-query sweep, and reports
/// bytes/sample. Prints a table; with a path, also writes the medians
/// as JSON (the `BENCH_pr8.json` artifact).
fn store_bench(json_path: Option<&str>) {
    banner("Store bench — naive spec vs chunked engine");
    println!("ingest + storage footprint:");
    println!(
        "{:>9} {:>13} {:>13} {:>8} {:>8} {:>8} {:>8}",
        "points", "naive-ins-ns", "chunk-ins-ns", "speedup", "naive-B", "chunk-B", "ratio"
    );
    let mut rows = Vec::new();
    let mut query_lines = Vec::new();
    for n in [1_000usize, 100_000, 1_000_000] {
        let records = store_workload(n);
        let runs = if n >= 1_000_000 {
            3
        } else if n >= 100_000 {
            5
        } else {
            15
        };
        let build = |backend: StoreBackend| {
            let mut store = ManagementStore::with_backend(backend, Classifier::standard());
            store.insert_all(records.iter().cloned());
            store
        };
        let (naive_ingest_ns, _) = median_ns(runs, || build(StoreBackend::Naive).len() as u64);
        let (chunked_ingest_ns, _) = median_ns(runs, || build(StoreBackend::Chunked).len() as u64);
        let naive = build(StoreBackend::Naive);
        let chunked = build(StoreBackend::Chunked);
        // Two range-query shapes over every series' full retention
        // window: the capacity-report "daily peak" sweep (where the
        // chunked engine absorbs whole-chunk summaries without
        // decompressing) and the consolidation "mean per ten minutes"
        // sweep (which decodes every point).
        let sweep = |store: &ManagementStore, step: u64, kind: AggKind| {
            store
                .query_windows(&LabelFilter::Any, 0, u64::MAX, step, kind)
                .iter()
                .map(|series| series.windows.len() as u64)
                .sum()
        };
        let (naive_peak_ns, naive_w) =
            median_ns(runs, || sweep(&naive, 1_440 * 60_000, AggKind::Max));
        let (chunked_peak_ns, chunked_w) =
            median_ns(runs, || sweep(&chunked, 1_440 * 60_000, AggKind::Max));
        assert_eq!(naive_w, chunked_w, "backends must agree");
        let (naive_mean_ns, naive_w) =
            median_ns(runs, || sweep(&naive, 10 * 60_000, AggKind::Mean));
        let (chunked_mean_ns, chunked_w) =
            median_ns(runs, || sweep(&chunked, 10 * 60_000, AggKind::Mean));
        assert_eq!(naive_w, chunked_w, "backends must agree");
        let naive_bps = naive.storage_bytes() as f64 / n as f64;
        let chunked_bps = chunked.storage_bytes() as f64 / n as f64;
        let ingest_speedup = naive_ingest_ns as f64 / chunked_ingest_ns.max(1) as f64;
        let peak_speedup = naive_peak_ns as f64 / chunked_peak_ns.max(1) as f64;
        let mean_speedup = naive_mean_ns as f64 / chunked_mean_ns.max(1) as f64;
        let ratio = naive_bps / chunked_bps;
        println!(
            "{n:>9} {naive_ingest_ns:>13} {chunked_ingest_ns:>13} {ingest_speedup:>7.1}x \
             {naive_bps:>8.2} {chunked_bps:>8.2} {ratio:>7.1}x"
        );
        query_lines.push(format!(
            "{n:>9} {naive_peak_ns:>13} {chunked_peak_ns:>13} {peak_speedup:>7.1}x \
             {naive_mean_ns:>13} {chunked_mean_ns:>13} {mean_speedup:>7.1}x"
        ));
        rows.push(format!(
            "    {{\"points\": {n}, \"naive_ingest_ns\": {naive_ingest_ns}, \
             \"chunked_ingest_ns\": {chunked_ingest_ns}, \"ingest_speedup\": {ingest_speedup:.2}, \
             \"naive_range_query_ns\": {naive_peak_ns}, \
             \"chunked_range_query_ns\": {chunked_peak_ns}, \
             \"range_query_speedup\": {peak_speedup:.2}, \
             \"naive_mean_query_ns\": {naive_mean_ns}, \
             \"chunked_mean_query_ns\": {chunked_mean_ns}, \
             \"mean_query_speedup\": {mean_speedup:.2}, \
             \"naive_bytes_per_sample\": {naive_bps:.2}, \
             \"chunked_bytes_per_sample\": {chunked_bps:.2}, \
             \"bytes_per_sample_reduction\": {ratio:.2}, \
             \"chunks\": {chunks}}}",
            chunks = chunked.chunk_count(),
        ));
    }
    println!("\nrange queries (peak = max/24 h windows, mean = mean/10 min windows):");
    println!(
        "{:>9} {:>13} {:>13} {:>8} {:>13} {:>13} {:>8}",
        "points", "peak-naive", "peak-chunk", "speedup", "mean-naive", "mean-chunk", "speedup"
    );
    for line in &query_lines {
        println!("{line}");
    }
    if let Some(path) = json_path {
        let json = format!("{{\n  \"store\": [\n{}\n  ]\n}}\n", rows.join(",\n"));
        if let Err(err) = std::fs::write(path, &json) {
            eprintln!("failed to write store bench results to {path}: {err}");
            std::process::exit(1);
        }
        println!("store bench results written to {path}");
    }
}

/// Overload experiment: a deliberately undersized grid (six collectors
/// on a tight cadence funnelling into one classifier) behind every
/// overload defence at once — bounded mailboxes with shed-by-priority,
/// the root's token-bucket admission gate, per-container circuit
/// breakers and collector pacing. Run twice on the deterministic
/// runtime; exits nonzero unless the burst actually shed messages, no
/// alert-class message was lost, the mailbox high-water stayed within
/// the cap, and the replay is bit-identical — so CI can use it as a
/// smoke check.
fn overload(
    seed: u64,
    telemetry: Option<&TelemetryHandle>,
    runtime: RuntimeChoice,
    store: StoreBackend,
) {
    banner(&format!(
        "Overload — burst traffic vs bounded mailboxes (seed {seed})"
    ));
    const CAP: usize = 3;
    let horizon = 20 * 60_000;
    println!(
        "config: mailbox cap {CAP} shed-by-priority, token bucket 4 (+2/window), \
         breakers on, pacing on"
    );
    let run_once = |telemetry: Option<&TelemetryHandle>| {
        let protection = OverloadConfig::new()
            .mailbox(CAP, OverflowPolicy::ShedByPriority)
            .admission(AdmissionConfig {
                bucket_capacity: 4,
                refill_per_window: 2,
                load_threshold: 0.9,
            })
            .breaker(BreakerConfig::default())
            .collector_pacing(true);
        let mut builder = ManagementGrid::builder()
            .network(standard_network(2, 4, seed))
            .store_backend(store)
            .collectors_per_site(3)
            .analyzer("pg-1", 1.0, ALL_SKILLS)
            .analyzer("pg-2", 1.0, ALL_SKILLS)
            .recovery(RecoveryConfig::seeded(seed))
            .overload(protection)
            .fault(ScheduledFault::from(
                "site-0-dev2",
                FaultKind::CpuRunaway,
                120_000,
            ));
        if let Some(t) = telemetry {
            builder = builder.telemetry(t.clone());
        }
        let (report, stats) = run_grid(builder, runtime, horizon, 60_000);
        (report, stats.expect("bounded mailboxes configured"))
    };
    let (first, stats) = run_once(telemetry);
    // Fresh sink for the replay (see `chaos`): keeps the rendered
    // reports comparable when the first run carries telemetry.
    let fresh = telemetry.map(|_| Telemetry::new());
    let (second, second_stats) = run_once(fresh.as_ref());

    println!("shed by class:");
    for class in MessageClass::ALL {
        println!("  {:<8} {}", class.as_label(), stats.shed(class));
    }
    println!("shed total: {}", stats.shed_total());
    println!("deferred deliveries: {}", stats.deferred);
    println!("mailbox high-water: {} (cap {CAP})", stats.highwater);
    println!("admission rejected: {}", first.rejected);
    println!("paced polls: {}", first.paced_polls);
    println!(
        "work done under pressure: {} tasks completed, {} alerts raised",
        first.tasks_completed,
        first.alerts.len()
    );
    let identical = first.render() == second.render()
        && first.completed_ids == second.completed_ids
        && first.assignments == second.assignments
        && stats == second_stats;
    println!(
        "deterministic replay: {}",
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    let alerts_shed = stats.shed(MessageClass::Alert);
    let ok = stats.shed_total() > 0 && alerts_shed == 0 && stats.highwater <= CAP && identical;
    if ok {
        println!(
            "overload check PASSED ({} shed, {} alerts lost, high-water {} <= cap {CAP})",
            stats.shed_total(),
            alerts_shed,
            stats.highwater
        );
    } else {
        eprintln!(
            "overload check FAILED (shed: {}, alerts shed: {alerts_shed}, \
             high-water: {}, identical: {identical})",
            stats.shed_total(),
            stats.highwater
        );
        std::process::exit(1);
    }
}

/// Rules for the 10k-device shard throughput tier. The default rule set
/// includes a two-pattern cross-device join (`correlated-cpu`) whose
/// match cost is quadratic in device count *for every shard count* — at
/// 10 000 devices it would dwarf the pipeline under measurement (the
/// same reason `scenario_throughput.rs` trims its rule set). The cost
/// the shards actually cut is the task-fan-in × store-scan product, so
/// the bench keeps single-pattern alert rules plus a stats rule that
/// still forces the per-series consolidation sweep.
const SHARD_BENCH_RULES: &str = r#"
rule "high-cpu" salience 10 {
    when cpu(device: ?d, value: ?v)
    if ?v > 90
    then emit critical ?d "cpu load at ?v% on ?d"
}
rule "disk-pressure" salience 8 {
    when disk(device: ?d, value: ?v)
    if ?v >= 85
    then emit warning ?d "disk ?v% full on ?d"
}
rule "memory-pressure" salience 8 {
    when mem(device: ?d, value: ?v)
    if ?v >= 90
    then emit warning ?d "memory ?v% used on ?d"
}
rule "sustained-cpu" salience 5 {
    when stat(device: ?d, metric: "cpu.load.1", mean: ?m)
    if ?m > 80
    then emit warning ?d "sustained cpu pressure on ?d (mean ?m%)"
}
"#;

/// Sharded-federation experiment: the grid split into `shards` peer
/// domains (devices partitioned by site, one root + broker scope +
/// analyzer tier per shard) connected by the federation protocol. Two
/// deterministic phases with fully deterministic stdout, so CI can diff
/// two fresh runs of the same seed:
///
/// 1. **Cross-domain correlation** — CPU runaways injected into two
///    different shards; the run executes twice on the stepper and once
///    on the pool runtime (all three byte-identical), and a
///    `correlated-cpu` alert must fire on a `fed-s…` device alias,
///    proving a peer's summary correlated with a local fact.
/// 2. **Spill-over conservation** — a tight admission gate forces the
///    roots to spill work to their peers; every task in the federation
///    must be counted exactly once (created = completed + outstanding)
///    with zero losses, again bit-identically across a replay and the
///    pool runtime.
///
/// With `--shard-bench-json <path>`, a third phase times a
/// 10 000-device scenario on the pool runtime at 1 shard vs `shards`
/// and writes the measured throughputs to `<path>` (wall-clock output
/// — never part of the CI diff).
fn sharded(shards: usize, seed: u64, json_path: Option<&str>) {
    banner(&format!(
        "Sharded — federated domain grids ({shards} shard(s), seed {seed})"
    ));
    let sites = 2 * shards;
    let horizon = 20 * 60_000;
    println!("partitioning: {sites} sites over {shards} shard(s) (site i -> shard i mod {shards})");
    // The same analyzer pool regardless of shard count: any throughput
    // difference comes from the partitioning, not from extra capacity.
    let analyzer_pool = shards.max(2);
    let with_analyzers = |mut b: GridBuilder| {
        for a in 0..analyzer_pool {
            b = b.analyzer(format!("pg-{}", a + 1), 1.0, ALL_SKILLS);
        }
        b
    };

    // Phase 1 — cross-domain correlation under simultaneous runaways.
    println!("schedule:");
    println!("  t= 120s CpuRunaway on site-0-dev2 (shard 0)");
    if shards > 1 {
        println!("  t= 180s CpuRunaway on site-1-dev2 (shard 1)");
    }
    let build_correlation = || {
        let mut b = ManagementGrid::builder()
            .network(standard_network(sites, 4, seed))
            .collectors_per_site(1)
            .shards(shards)
            .recovery(RecoveryConfig::seeded(seed))
            .fault(ScheduledFault::from(
                "site-0-dev2",
                FaultKind::CpuRunaway,
                120_000,
            ));
        if shards > 1 {
            b = b.fault(ScheduledFault::from(
                "site-1-dev2",
                FaultKind::CpuRunaway,
                180_000,
            ));
        }
        with_analyzers(b)
    };
    let first = run_grid(
        build_correlation(),
        RuntimeChoice::Deterministic,
        horizon,
        60_000,
    )
    .0;
    let second = run_grid(
        build_correlation(),
        RuntimeChoice::Deterministic,
        horizon,
        60_000,
    )
    .0;
    let pool = run_grid(build_correlation(), RuntimeChoice::Pool, horizon, 60_000).0;
    let per_shard = if first.shard_created.is_empty() {
        "single domain".to_owned()
    } else {
        first
            .shard_created
            .iter()
            .enumerate()
            .map(|(s, n)| format!("s{s} {n}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!(
        "tasks: {} created ({per_shard}), {} completed, {} outstanding at horizon",
        first.tasks_created,
        first.tasks_completed,
        first.outstanding.len(),
    );
    println!(
        "federation: {} summaries sent, {} received, {} findings injected",
        first.federation.summaries_sent,
        first.federation.summaries_received,
        first.federation.injected_findings,
    );
    // Prefer the two-fact correlation (a peer's summary joined with a
    // local fact); any alert on a `fed-s…` alias still proves injection.
    let fed_alert = first
        .alerts
        .iter()
        .find(|a| a.rule == "correlated-cpu" && a.device.starts_with("fed-s"))
        .or_else(|| first.alerts.iter().find(|a| a.device.starts_with("fed-s")))
        .cloned();
    match &fed_alert {
        Some(a) => println!("cross-domain correlation: {} fired on {}", a.rule, a.device),
        None => println!("cross-domain correlation: no federated alert"),
    }
    let identical = |a: &GridReport, b: &GridReport| {
        a.render() == b.render()
            && a.completed_ids == b.completed_ids
            && a.assignments == b.assignments
    };
    let lost_a = first.lost_tasks().len();
    let unaccounted_a = first.unaccounted_tasks();
    let replay_a = identical(&first, &second);
    let pool_a = identical(&first, &pool);
    println!("unaccounted tasks: {unaccounted_a}, lost tasks: {lost_a}");
    println!(
        "deterministic replay: {}",
        if replay_a {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "pool runtime: {}",
        if pool_a { "bit-identical" } else { "DIVERGED" }
    );

    // Phase 2 — spill-over conservation under a tight admission gate.
    println!("\nspill-over under admission pressure (token bucket 2, +1/window):");
    let build_spill = || {
        let protection = OverloadConfig::new().admission(AdmissionConfig {
            bucket_capacity: 2,
            refill_per_window: 1,
            load_threshold: 0.9,
        });
        let b = ManagementGrid::builder()
            .network(standard_network(sites, 6, seed))
            .collectors_per_site(2)
            .shards(shards)
            .recovery(RecoveryConfig::seeded(seed))
            .overload(protection);
        with_analyzers(b)
    };
    let s_first = run_grid(build_spill(), RuntimeChoice::Deterministic, horizon, 60_000).0;
    let s_second = run_grid(build_spill(), RuntimeChoice::Deterministic, horizon, 60_000).0;
    let s_pool = run_grid(build_spill(), RuntimeChoice::Pool, horizon, 60_000).0;
    println!(
        "  tasks: {} created, {} completed, {} rejected at the gate, {} outstanding",
        s_first.tasks_created,
        s_first.tasks_completed,
        s_first.rejected,
        s_first.outstanding.len(),
    );
    println!(
        "  federation: {} spilled out, {} absorbed by peers, {} confirmed home",
        s_first.federation.spilled_out,
        s_first.federation.spilled_in,
        s_first.federation.spill_completed,
    );
    let lost_b = s_first.lost_tasks().len();
    let unaccounted_b = s_first.unaccounted_tasks();
    let replay_b = identical(&s_first, &s_second);
    let pool_b = identical(&s_first, &s_pool);
    println!("  unaccounted tasks: {unaccounted_b}, lost tasks: {lost_b}");
    println!(
        "  deterministic replay: {}",
        if replay_b {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "  pool runtime: {}",
        if pool_b { "bit-identical" } else { "DIVERGED" }
    );

    let fed_exercised = shards == 1
        || (first.federation.summaries_sent > 0
            && fed_alert.is_some()
            && s_first.federation.spilled_out > 0
            && s_first.federation.spill_completed > 0);
    let conserved = unaccounted_a == 0 && unaccounted_b == 0 && lost_a == 0 && lost_b == 0;
    let all_identical = replay_a && pool_a && replay_b && pool_b;
    if fed_exercised && conserved && all_identical {
        println!(
            "sharded check PASSED ({shards} shard(s), {} spilled, {} cross-domain alert(s), \
             0 unaccounted, 0 lost)",
            s_first.federation.spilled_out,
            u64::from(fed_alert.is_some()),
        );
    } else {
        eprintln!(
            "sharded check FAILED (federation exercised: {fed_exercised}, \
             unaccounted: {unaccounted_a}/{unaccounted_b}, lost: {lost_a}/{lost_b}, \
             identical: {replay_a}/{pool_a}/{replay_b}/{pool_b})"
        );
        std::process::exit(1);
    }

    // Phase 3 — 10k-device throughput, only when an artifact path was
    // given (wall-clock output, deliberately outside the CI diff).
    if let Some(path) = json_path {
        shard_throughput_bench(shards, seed, path);
    }
}

/// Times the 10 000-device scenario on the pool runtime at 1 shard vs
/// `shards`, prints the comparison, and writes the `BENCH_pr10.json`
/// artifact. Scenario throughput is records stored per wall-second:
/// both configurations ingest the identical record stream (asserted),
/// so the ratio is purely the wall-time ratio. The win is algorithmic,
/// not parallel-hardware: unsharded, every data-ready fans into tasks
/// that each scan the whole store (sites × devices compounding — the
/// quadratic called out in `scenario_throughput.rs`); sharded, each
/// root sees only its sites and each task scans only its shard's store.
fn shard_throughput_bench(shards: usize, seed: u64, path: &str) {
    const SITES: usize = 40;
    const DEVICES_PER_SITE: usize = 250;
    const HORIZON_MS: u64 = 5 * 60_000;
    const TICK_MS: u64 = 60_000;
    let devices = SITES * DEVICES_PER_SITE;
    let analyzer_pool = shards.max(2);
    println!(
        "\nthroughput: {devices} devices ({SITES} sites x {DEVICES_PER_SITE}), \
         pool runtime, {analyzer_pool} analyzers, {} simulated min",
        HORIZON_MS / 60_000
    );
    let run_at = |n: usize| {
        let mut b = ManagementGrid::builder()
            .network(standard_network(SITES, DEVICES_PER_SITE, seed))
            .collectors_per_site(1)
            .rules(SHARD_BENCH_RULES)
            .shards(n);
        for a in 0..analyzer_pool {
            b = b.analyzer(format!("pg-{}", a + 1), 1.0, ALL_SKILLS);
        }
        let mut grid = b.build_pool();
        let start = std::time::Instant::now();
        let report = grid.run(HORIZON_MS, TICK_MS);
        (report, start.elapsed())
    };
    println!(
        "{:>7} {:>12} {:>15} {:>17} {:>9}",
        "shards", "wall-ms", "records-stored", "records-per-sec", "speedup"
    );
    let (base_report, base_wall) = run_at(1);
    let base_tput = base_report.records_stored as f64 / base_wall.as_secs_f64();
    println!(
        "{:>7} {:>12} {:>15} {:>17.0} {:>8.2}x",
        1,
        base_wall.as_millis(),
        base_report.records_stored,
        base_tput,
        1.0
    );
    let (fed_report, fed_wall) = run_at(shards);
    // The federated stores hold the identical scenario stream plus the
    // peer findings the summaries injected; throughput counts only the
    // scenario records so both configurations share one numerator.
    let fed_scenario = fed_report.records_stored - fed_report.federation.injected_findings as usize;
    assert_eq!(
        base_report.records_stored, fed_scenario,
        "both configurations must ingest the identical record stream"
    );
    let fed_tput = fed_scenario as f64 / fed_wall.as_secs_f64();
    let speedup = fed_tput / base_tput;
    println!(
        "{:>7} {:>12} {:>15} {:>17.0} {:>8.2}x",
        shards,
        fed_wall.as_millis(),
        fed_scenario,
        fed_tput,
        speedup
    );
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"devices\": {devices},\n  \"sites\": {SITES},\n  \
         \"devices_per_site\": {DEVICES_PER_SITE},\n  \"seed\": {seed},\n  \
         \"horizon_ms\": {HORIZON_MS},\n  \"tick_ms\": {TICK_MS},\n  \
         \"runtime\": \"pool\",\n  \"host_cpus\": {host_cpus},\n  \
         \"analyzers\": {analyzer_pool},\n  \
         \"baseline\": {{\"shards\": 1, \"wall_ms\": {}, \"records_stored\": {}, \
         \"records_per_sec\": {:.0}}},\n  \
         \"federated\": {{\"shards\": {shards}, \"wall_ms\": {}, \"records_stored\": {}, \
         \"records_per_sec\": {:.0}}},\n  \"speedup\": {speedup:.2}\n}}\n",
        base_wall.as_millis(),
        base_report.records_stored,
        base_tput,
        fed_wall.as_millis(),
        fed_scenario,
        fed_tput,
    );
    if let Err(err) = std::fs::write(path, &json) {
        eprintln!("failed to write shard bench results to {path}: {err}");
        std::process::exit(1);
    }
    println!("shard bench results written to {path}");
}
