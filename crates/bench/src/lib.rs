//! Shared scenario builders for the benchmark harness and the `repro`
//! binary that regenerates every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use agentgrid::scenario::{run_architecture, Architecture, Workload};
use agentgrid::CostModel;
use agentgrid_des::{ResourceKind, SimReport};
use agentgrid_net::{Device, DeviceKind, Network};
use agentgrid_rules::{parse_rules, Fact, KnowledgeBase};
use agentgrid_store::{ManagementStore, Record};

/// All analysis skills the simulated metrics map to, plus correlation.
pub const ALL_SKILLS: [&str; 8] = [
    "cpu",
    "memory",
    "disk",
    "interface",
    "process",
    "system",
    "other",
    "correlation",
];

/// Builds a deterministic managed network: `sites` sites of
/// `devices_per_site` devices (router + switch + servers), seeded.
pub fn standard_network(sites: usize, devices_per_site: usize, seed: u64) -> Network {
    let mut network = Network::new();
    for s in 0..sites {
        let site = format!("site-{s}");
        for d in 0..devices_per_site {
            let name = format!("{site}-dev{d}");
            let kind = match d % 3 {
                0 => DeviceKind::Router,
                1 => DeviceKind::Switch,
                _ => DeviceKind::Server,
            };
            network.add_device(
                Device::builder(name, kind)
                    .site(&site)
                    .seed(seed.wrapping_add((s * 100 + d) as u64))
                    .build(),
            );
        }
    }
    network
}

/// Runs the three Figure-6 configurations on the paper workload.
pub fn fig6_reports(rounds: usize) -> [(String, SimReport); 3] {
    let costs = CostModel::table1();
    let workload = Workload::rounds(rounds);
    Architecture::paper_configs()
        .map(|arch| (arch.label(), run_architecture(arch, workload, &costs)))
}

/// The peak utilization of each architecture at a given round count —
/// the series behind the crossover experiment.
pub fn peak_utilizations(rounds: usize) -> [(String, f64); 3] {
    fig6_reports(rounds).map(|(label, report)| (label, report.peak_utilization()))
}

/// Mean job completion time of each architecture at a given round count.
pub fn mean_completions(rounds: usize) -> [(String, f64); 3] {
    fig6_reports(rounds).map(|(label, report)| (label, report.mean_completion().unwrap_or(0.0)))
}

/// Runs the agent-grid architecture with a variable number of analyzer
/// hosts (the scaling experiment).
pub fn grid_scaling_report(rounds: usize, analyzers: usize) -> SimReport {
    run_architecture(
        Architecture::AgentGrid {
            collectors: 3,
            analyzers,
        },
        Workload::rounds(rounds),
        &CostModel::table1(),
    )
}

/// Rule set for the inference benchmark: threshold alerts, a derived
/// spike chain and an idle notice — the same shapes as the default
/// analyzer rules, sized so every fact matches at most a few rules.
pub const INFERENCE_RULES: &str = r#"
rule "hot" salience 5 {
    when obs(device: ?d, value: ?v)
    if ?v > 90
    then emit warning ?d "cpu hot: ?v"
}
rule "spike" salience 3 {
    when obs(device: ?d, value: ?v)
    if ?v > 95
    then assert spike(device: ?d)
}
rule "escalate" salience 1 {
    when spike(device: ?d)
    then emit critical ?d "sustained spike"
}
rule "idle" {
    when obs(device: ?d, value: ?v)
    if ?v < 5
    then emit info ?d "idle device"
}
"#;

/// Knowledge base behind the inference benchmark.
pub fn inference_kb() -> KnowledgeBase {
    KnowledgeBase::from_rules(parse_rules(INFERENCE_RULES).expect("inference rules parse"))
}

/// `n` deterministic observation facts over ten devices; values sweep
/// all residues mod 100, so a fixed fraction crosses each threshold.
pub fn inference_facts(n: usize) -> Vec<Fact> {
    (0..n)
        .map(|i| {
            Fact::new("obs")
                .with("device", format!("host-{}", i % 10))
                .with("value", ((i * 37) % 100) as f64)
        })
        .collect()
}

/// A store with `points_per_series` samples in each of ten series
/// (five devices, two metrics), appended in timestamp order — the shape
/// the analyzer's whole-series `stats`/`latest` hot path sees.
pub fn inference_store(points_per_series: usize) -> ManagementStore {
    let mut store = ManagementStore::default();
    for device in 0..5 {
        for metric in ["cpu.load.1", "storage.ram.used"] {
            for p in 0..points_per_series {
                store.insert(Record::new(
                    format!("host-{device}"),
                    metric,
                    ((p * 13 + device) % 100) as f64,
                    (p as u64 + 1) * 1_000,
                ));
            }
        }
    }
    store
}

/// SNMP-shaped ingest workload for the store benchmark: `total` samples
/// spread round-robin over twenty series (five devices, four metrics:
/// three slowly-walking integer gauges plus a monotone octet counter),
/// on a fixed 60 s poll cadence — the shape collectors actually
/// produce. Deterministic: same `total`, same records.
pub fn store_workload(total: usize) -> Vec<Record> {
    const METRICS: [&str; 4] = [
        "cpu.load.1",
        "storage.ram.used",
        "storage.disk.used-pct",
        "if.1.in-octets",
    ];
    let mut out = Vec::with_capacity(total);
    // Per-series gauge levels and counter values, walked with a
    // xorshift stream so the data is jittery but integer-valued.
    let mut loads = [40i64; 5];
    let mut rams = [4096i64; 5];
    let mut disks = [55i64; 5];
    let mut octets = [0u64; 5];
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..total {
        let device = (i / METRICS.len()) % 5;
        let metric = METRICS[i % METRICS.len()];
        let tick = (i / (5 * METRICS.len())) as u64;
        let ts = (tick + 1) * 60_000;
        let value = match metric {
            "cpu.load.1" => {
                loads[device] = (loads[device] + (rng() % 15) as i64 - 7).clamp(0, 100);
                loads[device] as f64
            }
            "storage.ram.used" => {
                rams[device] = (rams[device] + (rng() % 65) as i64 - 32).clamp(0, 8192);
                rams[device] as f64
            }
            "storage.disk.used-pct" => {
                disks[device] = (disks[device] + (rng() % 3) as i64 - 1).clamp(0, 100);
                disks[device] as f64
            }
            _ => {
                octets[device] += 12_000 + rng() % 4_096;
                octets[device] as f64
            }
        };
        out.push(Record::new(format!("host-{device}"), metric, value, ts));
    }
    out
}

/// Sum of network busy time across all hosts of a report.
pub fn total_net_busy(report: &SimReport) -> u64 {
    report
        .hosts()
        .iter()
        .map(|h| report.busy_time(h, ResourceKind::Net))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_network_is_deterministic_and_sized() {
        let a = standard_network(2, 3, 42);
        let b = standard_network(2, 3, 42);
        assert_eq!(a.device_count(), 6);
        assert_eq!(a.sites().count(), 2);
        let name = a.devices().next().unwrap().name().to_owned();
        assert_eq!(
            a.device(&name).unwrap().mib().len(),
            b.device(&name).unwrap().mib().len()
        );
    }

    #[test]
    fn fig6_reports_cover_three_architectures() {
        let reports = fig6_reports(10);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].0, "centralized");
        assert!(reports.iter().all(|(_, r)| r.makespan() > 0));
    }

    #[test]
    fn peak_utilization_decreases_toward_the_grid() {
        let [(_, cen), (_, mas), (_, grid)] = peak_utilizations(10);
        assert!(grid < mas);
        assert!(mas <= cen + 1e-9);
    }

    #[test]
    fn inference_workload_is_deterministic_and_nontrivial() {
        let kb = inference_kb();
        assert_eq!(kb.len(), 4);
        let facts = inference_facts(100);
        assert_eq!(facts, inference_facts(100));
        let mut engine = agentgrid_rules::Engine::new(kb).with_max_cycles(100_000);
        for fact in facts {
            engine.insert(fact);
        }
        let out = engine.run();
        assert!(!out.truncated);
        assert!(out.stats.fired > 0, "workload must exercise the agenda");
        let store = inference_store(50);
        assert_eq!(store.len(), 5 * 2 * 50);
        assert!(store.stats("host-0", "cpu.load.1", 0, u64::MAX).is_some());
    }

    #[test]
    fn store_workload_is_deterministic_and_in_order_per_series() {
        let a = store_workload(2_000);
        assert_eq!(a.len(), 2_000);
        assert_eq!(a, store_workload(2_000));
        let mut last: std::collections::BTreeMap<(String, String), u64> = Default::default();
        for r in &a {
            let key = (r.device.clone(), r.metric.clone());
            assert!(r.value.fract() == 0.0, "workload is integer-valued");
            let prev = last.insert(key, r.timestamp_ms);
            assert!(prev.is_none_or(|p| p < r.timestamp_ms), "per-series order");
        }
        assert_eq!(last.len(), 20, "five devices x four metrics");
    }

    #[test]
    fn scaling_adds_hosts() {
        let two = grid_scaling_report(10, 2);
        let four = grid_scaling_report(10, 4);
        assert_eq!(two.hosts().len(), 6);
        assert_eq!(four.hosts().len(), 8);
        assert!(four.makespan() <= two.makespan());
    }
}
