//! Regression guard on the analysis hot path's CPU-cost proxy.
//!
//! `RunStats.match_attempts` is the paper's Table-1 style cost proxy for
//! rule evaluation. The live two-site scenario (the Figure 2 run) is
//! fully deterministic, so its total across every analyzer task is a
//! stable number: this test pins a ceiling recorded with the incremental
//! (TREAT-style agenda + alpha-indexed) engine. If a change to matching
//! pushes the total above the ceiling, the hot path has regressed toward
//! the naive rebuild-every-cycle behaviour and this fails.

use agentgrid::grid::ManagementGrid;
use agentgrid_bench::{standard_network, ALL_SKILLS};
use agentgrid_net::{FaultKind, ScheduledFault};

/// Total match attempts of the deterministic Figure-2 scenario, measured
/// at 8242 with the incremental engine (ceiling leaves ~45% headroom for
/// benign rule-set growth). The naive engine's total for the same run is
/// far larger (it re-derives the full conflict set every cycle), so any
/// regression toward full rebuilds trips this immediately.
const MATCH_ATTEMPTS_CEILING: u64 = 12_000;

fn fig2_grid() -> ManagementGrid {
    ManagementGrid::builder()
        .network(standard_network(2, 4, 11))
        .collectors_per_site(2)
        .analyzer("pg-1", 1.0, ALL_SKILLS)
        .analyzer("pg-2", 1.0, ALL_SKILLS)
        .fault(ScheduledFault::from(
            "site-0-dev2",
            FaultKind::CpuRunaway,
            120_000,
        ))
        .fault(ScheduledFault::from(
            "site-1-dev0",
            FaultKind::LinkDown(2),
            180_000,
        ))
        .build()
}

#[test]
fn fig2_scenario_match_attempts_stay_under_ceiling() {
    let mut grid = fig2_grid();
    grid.run(10 * 60_000, 60_000);
    let attempts = grid.match_attempts();
    assert!(
        attempts > 0,
        "the scenario must exercise the analyzers' rule engine"
    );
    assert!(
        attempts <= MATCH_ATTEMPTS_CEILING,
        "analysis hot path regressed: {attempts} match attempts > ceiling {MATCH_ATTEMPTS_CEILING}"
    );
}

#[test]
fn fig2_scenario_match_attempts_are_deterministic() {
    let run = || {
        let mut grid = fig2_grid();
        grid.run(10 * 60_000, 60_000);
        grid.match_attempts()
    };
    assert_eq!(run(), run());
}
