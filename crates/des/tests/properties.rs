//! Property-based tests for the discrete-event simulator.

use agentgrid_des::{Job, ResourceKind, Simulation};
use proptest::prelude::*;

const HOSTS: [&str; 3] = ["h0", "h1", "h2"];

fn job_strategy(index: usize) -> impl Strategy<Value = Job> {
    (
        0u64..50,
        prop::collection::vec((0usize..3, 0usize..3, 0u64..30), 1..6),
    )
        .prop_map(move |(arrival, stages)| {
            let mut job = Job::new(format!("j{index}")).arrive_at(arrival);
            for (host, kind, duration) in stages {
                job = job.stage(HOSTS[host], ResourceKind::ALL[kind], duration);
            }
            job
        })
}

fn jobs_strategy() -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(0u8..1, 1..15).prop_flat_map(|v| {
        let n = v.len();
        (0..n).map(job_strategy).collect::<Vec<_>>()
    })
}

proptest! {
    /// Work conservation: each resource's busy time equals the total
    /// demand placed on it (unit speeds, no work is lost or invented).
    #[test]
    fn busy_time_equals_demand(jobs in jobs_strategy()) {
        let mut sim = Simulation::new();
        for h in HOSTS {
            sim.add_host(h);
        }
        sim.submit_all(jobs.clone());
        let report = sim.run();
        for host in HOSTS {
            for kind in ResourceKind::ALL {
                let demand: u64 = jobs.iter().map(|j| j.demand(host, kind)).sum();
                prop_assert_eq!(report.busy_time(host, kind), demand);
            }
        }
    }

    /// Utilization is always within [0, 1], and every job completes no
    /// earlier than its arrival plus its own total work.
    #[test]
    fn utilization_bounded_and_completions_sane(jobs in jobs_strategy()) {
        let mut sim = Simulation::new();
        for h in HOSTS {
            sim.add_host(h);
        }
        sim.submit_all(jobs.clone());
        let report = sim.run();
        for host in HOSTS {
            for kind in ResourceKind::ALL {
                let u = report.utilization(host, kind);
                prop_assert!((0.0..=1.0).contains(&u), "{u}");
            }
        }
        for job in &jobs {
            let own_work: u64 = job.stages().iter().map(|s| s.duration).sum();
            let done = report.completion(job.name()).expect("job completed");
            prop_assert!(done >= job.arrival() + own_work);
        }
    }

    /// The makespan is at least the critical path of any single job and
    /// at most the total serialized work plus the latest arrival.
    #[test]
    fn makespan_bounds(jobs in jobs_strategy()) {
        let mut sim = Simulation::new();
        for h in HOSTS {
            sim.add_host(h);
        }
        sim.submit_all(jobs.clone());
        let report = sim.run();
        let total_work: u64 = jobs
            .iter()
            .flat_map(|j| j.stages())
            .map(|s| s.duration)
            .sum();
        let max_arrival = jobs.iter().map(Job::arrival).max().unwrap_or(0);
        prop_assert!(report.makespan() <= max_arrival + total_work);
        for job in &jobs {
            let own: u64 = job.stages().iter().map(|s| s.duration).sum();
            prop_assert!(report.makespan() >= own);
        }
    }

    /// Trace intervals on one resource never overlap (mutual exclusion).
    #[test]
    fn trace_intervals_do_not_overlap(jobs in jobs_strategy()) {
        let mut sim = Simulation::new();
        for h in HOSTS {
            sim.add_host(h);
        }
        sim.submit_all(jobs);
        let report = sim.run();
        for host in HOSTS {
            for kind in ResourceKind::ALL {
                let mut intervals: Vec<(u64, u64)> = report
                    .trace()
                    .iter()
                    .filter(|e| e.host == host && e.kind == kind && e.start != e.end)
                    .map(|e| (e.start, e.end))
                    .collect();
                intervals.sort_unstable();
                prop_assert!(
                    intervals.windows(2).all(|w| w[0].1 <= w[1].0),
                    "overlap on {host}/{kind}: {intervals:?}"
                );
            }
        }
    }
}
