use std::fmt;

use serde::{Deserialize, Serialize};

/// The three resources every host owns, matching the paper's Table 1
/// columns (CPU, Network, Disc).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Processor time.
    Cpu,
    /// Network interface time (send/receive occupancy).
    Net,
    /// Disk time.
    Disk,
}

impl ResourceKind {
    /// All kinds, in Table 1 column order.
    pub const ALL: [ResourceKind; 3] = [ResourceKind::Cpu, ResourceKind::Net, ResourceKind::Disk];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Net => "net",
            ResourceKind::Disk => "disk",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One step of a [`Job`]: occupy `kind` on `host` for `duration` time
/// units (before the host's speed factor is applied).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stage {
    /// Host whose resource is used.
    pub host: String,
    /// Which resource.
    pub kind: ResourceKind,
    /// Cost in relative time units (Table 1 numbers go here).
    pub duration: u64,
}

/// A management activity: a pipeline of [`Stage`]s executed in order.
///
/// Stages of one job are strictly sequential (a reply cannot be parsed
/// before it arrives); stages of *different* jobs contend on the FIFO
/// resources, which is where the paper's bottlenecks come from.
///
/// # Examples
///
/// ```
/// use agentgrid_des::{Job, ResourceKind};
/// let job = Job::new("request-B").arrive_at(100)
///     .stage("collector-1", ResourceKind::Cpu, 15)
///     .stage("manager", ResourceKind::Net, 10);
/// assert_eq!(job.stages().len(), 2);
/// assert_eq!(job.arrival(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Job {
    name: String,
    arrival: u64,
    stages: Vec<Stage>,
}

impl Job {
    /// Creates a job arriving at time 0 with no stages.
    pub fn new(name: impl Into<String>) -> Self {
        Job {
            name: name.into(),
            arrival: 0,
            stages: Vec::new(),
        }
    }

    /// Sets the arrival (release) time.
    pub fn arrive_at(mut self, t: u64) -> Self {
        self.arrival = t;
        self
    }

    /// Appends a stage. Zero-duration stages are legal and complete
    /// instantly (useful for pure synchronization points).
    pub fn stage(mut self, host: impl Into<String>, kind: ResourceKind, duration: u64) -> Self {
        self.stages.push(Stage {
            host: host.into(),
            kind,
            duration,
        });
        self
    }

    /// The job name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The release time.
    pub fn arrival(&self) -> u64 {
        self.arrival
    }

    /// The stages, in execution order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Total demanded time on `(host, kind)` across all stages —
    /// the lower bound of that resource's busy time due to this job.
    pub fn demand(&self, host: &str, kind: ResourceKind) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.host == host && s.kind == kind)
            .map(|s| s.duration)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_stages_in_order() {
        let job = Job::new("j")
            .stage("a", ResourceKind::Cpu, 1)
            .stage("b", ResourceKind::Net, 2);
        assert_eq!(job.stages()[0].host, "a");
        assert_eq!(job.stages()[1].kind, ResourceKind::Net);
    }

    #[test]
    fn demand_sums_matching_stages() {
        let job = Job::new("j")
            .stage("a", ResourceKind::Cpu, 5)
            .stage("a", ResourceKind::Cpu, 7)
            .stage("a", ResourceKind::Disk, 3)
            .stage("b", ResourceKind::Cpu, 11);
        assert_eq!(job.demand("a", ResourceKind::Cpu), 12);
        assert_eq!(job.demand("a", ResourceKind::Disk), 3);
        assert_eq!(job.demand("c", ResourceKind::Cpu), 0);
    }

    #[test]
    fn kinds_have_stable_labels() {
        assert_eq!(ResourceKind::Cpu.to_string(), "cpu");
        assert_eq!(ResourceKind::ALL.len(), 3);
    }
}
