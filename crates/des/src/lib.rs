//! Discrete-event simulation kernel for the `agentgrid` evaluation.
//!
//! The paper's evaluation (§4.1, Table 1, Figure 6) assigns *relative
//! times* to management tasks (requests, parses, stores, inferences) and
//! compares how three architectures load each host's CPU, network and
//! disk. This crate is the measurement substrate for that experiment:
//!
//! * a [`Simulation`] holds [`Host`]s, each with a CPU, NIC and disk
//!   [`ResourceKind`] modelled as FIFO queues (with optional speed
//!   factors for heterogeneous grids);
//! * a [`Job`] is a pipeline of [`Stage`]s — each stage occupies one
//!   resource of one host for a duration; jobs run concurrently and queue
//!   when they contend;
//! * [`Simulation::run`] executes the event queue deterministically and
//!   returns a [`SimReport`] with per-resource busy time, utilization,
//!   per-job completion times and the makespan.
//!
//! # Examples
//!
//! ```
//! use agentgrid_des::{Job, ResourceKind, Simulation};
//!
//! let mut sim = Simulation::new();
//! sim.add_host("manager");
//! sim.add_host("device");
//!
//! // A poll: the device answers (CPU), the reply crosses the network,
//! // the manager parses it (CPU) and stores it (disk).
//! sim.submit(
//!     Job::new("poll-1")
//!         .stage("device", ResourceKind::Cpu, 10)
//!         .stage("manager", ResourceKind::Net, 5)
//!         .stage("manager", ResourceKind::Cpu, 15)
//!         .stage("manager", ResourceKind::Disk, 10),
//! );
//! let report = sim.run();
//! assert_eq!(report.makespan(), 40);
//! assert_eq!(report.busy_time("manager", ResourceKind::Cpu), 15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod job;
mod report;

pub use engine::{Host, Simulation};
pub use job::{Job, ResourceKind, Stage};
pub use report::{SimReport, TraceEntry};
