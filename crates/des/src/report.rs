use std::collections::BTreeMap;
use std::fmt;

use crate::ResourceKind;

/// One resource occupancy interval, for timeline inspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Job that held the resource.
    pub job: String,
    /// Host owning the resource.
    pub host: String,
    /// Which resource.
    pub kind: ResourceKind,
    /// Start time.
    pub start: u64,
    /// End time.
    pub end: u64,
}

/// Result of a [`Simulation`](crate::Simulation) run.
///
/// This is what the Figure 6 harness reads: per-host, per-resource busy
/// time and utilization, job completion times and the makespan.
#[derive(Debug, Clone)]
pub struct SimReport {
    makespan: u64,
    busy: BTreeMap<(String, ResourceKind), u64>,
    completions: BTreeMap<String, u64>,
    trace: Vec<TraceEntry>,
}

impl SimReport {
    pub(crate) fn new(
        makespan: u64,
        busy: BTreeMap<(String, ResourceKind), u64>,
        completions: BTreeMap<String, u64>,
        trace: Vec<TraceEntry>,
    ) -> Self {
        SimReport {
            makespan,
            busy,
            completions,
            trace,
        }
    }

    /// Time the last event happened.
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// Total busy time of `(host, kind)`; 0 for unknown pairs.
    pub fn busy_time(&self, host: &str, kind: ResourceKind) -> u64 {
        self.busy
            .get(&(host.to_owned(), kind))
            .copied()
            .unwrap_or(0)
    }

    /// Utilization of `(host, kind)` in `[0, 1]`: busy time over
    /// makespan. Zero when the makespan is zero.
    pub fn utilization(&self, host: &str, kind: ResourceKind) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.busy_time(host, kind) as f64 / self.makespan as f64
    }

    /// Hosts that appear in the report, in name order.
    pub fn hosts(&self) -> Vec<&str> {
        let mut hosts: Vec<&str> = self.busy.keys().map(|(h, _)| h.as_str()).collect();
        hosts.dedup();
        hosts
    }

    /// Completion time of a job, if it was submitted.
    pub fn completion(&self, job: &str) -> Option<u64> {
        self.completions.get(job).copied()
    }

    /// All job completions, by name.
    pub fn completions(&self) -> &BTreeMap<String, u64> {
        &self.completions
    }

    /// Mean completion time across all jobs (`None` when empty).
    pub fn mean_completion(&self) -> Option<f64> {
        if self.completions.is_empty() {
            return None;
        }
        let sum: u64 = self.completions.values().sum();
        Some(sum as f64 / self.completions.len() as f64)
    }

    /// Highest utilization across all `(host, kind)` pairs — the system
    /// bottleneck the paper's Figure 6 argues about.
    pub fn peak_utilization(&self) -> f64 {
        self.busy
            .values()
            .map(|b| {
                if self.makespan == 0 {
                    0.0
                } else {
                    *b as f64 / self.makespan as f64
                }
            })
            .fold(0.0, f64::max)
    }

    /// The `(host, kind)` with the highest busy time, if any work ran.
    pub fn bottleneck(&self) -> Option<(&str, ResourceKind, u64)> {
        self.busy
            .iter()
            .max_by_key(|(_, busy)| **busy)
            .filter(|(_, busy)| **busy > 0)
            .map(|((host, kind), busy)| (host.as_str(), *kind, *busy))
    }

    /// The stage timeline.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Renders a textual Gantt chart of the run: one row per
    /// `(host, resource)`, time flowing left to right over `width`
    /// character cells, `#` where the resource was busy. Useful for
    /// eyeballing where queueing happens.
    pub fn gantt(&self, width: usize) -> String {
        if self.makespan == 0 || width == 0 {
            return String::new();
        }
        let scale = self.makespan as f64 / width as f64;
        let mut rows: std::collections::BTreeMap<(String, ResourceKind), Vec<bool>> =
            std::collections::BTreeMap::new();
        for entry in &self.trace {
            let cells = rows
                .entry((entry.host.clone(), entry.kind))
                .or_insert_with(|| vec![false; width]);
            let from = (entry.start as f64 / scale) as usize;
            let to = ((entry.end as f64 / scale).ceil() as usize).min(width);
            for cell in cells.iter_mut().take(to).skip(from) {
                *cell = true;
            }
        }
        let mut out = String::new();
        for ((host, kind), cells) in rows {
            out.push_str(&format!("{:<20} |", format!("{host}/{kind}")));
            for busy in cells {
                out.push(if busy { '#' } else { ' ' });
            }
            out.push_str("|\n");
        }
        out
    }

    /// Renders the per-host utilization table (rows = hosts, columns =
    /// CPU/Net/Disk busy time and utilization) — the shape of Figure 6.
    pub fn utilization_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}\n",
            "host", "cpu", "net", "disk", "cpu%", "net%", "disk%"
        ));
        for host in self.hosts() {
            let row: Vec<u64> = ResourceKind::ALL
                .iter()
                .map(|k| self.busy_time(host, *k))
                .collect();
            let pct: Vec<f64> = ResourceKind::ALL
                .iter()
                .map(|k| self.utilization(host, *k) * 100.0)
                .collect();
            out.push_str(&format!(
                "{:<16} {:>10} {:>10} {:>10} {:>7.1}% {:>7.1}% {:>7.1}%\n",
                host, row[0], row[1], row[2], pct[0], pct[1], pct[2]
            ));
        }
        out
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "makespan: {}", self.makespan)?;
        f.write_str(&self.utilization_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Job, Simulation};

    fn report() -> SimReport {
        let mut sim = Simulation::new();
        sim.add_host("m").add_host("c");
        sim.submit(
            Job::new("j1")
                .stage("c", ResourceKind::Cpu, 10)
                .stage("m", ResourceKind::Net, 5)
                .stage("m", ResourceKind::Cpu, 25),
        );
        sim.submit(Job::new("j2").stage("m", ResourceKind::Disk, 8));
        sim.run()
    }

    #[test]
    fn utilization_is_busy_over_makespan() {
        let r = report();
        assert_eq!(r.makespan(), 40);
        assert!((r.utilization("m", ResourceKind::Cpu) - 25.0 / 40.0).abs() < 1e-12);
        assert_eq!(r.utilization("ghost", ResourceKind::Cpu), 0.0);
    }

    #[test]
    fn bottleneck_is_the_busiest_resource() {
        let r = report();
        let (host, kind, busy) = r.bottleneck().unwrap();
        assert_eq!((host, kind, busy), ("m", ResourceKind::Cpu, 25));
        assert!((r.peak_utilization() - 25.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn hosts_lists_both() {
        assert_eq!(report().hosts(), ["c", "m"]);
    }

    #[test]
    fn mean_completion_averages_jobs() {
        let r = report();
        let mean = r.mean_completion().unwrap();
        assert_eq!(mean, (40 + 8) as f64 / 2.0);
    }

    #[test]
    fn table_renders_all_hosts() {
        let table = report().utilization_table();
        assert!(table.contains("m"));
        assert!(table.contains("c"));
        assert!(table.lines().count() == 3);
    }

    #[test]
    fn gantt_marks_busy_cells_in_time_order() {
        let mut sim = Simulation::new();
        sim.add_host("m");
        sim.submit(Job::new("j1").stage("m", ResourceKind::Cpu, 10));
        sim.submit(Job::new("j2").stage("m", ResourceKind::Disk, 5));
        let r = sim.run();
        let gantt = r.gantt(20);
        let cpu_row = gantt.lines().find(|l| l.starts_with("m/cpu")).unwrap();
        let disk_row = gantt.lines().find(|l| l.starts_with("m/disk")).unwrap();
        // CPU busy the whole run; disk only the first half.
        assert_eq!(cpu_row.matches('#').count(), 20);
        assert_eq!(disk_row.matches('#').count(), 10);
    }

    #[test]
    fn gantt_of_empty_run_is_empty() {
        let r = Simulation::new().run();
        assert!(r.gantt(40).is_empty());
        let mut sim = Simulation::new();
        sim.add_host("a");
        sim.submit(Job::new("j").stage("a", ResourceKind::Cpu, 3));
        assert!(sim.run().gantt(0).is_empty());
    }

    #[test]
    fn empty_simulation_reports_zero() {
        let sim = Simulation::new();
        let r = sim.run();
        assert_eq!(r.makespan(), 0);
        assert_eq!(r.peak_utilization(), 0.0);
        assert!(r.mean_completion().is_none());
        assert!(r.bottleneck().is_none());
    }
}
