use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use crate::report::{SimReport, TraceEntry};
use crate::{Job, ResourceKind};

/// A simulated host: one FIFO resource per [`ResourceKind`], with speed
/// factors so the grid can be heterogeneous (a container's resource
/// profile maps onto these).
#[derive(Debug, Clone)]
pub struct Host {
    name: String,
    cpu_speed: f64,
    net_speed: f64,
    disk_speed: f64,
}

impl Host {
    /// Creates a host with unit speed on every resource.
    pub fn new(name: impl Into<String>) -> Self {
        Host {
            name: name.into(),
            cpu_speed: 1.0,
            net_speed: 1.0,
            disk_speed: 1.0,
        }
    }

    /// Sets the CPU speed factor (2.0 halves CPU stage durations).
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not strictly positive.
    pub fn cpu_speed(mut self, speed: f64) -> Self {
        assert!(speed > 0.0, "speed must be positive");
        self.cpu_speed = speed;
        self
    }

    /// Sets the network speed factor.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not strictly positive.
    pub fn net_speed(mut self, speed: f64) -> Self {
        assert!(speed > 0.0, "speed must be positive");
        self.net_speed = speed;
        self
    }

    /// Sets the disk speed factor.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not strictly positive.
    pub fn disk_speed(mut self, speed: f64) -> Self {
        assert!(speed > 0.0, "speed must be positive");
        self.disk_speed = speed;
        self
    }

    /// The host name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn speed(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::Cpu => self.cpu_speed,
            ResourceKind::Net => self.net_speed,
            ResourceKind::Disk => self.disk_speed,
        }
    }
}

#[derive(Debug, Default)]
struct ResourceState {
    busy: bool,
    queue: VecDeque<usize>,
    busy_time: u64,
}

#[derive(Debug)]
struct JobState {
    job: Job,
    next_stage: usize,
    completed_at: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A job arrives / becomes ready for its next stage.
    JobReady(usize),
    /// A job's current stage finishes on its resource.
    StageDone(usize),
}

/// The discrete-event simulator.
///
/// Deterministic: ties in the event queue are broken by insertion order,
/// so the same jobs always produce the same report.
#[derive(Debug, Default)]
pub struct Simulation {
    hosts: BTreeMap<String, Host>,
    jobs: Vec<JobState>,
}

impl Simulation {
    /// Creates an empty simulation.
    pub fn new() -> Self {
        Simulation::default()
    }

    /// Adds a unit-speed host.
    pub fn add_host(&mut self, name: impl Into<String>) -> &mut Self {
        self.add_host_config(Host::new(name))
    }

    /// Adds a configured host.
    ///
    /// # Panics
    ///
    /// Panics on duplicate host names.
    pub fn add_host_config(&mut self, host: Host) -> &mut Self {
        let previous = self.hosts.insert(host.name.clone(), host);
        assert!(previous.is_none(), "duplicate host");
        self
    }

    /// Host names, in order.
    pub fn host_names(&self) -> impl Iterator<Item = &str> {
        self.hosts.keys().map(String::as_str)
    }

    /// Submits a job for execution.
    ///
    /// # Panics
    ///
    /// Panics if the job references a host that was not added.
    pub fn submit(&mut self, job: Job) -> &mut Self {
        for stage in job.stages() {
            assert!(
                self.hosts.contains_key(&stage.host),
                "job `{}` references unknown host `{}`",
                job.name(),
                stage.host
            );
        }
        self.jobs.push(JobState {
            job,
            next_stage: 0,
            completed_at: None,
        });
        self
    }

    /// Submits many jobs.
    pub fn submit_all(&mut self, jobs: impl IntoIterator<Item = Job>) -> &mut Self {
        for job in jobs {
            self.submit(job);
        }
        self
    }

    /// Runs every submitted job to completion and reports.
    pub fn run(mut self) -> SimReport {
        let mut resources: BTreeMap<(String, ResourceKind), ResourceState> = BTreeMap::new();
        for name in self.hosts.keys() {
            for kind in ResourceKind::ALL {
                resources.insert((name.clone(), kind), ResourceState::default());
            }
        }

        // Min-heap on (time, sequence) for deterministic tie-breaking.
        let mut heap: BinaryHeap<Reverse<(u64, u64, Event)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let push = |heap: &mut BinaryHeap<_>, t: u64, seq: &mut u64, e: Event| {
            heap.push(Reverse((t, *seq, e)));
            *seq += 1;
        };

        for (index, state) in self.jobs.iter().enumerate() {
            push(
                &mut heap,
                state.job.arrival(),
                &mut seq,
                Event::JobReady(index),
            );
        }

        let mut trace: Vec<TraceEntry> = Vec::new();
        let mut makespan = 0u64;

        while let Some(Reverse((now, _, event))) = heap.pop() {
            makespan = makespan.max(now);
            match event {
                Event::JobReady(index) => {
                    self.dispatch(index, now, &mut resources, &mut heap, &mut seq, &mut trace);
                }
                Event::StageDone(index) => {
                    // Free the resource this job was running on and start
                    // the next queued job, if any.
                    let stage_index = self.jobs[index].next_stage;
                    let stage = &self.jobs[index].job.stages()[stage_index];
                    let key = (stage.host.clone(), stage.kind);
                    let resource = resources.get_mut(&key).expect("resource exists");
                    resource.busy = false;
                    if let Some(waiting) = resource.queue.pop_front() {
                        self.start_stage(
                            waiting,
                            key.clone(),
                            now,
                            &mut resources,
                            &mut heap,
                            &mut seq,
                            &mut trace,
                        );
                    }
                    // Advance this job.
                    self.jobs[index].next_stage += 1;
                    if self.jobs[index].next_stage >= self.jobs[index].job.stages().len() {
                        self.jobs[index].completed_at = Some(now);
                    } else {
                        push(&mut heap, now, &mut seq, Event::JobReady(index));
                    }
                }
            }
        }

        let busy: BTreeMap<(String, ResourceKind), u64> = resources
            .into_iter()
            .map(|(key, state)| (key, state.busy_time))
            .collect();
        let completions: BTreeMap<String, u64> = self
            .jobs
            .iter()
            .map(|s| {
                (
                    s.job.name().to_owned(),
                    s.completed_at.expect("all jobs run to completion"),
                )
            })
            .collect();
        SimReport::new(makespan, busy, completions, trace)
    }

    /// Routes a ready job to its next stage's resource: starts it if the
    /// resource is idle, queues it otherwise. Jobs whose next stage has
    /// zero duration complete the stage immediately via a StageDone event.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        index: usize,
        now: u64,
        resources: &mut BTreeMap<(String, ResourceKind), ResourceState>,
        heap: &mut BinaryHeap<Reverse<(u64, u64, Event)>>,
        seq: &mut u64,
        trace: &mut Vec<TraceEntry>,
    ) {
        let state = &self.jobs[index];
        if state.next_stage >= state.job.stages().len() {
            // Job with no stages: completes on arrival.
            self.jobs[index].completed_at = Some(now);
            return;
        }
        let stage = &state.job.stages()[state.next_stage];
        let key = (stage.host.clone(), stage.kind);
        let resource = resources.get_mut(&key).expect("resource exists");
        if resource.busy {
            resource.queue.push_back(index);
        } else {
            self.start_stage(index, key, now, resources, heap, seq, trace);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn start_stage(
        &self,
        index: usize,
        key: (String, ResourceKind),
        now: u64,
        resources: &mut BTreeMap<(String, ResourceKind), ResourceState>,
        heap: &mut BinaryHeap<Reverse<(u64, u64, Event)>>,
        seq: &mut u64,
        trace: &mut Vec<TraceEntry>,
    ) {
        let state = &self.jobs[index];
        let stage = &state.job.stages()[state.next_stage];
        let speed = self.hosts[&key.0].speed(key.1);
        let duration = (stage.duration as f64 / speed).ceil() as u64;
        let resource = resources.get_mut(&key).expect("resource exists");
        resource.busy = true;
        resource.busy_time += duration;
        trace.push(TraceEntry {
            job: state.job.name().to_owned(),
            host: key.0.clone(),
            kind: key.1,
            start: now,
            end: now + duration,
        });
        heap.push(Reverse((now + duration, *seq, Event::StageDone(index))));
        *seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Job;

    #[test]
    fn single_job_runs_stages_sequentially() {
        let mut sim = Simulation::new();
        sim.add_host("a").add_host("b");
        sim.submit(
            Job::new("j")
                .stage("a", ResourceKind::Cpu, 10)
                .stage("b", ResourceKind::Net, 5)
                .stage("b", ResourceKind::Disk, 20),
        );
        let report = sim.run();
        assert_eq!(report.makespan(), 35);
        assert_eq!(report.completion("j"), Some(35));
        assert_eq!(report.busy_time("a", ResourceKind::Cpu), 10);
        assert_eq!(report.busy_time("b", ResourceKind::Disk), 20);
    }

    #[test]
    fn contending_jobs_queue_fifo() {
        let mut sim = Simulation::new();
        sim.add_host("m");
        sim.submit(Job::new("j1").stage("m", ResourceKind::Cpu, 10));
        sim.submit(Job::new("j2").stage("m", ResourceKind::Cpu, 10));
        let report = sim.run();
        assert_eq!(report.completion("j1"), Some(10));
        assert_eq!(report.completion("j2"), Some(20), "queued behind j1");
        assert_eq!(report.busy_time("m", ResourceKind::Cpu), 20);
        assert_eq!(report.makespan(), 20);
    }

    #[test]
    fn independent_resources_run_in_parallel() {
        let mut sim = Simulation::new();
        sim.add_host("a").add_host("b");
        sim.submit(Job::new("j1").stage("a", ResourceKind::Cpu, 10));
        sim.submit(Job::new("j2").stage("b", ResourceKind::Cpu, 10));
        let report = sim.run();
        assert_eq!(report.makespan(), 10, "different hosts overlap");
    }

    #[test]
    fn cpu_and_disk_of_same_host_overlap() {
        let mut sim = Simulation::new();
        sim.add_host("a");
        sim.submit(Job::new("j1").stage("a", ResourceKind::Cpu, 10));
        sim.submit(Job::new("j2").stage("a", ResourceKind::Disk, 10));
        assert_eq!(sim.run().makespan(), 10);
    }

    #[test]
    fn arrival_times_delay_jobs() {
        let mut sim = Simulation::new();
        sim.add_host("a");
        sim.submit(
            Job::new("late")
                .arrive_at(100)
                .stage("a", ResourceKind::Cpu, 5),
        );
        let report = sim.run();
        assert_eq!(report.completion("late"), Some(105));
    }

    #[test]
    fn speed_factor_scales_durations() {
        let mut sim = Simulation::new();
        sim.add_host_config(Host::new("fast").cpu_speed(2.0));
        sim.submit(Job::new("j").stage("fast", ResourceKind::Cpu, 10));
        let report = sim.run();
        assert_eq!(report.makespan(), 5);
        assert_eq!(report.busy_time("fast", ResourceKind::Cpu), 5);
    }

    #[test]
    fn zero_duration_stage_completes_instantly() {
        let mut sim = Simulation::new();
        sim.add_host("a");
        sim.submit(Job::new("j").stage("a", ResourceKind::Cpu, 0).stage(
            "a",
            ResourceKind::Disk,
            3,
        ));
        assert_eq!(sim.run().completion("j"), Some(3));
    }

    #[test]
    fn job_with_no_stages_completes_on_arrival() {
        let mut sim = Simulation::new();
        sim.add_host("a");
        sim.submit(Job::new("noop").arrive_at(7));
        assert_eq!(sim.run().completion("noop"), Some(7));
    }

    #[test]
    #[should_panic(expected = "unknown host")]
    fn unknown_host_is_rejected_at_submit() {
        let mut sim = Simulation::new();
        sim.submit(Job::new("j").stage("ghost", ResourceKind::Cpu, 1));
    }

    #[test]
    #[should_panic(expected = "duplicate host")]
    fn duplicate_host_is_rejected() {
        let mut sim = Simulation::new();
        sim.add_host("a").add_host("a");
    }

    #[test]
    fn simulation_is_deterministic() {
        let build = || {
            let mut sim = Simulation::new();
            sim.add_host("m").add_host("c1").add_host("c2");
            for i in 0..20 {
                sim.submit(
                    Job::new(format!("j{i}"))
                        .arrive_at(i % 3)
                        .stage(if i % 2 == 0 { "c1" } else { "c2" }, ResourceKind::Cpu, 7)
                        .stage("m", ResourceKind::Net, 3)
                        .stage("m", ResourceKind::Cpu, 9),
                );
            }
            sim.run()
        };
        let a = build();
        let b = build();
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(
            a.busy_time("m", ResourceKind::Cpu),
            b.busy_time("m", ResourceKind::Cpu)
        );
        assert_eq!(a.completion("j19"), b.completion("j19"));
    }

    #[test]
    fn trace_records_every_stage() {
        let mut sim = Simulation::new();
        sim.add_host("a");
        sim.submit(Job::new("j").stage("a", ResourceKind::Cpu, 2).stage(
            "a",
            ResourceKind::Disk,
            3,
        ));
        let report = sim.run();
        assert_eq!(report.trace().len(), 2);
        assert_eq!(report.trace()[0].kind, ResourceKind::Cpu);
        assert!(report.trace()[0].end <= report.trace()[1].start);
    }
}
