use std::collections::BTreeMap;
use std::fmt;

use crate::{Fact, FactId, Term, WorkingMemory};

/// Variable bindings accumulated while matching a rule's patterns.
///
/// # Examples
///
/// ```
/// use agentgrid_rules::{Bindings, Term};
/// let mut b = Bindings::new();
/// assert!(b.bind("d", Term::from("sw-1")));
/// assert!(b.bind("d", Term::from("sw-1"))); // consistent re-bind is fine
/// assert!(!b.bind("d", Term::from("sw-2"))); // conflicting bind fails
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bindings {
    vars: BTreeMap<String, Term>,
}

impl Bindings {
    /// Creates an empty binding set.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// Binds `var` to `value`. Returns `false` if `var` is already bound
    /// to a different value (the match must then be abandoned).
    pub fn bind(&mut self, var: &str, value: Term) -> bool {
        match self.vars.get(var) {
            Some(existing) => *existing == value,
            None => {
                self.vars.insert(var.to_owned(), value);
                true
            }
        }
    }

    /// Looks up a variable.
    pub fn get(&self, var: &str) -> Option<&Term> {
        self.vars.get(var)
    }

    /// Iterates over `(variable, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Term)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Substitutes `?var` references in `template` with bound values.
    /// Unbound variables are left verbatim.
    pub fn substitute(&self, template: &str) -> String {
        let mut out = String::with_capacity(template.len());
        let mut chars = template.char_indices().peekable();
        while let Some((_, c)) = chars.next() {
            if c != '?' {
                out.push(c);
                continue;
            }
            let mut name = String::new();
            while let Some(&(_, n)) = chars.peek() {
                if n.is_alphanumeric() || n == '_' || n == '-' {
                    name.push(n);
                    chars.next();
                } else {
                    break;
                }
            }
            match self.vars.get(&name) {
                Some(v) => out.push_str(&v.to_string()),
                None => {
                    out.push('?');
                    out.push_str(&name);
                }
            }
        }
        out
    }
}

/// How one field of a [`Pattern`] matches a fact field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldPattern {
    /// Field must equal this constant.
    Const(Term),
    /// Field binds (or must be consistent with) a variable.
    Var(String),
    /// Field must be present but its value is irrelevant.
    Any,
}

impl fmt::Display for FieldPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldPattern::Const(t) => write!(f, "{t}"),
            FieldPattern::Var(v) => write!(f, "?{v}"),
            FieldPattern::Any => f.write_str("_"),
        }
    }
}

/// A single condition element: matches facts of one kind and binds
/// variables from their fields.
///
/// # Examples
///
/// ```
/// use agentgrid_rules::{Bindings, Fact, FieldPattern, Pattern, Term};
///
/// let p = Pattern::new("obs")
///     .field("metric", FieldPattern::Const(Term::from("cpu.load")))
///     .field("value", FieldPattern::Var("v".into()));
/// let fact = Fact::new("obs").with("metric", "cpu.load").with("value", 55.0);
/// let mut b = Bindings::new();
/// assert!(p.matches(&fact, &mut b));
/// assert_eq!(b.get("v").unwrap().as_num(), Some(55.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    kind: String,
    fields: Vec<(String, FieldPattern)>,
}

impl Pattern {
    /// Creates a pattern over facts of `kind` with no field constraints.
    pub fn new(kind: impl Into<String>) -> Self {
        Pattern {
            kind: kind.into(),
            fields: Vec::new(),
        }
    }

    /// Adds a field constraint (builder style).
    pub fn field(mut self, name: impl Into<String>, pattern: FieldPattern) -> Self {
        self.fields.push((name.into(), pattern));
        self
    }

    /// The fact kind this pattern selects.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The field constraints.
    pub fn fields(&self) -> &[(String, FieldPattern)] {
        &self.fields
    }

    /// Attempts to match `fact`, extending `bindings`.
    ///
    /// On failure `bindings` may contain partial additions; callers clone
    /// before trying (the engine does).
    pub fn matches(&self, fact: &Fact, bindings: &mut Bindings) -> bool {
        if fact.kind() != self.kind {
            return false;
        }
        for (name, fp) in &self.fields {
            let Some(value) = fact.field(name) else {
                return false;
            };
            match fp {
                FieldPattern::Const(expected) => {
                    if value != expected {
                        return false;
                    }
                }
                FieldPattern::Var(var) => {
                    if !bindings.bind(var, value.clone()) {
                        return false;
                    }
                }
                FieldPattern::Any => {}
            }
        }
        true
    }

    /// All `(fact id, extended bindings)` matches in `wm` consistent with
    /// the incoming bindings, in ascending fact-id order.
    ///
    /// Candidates come from the alpha index: the smallest id set among the
    /// kind bucket and any `(kind, field, value)` bucket probeable from a
    /// `Const` field or a variable already bound in `bindings`. Index
    /// buckets are supersets of the true matches, so every candidate is
    /// still confirmed with [`Pattern::matches`].
    pub fn match_all<'a>(
        &'a self,
        wm: &'a WorkingMemory,
        bindings: &'a Bindings,
    ) -> impl Iterator<Item = (FactId, Bindings)> + 'a {
        let mut candidates = wm.ids_of_kind(&self.kind);
        if candidates.is_some() {
            for (name, fp) in &self.fields {
                let probe = match fp {
                    FieldPattern::Const(value) => Some(value),
                    FieldPattern::Var(var) => bindings.get(var),
                    FieldPattern::Any => None,
                };
                let Some(value) = probe else { continue };
                match wm.ids_by_field(&self.kind, name, value) {
                    None => {
                        candidates = None;
                        break;
                    }
                    Some(bucket) => {
                        if candidates.is_none_or(|best| bucket.len() < best.len()) {
                            candidates = Some(bucket);
                        }
                    }
                }
            }
        }
        candidates.into_iter().flatten().filter_map(move |id| {
            let fact = wm.get(*id).expect("indexed fact exists");
            let mut b = bindings.clone();
            if self.matches(fact, &mut b) {
                Some((*id, b))
            } else {
                None
            }
        })
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.kind)?;
        for (i, (name, fp)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {fp}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(device: &str, value: f64) -> Fact {
        Fact::new("obs").with("device", device).with("value", value)
    }

    #[test]
    fn kind_mismatch_fails() {
        let p = Pattern::new("obs");
        let mut b = Bindings::new();
        assert!(!p.matches(&Fact::new("other"), &mut b));
    }

    #[test]
    fn missing_field_fails() {
        let p = Pattern::new("obs").field("missing", FieldPattern::Any);
        let mut b = Bindings::new();
        assert!(!p.matches(&obs("d", 1.0), &mut b));
    }

    #[test]
    fn const_field_must_equal() {
        let p = Pattern::new("obs").field("device", FieldPattern::Const(Term::from("a")));
        let mut b = Bindings::new();
        assert!(p.matches(&obs("a", 1.0), &mut b));
        assert!(!p.matches(&obs("b", 1.0), &mut b));
    }

    #[test]
    fn var_binds_and_joins() {
        let p1 = Pattern::new("obs").field("device", FieldPattern::Var("d".into()));
        let p2 = Pattern::new("obs").field("device", FieldPattern::Var("d".into()));
        let mut b = Bindings::new();
        assert!(p1.matches(&obs("x", 1.0), &mut b));
        // Same variable must match the same device in the second pattern.
        assert!(p2.matches(&obs("x", 2.0), &mut b));
        assert!(!p2.matches(&obs("y", 2.0), &mut b));
    }

    #[test]
    fn match_all_enumerates_consistent_facts() {
        let mut wm = WorkingMemory::new();
        wm.insert(obs("a", 1.0));
        wm.insert(obs("b", 2.0));
        wm.insert(Fact::new("alert"));
        let p = Pattern::new("obs").field("device", FieldPattern::Var("d".into()));
        let matches: Vec<_> = p.match_all(&wm, &Bindings::new()).collect();
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[0].1.get("d").unwrap().as_str(), Some("a"));
    }

    #[test]
    fn match_all_probes_bound_variables() {
        let mut wm = WorkingMemory::new();
        wm.insert(obs("a", 1.0));
        let b_id = wm.insert(obs("b", 2.0));
        let p = Pattern::new("obs")
            .field("device", FieldPattern::Var("d".into()))
            .field("value", FieldPattern::Var("v".into()));
        let mut incoming = Bindings::new();
        incoming.bind("d", Term::from("b"));
        let matches: Vec<_> = p.match_all(&wm, &incoming).collect();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].0, b_id);
        assert_eq!(matches[0].1.get("v").unwrap().as_num(), Some(2.0));
        // A probe with no bucket yields nothing.
        let mut missing = Bindings::new();
        missing.bind("d", Term::from("zzz"));
        assert_eq!(p.match_all(&wm, &missing).count(), 0);
    }

    #[test]
    fn substitute_replaces_bound_vars_only() {
        let mut b = Bindings::new();
        b.bind("d", Term::from("sw-9"));
        b.bind("v", Term::from(91.5));
        assert_eq!(
            b.substitute("device ?d at ?v% (?unknown)"),
            "device sw-9 at 91.5% (?unknown)"
        );
    }

    #[test]
    fn display_is_readable() {
        let p = Pattern::new("obs")
            .field("device", FieldPattern::Var("d".into()))
            .field("metric", FieldPattern::Const(Term::from("x")))
            .field("ts", FieldPattern::Any);
        assert_eq!(p.to_string(), "obs(device: ?d, metric: x, ts: _)");
    }
}
