//! A small textual DSL for writing analysis rules.
//!
//! The interface grid lets users "define new rules and goals" at runtime
//! (paper §3.4); this DSL is the concrete syntax those rules arrive in.
//!
//! # Grammar
//!
//! ```text
//! rules   := rule*
//! rule    := "rule" STRING ("salience" INT)? "{" clause* "}"
//! clause  := "when" pattern
//!          | "if" operand CMP operand
//!          | "then" effect
//! pattern := IDENT "(" [ field ("," field)* ] ")"
//! field   := IDENT ":" ( literal | "?" IDENT | "_" )
//! effect  := "emit" ("info"|"warning"|"critical") operand STRING
//!          | "assert" IDENT "(" [ IDENT ":" operand ("," ...)* ] ")"
//!          | "retract" INT
//! operand := literal | "?" IDENT
//! literal := NUMBER | STRING | "true" | "false"
//! CMP     := "<" | "<=" | ">" | ">=" | "==" | "!="
//! ```
//!
//! Line comments start with `#`.
//!
//! # Examples
//!
//! ```
//! use agentgrid_rules::parse_rules;
//!
//! let rules = parse_rules(r#"
//!     rule "disk-pressure" salience 3 {
//!         when obs(device: ?d, metric: "disk.used-pct", value: ?v)
//!         if ?v >= 85
//!         then emit warning ?d "disk ?v% full on ?d"
//!         then assert problem(device: ?d, kind: "disk")
//!     }
//! "#)?;
//! assert_eq!(rules.len(), 1);
//! assert_eq!(rules[0].name(), "disk-pressure");
//! # Ok::<(), agentgrid_rules::ParseRuleError>(())
//! ```

use std::fmt;

use crate::{Effect, FieldPattern, Guard, GuardOp, Operand, Pattern, Rule, RuleSeverity, Term};

/// Error produced when rule text cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRuleError {
    message: String,
    line: usize,
}

impl ParseRuleError {
    /// 1-based line the error was detected on.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseRuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rule parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseRuleError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Num(f64),
    Var(String),
    Punct(char),
    Cmp(GuardOp),
}

#[derive(Debug, Clone)]
struct Spanned {
    token: Token,
    line: usize,
}

fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseRuleError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for n in chars.by_ref() {
                    if n == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '{' | '}' | '(' | ')' | ',' | ':' | '_' => {
                tokens.push(Spanned {
                    token: Token::Punct(c),
                    line,
                });
                chars.next();
            }
            '?' => {
                chars.next();
                let name = take_word(&mut chars);
                if name.is_empty() {
                    return Err(err(line, "`?` must be followed by a variable name"));
                }
                tokens.push(Spanned {
                    token: Token::Var(name),
                    line,
                });
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                while let Some(n) = chars.next() {
                    match n {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => match chars.next() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('n') => s.push('\n'),
                            other => return Err(err(line, format!("bad escape `\\{other:?}`"))),
                        },
                        '\n' => return Err(err(line, "newline inside string")),
                        n => s.push(n),
                    }
                }
                if !closed {
                    return Err(err(line, "unterminated string"));
                }
                tokens.push(Spanned {
                    token: Token::Str(s),
                    line,
                });
            }
            '<' | '>' | '=' | '!' => {
                chars.next();
                let two = chars.peek() == Some(&'=');
                let op = match (c, two) {
                    ('<', true) => GuardOp::Le,
                    ('<', false) => GuardOp::Lt,
                    ('>', true) => GuardOp::Ge,
                    ('>', false) => GuardOp::Gt,
                    ('=', true) => GuardOp::Eq,
                    ('!', true) => GuardOp::Ne,
                    _ => return Err(err(line, format!("unexpected `{c}`"))),
                };
                if two {
                    chars.next();
                }
                tokens.push(Spanned {
                    token: Token::Cmp(op),
                    line,
                });
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut text = String::new();
                text.push(c);
                chars.next();
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_digit() || n == '.' || n == 'e' || n == '-' || n == '+' {
                        text.push(n);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value: f64 = text
                    .parse()
                    .map_err(|_| err(line, format!("bad number `{text}`")))?;
                tokens.push(Spanned {
                    token: Token::Num(value),
                    line,
                });
            }
            c if c.is_alphabetic() => {
                let word = take_word(&mut chars);
                tokens.push(Spanned {
                    token: Token::Ident(word),
                    line,
                });
            }
            other => return Err(err(line, format!("unexpected character `{other}`"))),
        }
    }
    Ok(tokens)
}

fn take_word(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> String {
    let mut word = String::new();
    while let Some(&n) = chars.peek() {
        if n.is_alphanumeric() || n == '-' || n == '_' || n == '.' {
            word.push(n);
            chars.next();
        } else {
            break;
        }
    }
    word
}

fn err(line: usize, message: impl Into<String>) -> ParseRuleError {
    ParseRuleError {
        message: message.into(),
        line,
    }
}

struct TokenStream {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl TokenStream {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |s| s.line)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        self.pos += 1;
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseRuleError> {
        let line = self.line();
        match self.next() {
            Some(Token::Punct(p)) if p == c => Ok(()),
            other => Err(err(line, format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseRuleError> {
        let line = self.line();
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(err(line, format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_str(&mut self) -> Result<String, ParseRuleError> {
        let line = self.line();
        match self.next() {
            Some(Token::Str(s)) => Ok(s),
            other => Err(err(line, format!("expected string, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseRuleError> {
        let line = self.line();
        match self.next() {
            Some(Token::Ident(s)) if s == kw => Ok(()),
            other => Err(err(line, format!("expected `{kw}`, found {other:?}"))),
        }
    }
}

/// Parses rule text into [`Rule`]s.
///
/// # Errors
///
/// Returns [`ParseRuleError`] with a line number on the first syntax
/// error.
pub fn parse_rules(input: &str) -> Result<Vec<Rule>, ParseRuleError> {
    let mut stream = TokenStream {
        tokens: tokenize(input)?,
        pos: 0,
    };
    let mut rules = Vec::new();
    while stream.peek().is_some() {
        rules.push(parse_rule(&mut stream)?);
    }
    Ok(rules)
}

fn parse_rule(s: &mut TokenStream) -> Result<Rule, ParseRuleError> {
    s.expect_keyword("rule")?;
    let name = s.expect_str()?;
    let mut rule = Rule::new(name);
    if s.peek() == Some(&Token::Ident("salience".to_owned())) {
        s.next();
        let line = s.line();
        match s.next() {
            Some(Token::Num(x)) => rule = rule.salience(x as i32),
            other => {
                return Err(err(
                    line,
                    format!("expected salience number, found {other:?}"),
                ))
            }
        }
    }
    s.expect_punct('{')?;
    loop {
        let line = s.line();
        match s.next() {
            Some(Token::Punct('}')) => break,
            Some(Token::Ident(kw)) => match kw.as_str() {
                "when" => {
                    rule = rule.when(parse_pattern(s)?);
                }
                "if" => {
                    let left = parse_operand(s)?;
                    let op_line = s.line();
                    let op = match s.next() {
                        Some(Token::Cmp(op)) => op,
                        other => {
                            return Err(err(
                                op_line,
                                format!("expected comparison operator, found {other:?}"),
                            ))
                        }
                    };
                    let right = parse_operand(s)?;
                    rule = rule.guard(Guard::new(left, op, right));
                }
                "then" => {
                    rule = rule.then(parse_effect(s)?);
                }
                other => {
                    return Err(err(
                        line,
                        format!("expected `when`, `if`, `then` or `}}`, found `{other}`"),
                    ))
                }
            },
            other => {
                return Err(err(
                    line,
                    format!("expected clause or `}}`, found {other:?}"),
                ))
            }
        }
    }
    Ok(rule)
}

fn parse_pattern(s: &mut TokenStream) -> Result<Pattern, ParseRuleError> {
    let kind = s.expect_ident()?;
    let mut pattern = Pattern::new(kind);
    s.expect_punct('(')?;
    if s.peek() == Some(&Token::Punct(')')) {
        s.next();
        return Ok(pattern);
    }
    loop {
        let field = s.expect_ident()?;
        s.expect_punct(':')?;
        let line = s.line();
        let fp = match s.next() {
            Some(Token::Var(v)) => FieldPattern::Var(v),
            Some(Token::Punct('_')) => FieldPattern::Any,
            Some(Token::Num(x)) => FieldPattern::Const(Term::Num(x)),
            Some(Token::Str(text)) => FieldPattern::Const(Term::Str(text)),
            Some(Token::Ident(word)) if word == "true" => FieldPattern::Const(Term::Bool(true)),
            Some(Token::Ident(word)) if word == "false" => FieldPattern::Const(Term::Bool(false)),
            other => {
                return Err(err(
                    line,
                    format!("expected field pattern, found {other:?}"),
                ))
            }
        };
        pattern = pattern.field(field, fp);
        let line = s.line();
        match s.next() {
            Some(Token::Punct(',')) => continue,
            Some(Token::Punct(')')) => break,
            other => return Err(err(line, format!("expected `,` or `)`, found {other:?}"))),
        }
    }
    Ok(pattern)
}

fn parse_operand(s: &mut TokenStream) -> Result<Operand, ParseRuleError> {
    let line = s.line();
    match s.next() {
        Some(Token::Var(v)) => Ok(Operand::Var(v)),
        Some(Token::Num(x)) => Ok(Operand::Const(Term::Num(x))),
        Some(Token::Str(text)) => Ok(Operand::Const(Term::Str(text))),
        Some(Token::Ident(word)) if word == "true" => Ok(Operand::Const(Term::Bool(true))),
        Some(Token::Ident(word)) if word == "false" => Ok(Operand::Const(Term::Bool(false))),
        other => Err(err(line, format!("expected operand, found {other:?}"))),
    }
}

fn parse_effect(s: &mut TokenStream) -> Result<Effect, ParseRuleError> {
    let line = s.line();
    let kw = s.expect_ident()?;
    match kw.as_str() {
        "emit" => {
            let severity_line = s.line();
            let severity = match s.next() {
                Some(Token::Ident(word)) => match word.as_str() {
                    "info" => RuleSeverity::Info,
                    "warning" => RuleSeverity::Warning,
                    "critical" => RuleSeverity::Critical,
                    other => return Err(err(severity_line, format!("unknown severity `{other}`"))),
                },
                other => {
                    return Err(err(
                        severity_line,
                        format!("expected severity, found {other:?}"),
                    ))
                }
            };
            let device = parse_operand(s)?;
            let message = s.expect_str()?;
            Ok(Effect::Emit {
                severity,
                device,
                message,
            })
        }
        "assert" => {
            let kind = s.expect_ident()?;
            s.expect_punct('(')?;
            let mut fields = Vec::new();
            if s.peek() == Some(&Token::Punct(')')) {
                s.next();
            } else {
                loop {
                    let field = s.expect_ident()?;
                    s.expect_punct(':')?;
                    fields.push((field, parse_operand(s)?));
                    let line = s.line();
                    match s.next() {
                        Some(Token::Punct(',')) => continue,
                        Some(Token::Punct(')')) => break,
                        other => {
                            return Err(err(line, format!("expected `,` or `)`, found {other:?}")))
                        }
                    }
                }
            }
            Ok(Effect::Assert { kind, fields })
        }
        "retract" => {
            let line = s.line();
            match s.next() {
                Some(Token::Num(x)) if x >= 0.0 && x.fract() == 0.0 => {
                    Ok(Effect::Retract(x as usize))
                }
                other => Err(err(
                    line,
                    format!("expected pattern index after `retract`, found {other:?}"),
                )),
            }
        }
        other => Err(err(line, format!("unknown effect `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_rule() {
        let rules = parse_rules(
            r#"
            rule "high-cpu" salience 10 {
                when obs(device: ?d, metric: "cpu.load", value: ?v)
                if ?v > 90
                then emit critical ?d "cpu overload on ?d (?v%)"
                then assert problem(device: ?d, kind: "cpu")
            }
            "#,
        )
        .unwrap();
        assert_eq!(rules.len(), 1);
        let r = &rules[0];
        assert_eq!(r.name(), "high-cpu");
        assert_eq!(r.salience_value(), 10);
        assert_eq!(r.patterns().len(), 1);
        assert_eq!(r.guards().len(), 1);
        assert_eq!(r.effects().len(), 2);
    }

    #[test]
    fn parses_multiple_rules_and_comments() {
        let rules = parse_rules(
            r#"
            # first
            rule "a" { when x(v: _) then retract 0 }
            # second
            rule "b" { when y(v: 1, ok: true, label: "z") }
            "#,
        )
        .unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[1].patterns()[0].fields().len(), 3);
    }

    #[test]
    fn parses_empty_pattern_and_negative_numbers() {
        let rules = parse_rules(r#"rule "n" { when tick() if -1 < 0 }"#).unwrap();
        assert_eq!(rules[0].patterns()[0].fields().len(), 0);
        assert!(rules[0].guards()[0].eval(&crate::Bindings::new()));
    }

    #[test]
    fn parses_all_comparison_operators() {
        let text = r#"
            rule "ops" {
                if 1 < 2
                if 1 <= 2
                if 2 > 1
                if 2 >= 1
                if 1 == 1
                if 1 != 2
            }
        "#;
        let rules = parse_rules(text).unwrap();
        assert_eq!(rules[0].guards().len(), 6);
        for g in rules[0].guards() {
            assert!(g.eval(&crate::Bindings::new()), "{g}");
        }
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_rules("rule \"x\" {\n  bogus\n}").unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(parse_rules(r#"rule "never ends"#).is_err());
    }

    #[test]
    fn rejects_unknown_severity() {
        let e = parse_rules(r#"rule "x" { then emit disaster ?d "m" }"#).unwrap_err();
        assert!(e.to_string().contains("disaster"));
    }

    #[test]
    fn rejects_fractional_retract_index() {
        assert!(parse_rules(r#"rule "x" { then retract 1.5 }"#).is_err());
    }

    #[test]
    fn parsed_rules_execute() {
        use crate::{Engine, Fact, KnowledgeBase};
        let kb = KnowledgeBase::from_rules(
            parse_rules(
                r#"
                rule "consume-and-report" {
                    when obs(device: ?d, value: ?v)
                    if ?v >= 10
                    then emit info ?d "saw ?v"
                    then retract 0
                }
                "#,
            )
            .unwrap(),
        );
        let mut engine = Engine::new(kb);
        engine.insert(Fact::new("obs").with("device", "d1").with("value", 12.0));
        engine.insert(Fact::new("obs").with("device", "d2").with("value", 5.0));
        let out = engine.run();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].message, "saw 12");
        assert_eq!(engine.memory().len(), 1);
    }
}
