//! Naive reference matcher: the original forward-chainer that recomputes
//! the full conflict set every recognize–act cycle.
//!
//! [`NaiveEngine`] is kept as the *executable specification* for the
//! incremental [`Engine`](crate::Engine): the equivalence proptests and the
//! `inference` Criterion bench run both over identical inputs and require
//! the same findings in the same order, the same fired/asserted/retracted
//! counts, and `match_attempts` no larger on the incremental side. Do not
//! optimise this type — its O(cycles × rules × facts^patterns) behaviour is
//! the point of comparison.

use std::collections::BTreeSet;

use crate::{
    Bindings, Effect, Fact, FactId, Finding, KnowledgeBase, Rule, RunOutcome, RunStats,
    WorkingMemory,
};

/// One fireable (rule, fact-tuple) combination.
#[derive(Debug, Clone)]
struct Activation {
    rule_index: usize,
    fact_ids: Vec<FactId>,
    bindings: Bindings,
    salience: i32,
    /// Highest fact id in the tuple — recency for conflict resolution.
    recency: FactId,
}

/// Forward-chaining inference engine that rebuilds the conflict set from
/// scratch on every cycle.
///
/// Semantics are identical to [`Engine`](crate::Engine) (same conflict
/// resolution: salience, then recency, then rule order; same refraction;
/// same cycle limit behaviour) — only the amount of match work differs.
///
/// # Examples
///
/// ```
/// use agentgrid_rules::{Fact, KnowledgeBase, NaiveEngine, parse_rules};
///
/// let kb = KnowledgeBase::from_rules(parse_rules(r#"
///     rule "chain" {
///         when seed(n: ?n)
///         then assert grown(n: ?n)
///     }
///     rule "harvest" {
///         when grown(n: ?n)
///         then emit info "field" "grew ?n"
///     }
/// "#)?);
/// let mut engine = NaiveEngine::new(kb);
/// engine.insert(Fact::new("seed").with("n", 1.0));
/// let out = engine.run();
/// assert_eq!(out.findings.len(), 1);
/// assert_eq!(out.findings[0].message, "grew 1");
/// # Ok::<(), agentgrid_rules::ParseRuleError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NaiveEngine {
    kb: KnowledgeBase,
    wm: WorkingMemory,
    fired: BTreeSet<(String, Vec<FactId>)>,
    max_cycles: u64,
}

impl NaiveEngine {
    /// Creates an engine over a knowledge base with an empty working
    /// memory and the default cycle limit (10 000).
    pub fn new(kb: KnowledgeBase) -> Self {
        NaiveEngine {
            kb,
            wm: WorkingMemory::new(),
            fired: BTreeSet::new(),
            max_cycles: 10_000,
        }
    }

    /// Replaces the cycle limit (a safety net against runaway rule sets).
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Inserts a fact.
    pub fn insert(&mut self, fact: Fact) -> FactId {
        self.wm.insert(fact)
    }

    /// Inserts many facts.
    pub fn insert_all(&mut self, facts: impl IntoIterator<Item = Fact>) {
        for fact in facts {
            self.wm.insert(fact);
        }
    }

    /// Read access to the working memory.
    pub fn memory(&self) -> &WorkingMemory {
        &self.wm
    }

    /// Read access to the knowledge base.
    pub fn knowledge(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Mutable access to the knowledge base (to learn rules at runtime).
    pub fn knowledge_mut(&mut self) -> &mut KnowledgeBase {
        &mut self.kb
    }

    /// Clears the working memory and refraction history (e.g. between
    /// analysis batches).
    pub fn reset(&mut self) {
        self.wm = WorkingMemory::new();
        self.fired.clear();
    }

    /// Runs recognize–act cycles until quiescence or the cycle limit.
    pub fn run(&mut self) -> RunOutcome {
        let mut outcome = RunOutcome::default();
        loop {
            if outcome.stats.cycles >= self.max_cycles {
                outcome.truncated = true;
                break;
            }
            let Some(activation) = self.best_activation(&mut outcome.stats) else {
                break;
            };
            outcome.stats.cycles += 1;
            self.fire(activation, &mut outcome);
        }
        outcome
    }

    /// Computes the conflict set and returns the activation with the
    /// highest salience, breaking ties by recency then rule order.
    fn best_activation(&self, stats: &mut RunStats) -> Option<Activation> {
        let mut best: Option<Activation> = None;
        for (rule_index, rule) in self.kb.iter().enumerate() {
            for (fact_ids, bindings) in self.match_rule(rule, stats) {
                let key = (rule.name().to_owned(), fact_ids.clone());
                if self.fired.contains(&key) {
                    continue;
                }
                if !rule.guards_pass(&bindings) {
                    continue;
                }
                let recency = fact_ids.iter().copied().max().unwrap_or(FactId(0));
                let candidate = Activation {
                    rule_index,
                    fact_ids,
                    bindings,
                    salience: rule.salience_value(),
                    recency,
                };
                let better = match &best {
                    None => true,
                    Some(current) => {
                        (candidate.salience, candidate.recency, {
                            // Lower rule index wins the final tie, so invert.
                            usize::MAX - candidate.rule_index
                        }) > (
                            current.salience,
                            current.recency,
                            usize::MAX - current.rule_index,
                        )
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }
        }
        best
    }

    /// Joins the rule's patterns left-to-right, producing every consistent
    /// `(fact tuple, bindings)` combination.
    fn match_rule(&self, rule: &Rule, stats: &mut RunStats) -> Vec<(Vec<FactId>, Bindings)> {
        let mut partial: Vec<(Vec<FactId>, Bindings)> = vec![(Vec::new(), Bindings::new())];
        for pattern in rule.patterns() {
            let mut next = Vec::new();
            for (ids, bindings) in &partial {
                for (id, extended) in pattern.match_all(&self.wm, bindings) {
                    stats.match_attempts += 1;
                    // A fact may not satisfy two patterns of the same rule
                    // instance (set semantics for the tuple).
                    if ids.contains(&id) {
                        continue;
                    }
                    let mut tuple = ids.clone();
                    tuple.push(id);
                    next.push((tuple, extended));
                }
            }
            partial = next;
            if partial.is_empty() {
                break;
            }
        }
        if rule.patterns().is_empty() {
            // A rule with no patterns matches once on empty tuple.
            return partial;
        }
        partial
    }

    fn fire(&mut self, activation: Activation, outcome: &mut RunOutcome) {
        let rule = self
            .kb
            .iter()
            .nth(activation.rule_index)
            .expect("activation refers to an existing rule")
            .clone();
        self.fired
            .insert((rule.name().to_owned(), activation.fact_ids.clone()));
        outcome.stats.fired += 1;

        for effect in rule.effects() {
            match effect {
                Effect::Assert { .. } => {
                    if let Some(fact) = effect.instantiate(&activation.bindings) {
                        self.wm.insert(fact);
                        outcome.stats.asserted += 1;
                    }
                }
                Effect::Retract(pattern_index) => {
                    if let Some(id) = activation.fact_ids.get(*pattern_index) {
                        if self.wm.retract(*id).is_some() {
                            outcome.stats.retracted += 1;
                        }
                    }
                }
                Effect::Emit {
                    severity,
                    device,
                    message,
                } => {
                    let device_text = device
                        .resolve(&activation.bindings)
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "unknown".to_owned());
                    outcome.findings.push(Finding {
                        rule: rule.name().to_owned(),
                        device: device_text,
                        severity: *severity,
                        message: activation.bindings.substitute(message),
                    });
                }
            }
        }
    }
}
