use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Bindings, Fact, Pattern, Term};

/// Severity attached to a [`Finding`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum RuleSeverity {
    /// Informational.
    #[default]
    Info,
    /// Needs attention.
    Warning,
    /// Service-affecting.
    Critical,
}

impl RuleSeverity {
    /// The DSL keyword for this severity.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleSeverity::Info => "info",
            RuleSeverity::Warning => "warning",
            RuleSeverity::Critical => "critical",
        }
    }
}

impl fmt::Display for RuleSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A problem or observation emitted by a fired rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// The rule that fired.
    pub rule: String,
    /// The device(s) concerned (post-substitution).
    pub device: String,
    /// Severity of the finding.
    pub severity: RuleSeverity,
    /// Message (post-substitution).
    pub message: String,
}

/// A value source in guards and effects: a literal or a bound variable.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A literal term.
    Const(Term),
    /// A variable bound by some pattern.
    Var(String),
}

impl Operand {
    /// Resolves the operand against the bindings.
    pub fn resolve(&self, bindings: &Bindings) -> Option<Term> {
        match self {
            Operand::Const(t) => Some(t.clone()),
            Operand::Var(v) => bindings.get(v).cloned(),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(t) => write!(f, "{t}"),
            Operand::Var(v) => write!(f, "?{v}"),
        }
    }
}

/// Comparison operator in a [`Guard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl GuardOp {
    /// The DSL spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            GuardOp::Lt => "<",
            GuardOp::Le => "<=",
            GuardOp::Gt => ">",
            GuardOp::Ge => ">=",
            GuardOp::Eq => "==",
            GuardOp::Ne => "!=",
        }
    }
}

impl fmt::Display for GuardOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A boolean test over bound variables, evaluated after pattern matching.
///
/// A guard whose operands cannot be resolved or compared (unbound
/// variable, mixed types under an ordering operator) evaluates to `false`
/// rather than erroring: the activation simply does not fire.
#[derive(Debug, Clone, PartialEq)]
pub struct Guard {
    /// Left operand.
    pub left: Operand,
    /// Comparison operator.
    pub op: GuardOp,
    /// Right operand.
    pub right: Operand,
}

impl Guard {
    /// Creates a guard.
    pub fn new(left: Operand, op: GuardOp, right: Operand) -> Self {
        Guard { left, op, right }
    }

    /// Evaluates the guard under `bindings`.
    pub fn eval(&self, bindings: &Bindings) -> bool {
        let (Some(l), Some(r)) = (self.left.resolve(bindings), self.right.resolve(bindings)) else {
            return false;
        };
        match self.op {
            GuardOp::Eq => l == r,
            GuardOp::Ne => l != r,
            op => match l.partial_cmp(&r) {
                Some(ord) => match op {
                    GuardOp::Lt => ord.is_lt(),
                    GuardOp::Le => ord.is_le(),
                    GuardOp::Gt => ord.is_gt(),
                    GuardOp::Ge => ord.is_ge(),
                    GuardOp::Eq | GuardOp::Ne => unreachable!("handled above"),
                },
                None => false,
            },
        }
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// Action taken when a rule fires.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Assert a new fact built from operands.
    Assert {
        /// Kind of the asserted fact.
        kind: String,
        /// Field templates resolved against the bindings.
        fields: Vec<(String, Operand)>,
    },
    /// Retract the fact matched by the `when` clause at this index
    /// (0-based).
    Retract(usize),
    /// Emit a [`Finding`] for the interface grid.
    Emit {
        /// Severity of the finding.
        severity: RuleSeverity,
        /// Operand naming the device concerned.
        device: Operand,
        /// Message template (supports `?var` substitution).
        message: String,
    },
}

impl Effect {
    /// Instantiates an `Assert` effect into a concrete fact.
    /// Returns `None` for other effects or when a variable is unbound.
    pub fn instantiate(&self, bindings: &Bindings) -> Option<Fact> {
        match self {
            Effect::Assert { kind, fields } => {
                let mut fact = Fact::new(kind.clone());
                for (name, op) in fields {
                    fact = fact.with(name.clone(), op.resolve(bindings)?);
                }
                Some(fact)
            }
            _ => None,
        }
    }
}

/// A production rule: `when` patterns, `if` guards, `then` effects.
///
/// Build rules with [`Rule::new`] and the builder methods, or parse them
/// from the DSL with [`crate::parse_rules`].
///
/// # Examples
///
/// ```
/// use agentgrid_rules::{FieldPattern, Guard, GuardOp, Operand, Pattern, Rule, Term};
///
/// let rule = Rule::new("link-down")
///     .salience(5)
///     .when(
///         Pattern::new("obs")
///             .field("metric", FieldPattern::Const(Term::from("if.oper-status")))
///             .field("value", FieldPattern::Var("v".into())),
///     )
///     .guard(Guard::new(
///         Operand::Var("v".into()),
///         GuardOp::Eq,
///         Operand::Const(Term::from(0.0)),
///     ));
/// assert_eq!(rule.name(), "link-down");
/// assert_eq!(rule.patterns().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    name: String,
    salience: i32,
    patterns: Vec<Pattern>,
    guards: Vec<Guard>,
    effects: Vec<Effect>,
}

impl Rule {
    /// Creates an empty rule with salience 0.
    pub fn new(name: impl Into<String>) -> Self {
        Rule {
            name: name.into(),
            salience: 0,
            patterns: Vec::new(),
            guards: Vec::new(),
            effects: Vec::new(),
        }
    }

    /// Sets the salience (higher fires first).
    pub fn salience(mut self, salience: i32) -> Self {
        self.salience = salience;
        self
    }

    /// Adds a `when` pattern.
    pub fn when(mut self, pattern: Pattern) -> Self {
        self.patterns.push(pattern);
        self
    }

    /// Adds an `if` guard.
    pub fn guard(mut self, guard: Guard) -> Self {
        self.guards.push(guard);
        self
    }

    /// Adds a `then` effect.
    pub fn then(mut self, effect: Effect) -> Self {
        self.effects.push(effect);
        self
    }

    /// The rule name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The salience.
    pub fn salience_value(&self) -> i32 {
        self.salience
    }

    /// The `when` patterns.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// The `if` guards.
    pub fn guards(&self) -> &[Guard] {
        &self.guards
    }

    /// The `then` effects.
    pub fn effects(&self) -> &[Effect] {
        &self.effects
    }

    /// Whether all guards pass under `bindings`.
    pub fn guards_pass(&self, bindings: &Bindings) -> bool {
        self.guards.iter().all(|g| g.eval(bindings))
    }

    /// The *skill* this rule needs from a container: the kind of its first
    /// pattern (used by the broker to route analysis tasks, Fig. 3).
    pub fn skill(&self) -> Option<&str> {
        self.patterns.first().map(|p| p.kind())
    }
}

/// A named collection of rules — the paper's *knowledge base* (KdB).
///
/// Knowledge bases can be merged (`absorb`) and extended at runtime
/// (`learn`), which is how the interface grid feeds user-defined rules
/// back into the processor grid (§3.4).
///
/// # Examples
///
/// ```
/// use agentgrid_rules::{KnowledgeBase, Rule};
/// let mut kb = KnowledgeBase::new();
/// kb.learn(Rule::new("r1"));
/// kb.learn(Rule::new("r1")); // replaces, does not duplicate
/// assert_eq!(kb.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    rules: Vec<Rule>,
}

impl KnowledgeBase {
    /// Creates an empty knowledge base.
    pub fn new() -> Self {
        KnowledgeBase::default()
    }

    /// Creates a knowledge base from rules (later duplicates replace
    /// earlier ones by name).
    pub fn from_rules(rules: impl IntoIterator<Item = Rule>) -> Self {
        let mut kb = KnowledgeBase::new();
        for rule in rules {
            kb.learn(rule);
        }
        kb
    }

    /// Adds a rule, replacing any existing rule with the same name.
    pub fn learn(&mut self, rule: Rule) {
        if let Some(existing) = self.rules.iter_mut().find(|r| r.name() == rule.name()) {
            *existing = rule;
        } else {
            self.rules.push(rule);
        }
    }

    /// Removes a rule by name. Returns it if present.
    pub fn forget(&mut self, name: &str) -> Option<Rule> {
        let idx = self.rules.iter().position(|r| r.name() == name)?;
        Some(self.rules.remove(idx))
    }

    /// Merges all rules of `other` into `self` (the paper's "shared
    /// knowledge" across sites).
    pub fn absorb(&mut self, other: KnowledgeBase) {
        for rule in other.rules {
            self.learn(rule);
        }
    }

    /// Looks up a rule by name.
    pub fn get(&self, name: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.name() == name)
    }

    /// Iterates over the rules.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the knowledge base has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The set of skills (first-pattern kinds) the rules need; used when a
    /// container advertises its knowledge to the directory.
    pub fn skills(&self) -> Vec<&str> {
        let mut skills: Vec<&str> = self.rules.iter().filter_map(Rule::skill).collect();
        skills.sort_unstable();
        skills.dedup();
        skills
    }
}

impl FromIterator<Rule> for KnowledgeBase {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> Self {
        KnowledgeBase::from_rules(iter)
    }
}

impl Extend<Rule> for KnowledgeBase {
    fn extend<T: IntoIterator<Item = Rule>>(&mut self, iter: T) {
        for rule in iter {
            self.learn(rule);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FieldPattern;

    #[test]
    fn guard_comparisons() {
        let mut b = Bindings::new();
        b.bind("x", Term::from(5.0));
        let cases = [
            (GuardOp::Lt, 6.0, true),
            (GuardOp::Le, 5.0, true),
            (GuardOp::Gt, 4.0, true),
            (GuardOp::Ge, 5.0, true),
            (GuardOp::Eq, 5.0, true),
            (GuardOp::Ne, 5.0, false),
            (GuardOp::Lt, 5.0, false),
        ];
        for (op, rhs, expected) in cases {
            let g = Guard::new(
                Operand::Var("x".into()),
                op,
                Operand::Const(Term::from(rhs)),
            );
            assert_eq!(g.eval(&b), expected, "{g}");
        }
    }

    #[test]
    fn guard_with_unbound_var_is_false() {
        let g = Guard::new(
            Operand::Var("missing".into()),
            GuardOp::Eq,
            Operand::Const(Term::from(1.0)),
        );
        assert!(!g.eval(&Bindings::new()));
    }

    #[test]
    fn guard_on_mixed_types_is_false_for_orderings() {
        let mut b = Bindings::new();
        b.bind("s", Term::from("text"));
        let g = Guard::new(
            Operand::Var("s".into()),
            GuardOp::Gt,
            Operand::Const(Term::from(1.0)),
        );
        assert!(!g.eval(&b));
        // But inequality between different types holds.
        let ne = Guard::new(
            Operand::Var("s".into()),
            GuardOp::Ne,
            Operand::Const(Term::from(1.0)),
        );
        assert!(ne.eval(&b));
    }

    #[test]
    fn assert_effect_instantiates_with_bindings() {
        let mut b = Bindings::new();
        b.bind("d", Term::from("r1"));
        let e = Effect::Assert {
            kind: "problem".into(),
            fields: vec![
                ("device".into(), Operand::Var("d".into())),
                ("kind".into(), Operand::Const(Term::from("cpu"))),
            ],
        };
        let fact = e.instantiate(&b).unwrap();
        assert_eq!(fact.kind(), "problem");
        assert_eq!(fact.field("device").unwrap().as_str(), Some("r1"));
    }

    #[test]
    fn assert_effect_with_unbound_var_yields_none() {
        let e = Effect::Assert {
            kind: "p".into(),
            fields: vec![("d".into(), Operand::Var("nope".into()))],
        };
        assert_eq!(e.instantiate(&Bindings::new()), None);
    }

    #[test]
    fn kb_learn_replaces_by_name() {
        let mut kb = KnowledgeBase::new();
        kb.learn(Rule::new("r").salience(1));
        kb.learn(Rule::new("r").salience(9));
        assert_eq!(kb.len(), 1);
        assert_eq!(kb.get("r").unwrap().salience_value(), 9);
    }

    #[test]
    fn kb_absorb_merges() {
        let mut a = KnowledgeBase::from_rules([Rule::new("x")]);
        let b = KnowledgeBase::from_rules([Rule::new("x").salience(2), Rule::new("y")]);
        a.absorb(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get("x").unwrap().salience_value(), 2);
    }

    #[test]
    fn kb_forget_removes() {
        let mut kb = KnowledgeBase::from_rules([Rule::new("x"), Rule::new("y")]);
        assert!(kb.forget("x").is_some());
        assert!(kb.forget("x").is_none());
        assert_eq!(kb.len(), 1);
    }

    #[test]
    fn kb_skills_deduplicate_first_pattern_kinds() {
        let kb = KnowledgeBase::from_rules([
            Rule::new("a").when(Pattern::new("obs")),
            Rule::new("b").when(Pattern::new("obs")),
            Rule::new("c").when(Pattern::new("problem")),
            Rule::new("d"), // no pattern, no skill
        ]);
        assert_eq!(kb.skills(), ["obs", "problem"]);
    }

    #[test]
    fn rule_skill_is_first_pattern_kind() {
        let r = Rule::new("r")
            .when(Pattern::new("disk").field("v", FieldPattern::Any))
            .when(Pattern::new("cpu"));
        assert_eq!(r.skill(), Some("disk"));
    }
}
