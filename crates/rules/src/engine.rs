use std::collections::BTreeSet;

use crate::{Bindings, Effect, Fact, FactId, Finding, KnowledgeBase, Rule, WorkingMemory};

/// Statistics of one [`Engine::run`], used by the grid for cost
/// accounting (an analysis task's CPU cost is proportional to the work
/// the engine did).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Recognize-act cycles executed.
    pub cycles: u64,
    /// Activations fired.
    pub fired: u64,
    /// Facts asserted by effects.
    pub asserted: u64,
    /// Facts retracted by effects.
    pub retracted: u64,
    /// Pattern-match attempts (join work), a proxy for CPU cost.
    pub match_attempts: u64,
}

/// Result of a forward-chaining run.
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// Findings emitted by fired rules, in firing order.
    pub findings: Vec<Finding>,
    /// Execution statistics.
    pub stats: RunStats,
    /// Whether the run stopped because it hit the cycle limit instead of
    /// reaching quiescence.
    pub truncated: bool,
}

/// One fireable (rule, fact-tuple) combination.
#[derive(Debug, Clone)]
struct Activation {
    rule_index: usize,
    fact_ids: Vec<FactId>,
    bindings: Bindings,
    salience: i32,
    /// Highest fact id in the tuple — recency for conflict resolution.
    recency: FactId,
}

/// Forward-chaining inference engine.
///
/// The engine owns a [`WorkingMemory`] and a [`KnowledgeBase`] and runs
/// the classic recognize–act cycle: compute the conflict set (all
/// activations not yet fired), pick the best by salience then recency,
/// fire it, apply its effects, repeat until quiescence.
///
/// **Refraction**: an activation is identified by `(rule, fact ids)`; once
/// fired it never fires again, even across separate [`run`](Engine::run)
/// calls, unless one of its facts was retracted and re-asserted (new ids).
///
/// # Examples
///
/// ```
/// use agentgrid_rules::{Engine, Fact, KnowledgeBase, parse_rules};
///
/// let kb = KnowledgeBase::from_rules(parse_rules(r#"
///     rule "chain" {
///         when seed(n: ?n)
///         then assert grown(n: ?n)
///     }
///     rule "harvest" {
///         when grown(n: ?n)
///         then emit info "field" "grew ?n"
///     }
/// "#)?);
/// let mut engine = Engine::new(kb);
/// engine.insert(Fact::new("seed").with("n", 1.0));
/// let out = engine.run();
/// assert_eq!(out.findings.len(), 1);
/// assert_eq!(out.findings[0].message, "grew 1");
/// # Ok::<(), agentgrid_rules::ParseRuleError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    kb: KnowledgeBase,
    wm: WorkingMemory,
    fired: BTreeSet<(String, Vec<FactId>)>,
    max_cycles: u64,
}

impl Engine {
    /// Creates an engine over a knowledge base with an empty working
    /// memory and the default cycle limit (10 000).
    pub fn new(kb: KnowledgeBase) -> Self {
        Engine {
            kb,
            wm: WorkingMemory::new(),
            fired: BTreeSet::new(),
            max_cycles: 10_000,
        }
    }

    /// Replaces the cycle limit (a safety net against runaway rule sets).
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Inserts a fact.
    pub fn insert(&mut self, fact: Fact) -> FactId {
        self.wm.insert(fact)
    }

    /// Inserts many facts.
    pub fn insert_all(&mut self, facts: impl IntoIterator<Item = Fact>) {
        for fact in facts {
            self.wm.insert(fact);
        }
    }

    /// Read access to the working memory.
    pub fn memory(&self) -> &WorkingMemory {
        &self.wm
    }

    /// Read access to the knowledge base.
    pub fn knowledge(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Mutable access to the knowledge base (to learn rules at runtime).
    pub fn knowledge_mut(&mut self) -> &mut KnowledgeBase {
        &mut self.kb
    }

    /// Clears the working memory and refraction history (e.g. between
    /// analysis batches).
    pub fn reset(&mut self) {
        self.wm = WorkingMemory::new();
        self.fired.clear();
    }

    /// Runs recognize–act cycles until quiescence or the cycle limit.
    pub fn run(&mut self) -> RunOutcome {
        let mut outcome = RunOutcome::default();
        loop {
            if outcome.stats.cycles >= self.max_cycles {
                outcome.truncated = true;
                break;
            }
            let Some(activation) = self.best_activation(&mut outcome.stats) else {
                break;
            };
            outcome.stats.cycles += 1;
            self.fire(activation, &mut outcome);
        }
        outcome
    }

    /// Computes the conflict set and returns the activation with the
    /// highest salience, breaking ties by recency then rule order.
    fn best_activation(&self, stats: &mut RunStats) -> Option<Activation> {
        let mut best: Option<Activation> = None;
        for (rule_index, rule) in self.kb.iter().enumerate() {
            for (fact_ids, bindings) in self.match_rule(rule, stats) {
                let key = (rule.name().to_owned(), fact_ids.clone());
                if self.fired.contains(&key) {
                    continue;
                }
                if !rule.guards_pass(&bindings) {
                    continue;
                }
                let recency = fact_ids.iter().copied().max().unwrap_or(FactId(0));
                let candidate = Activation {
                    rule_index,
                    fact_ids,
                    bindings,
                    salience: rule.salience_value(),
                    recency,
                };
                let better = match &best {
                    None => true,
                    Some(current) => {
                        (candidate.salience, candidate.recency, {
                            // Lower rule index wins the final tie, so invert.
                            usize::MAX - candidate.rule_index
                        }) > (
                            current.salience,
                            current.recency,
                            usize::MAX - current.rule_index,
                        )
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }
        }
        best
    }

    /// Joins the rule's patterns left-to-right, producing every consistent
    /// `(fact tuple, bindings)` combination.
    fn match_rule(&self, rule: &Rule, stats: &mut RunStats) -> Vec<(Vec<FactId>, Bindings)> {
        let mut partial: Vec<(Vec<FactId>, Bindings)> = vec![(Vec::new(), Bindings::new())];
        for pattern in rule.patterns() {
            let mut next = Vec::new();
            for (ids, bindings) in &partial {
                for (id, extended) in pattern.match_all(&self.wm, bindings) {
                    stats.match_attempts += 1;
                    // A fact may not satisfy two patterns of the same rule
                    // instance (set semantics for the tuple).
                    if ids.contains(&id) {
                        continue;
                    }
                    let mut tuple = ids.clone();
                    tuple.push(id);
                    next.push((tuple, extended));
                }
            }
            partial = next;
            if partial.is_empty() {
                break;
            }
        }
        if rule.patterns().is_empty() {
            // A rule with no patterns matches once on empty tuple.
            return partial;
        }
        partial
    }

    fn fire(&mut self, activation: Activation, outcome: &mut RunOutcome) {
        let rule = self
            .kb
            .iter()
            .nth(activation.rule_index)
            .expect("activation refers to an existing rule")
            .clone();
        self.fired
            .insert((rule.name().to_owned(), activation.fact_ids.clone()));
        outcome.stats.fired += 1;

        for effect in rule.effects() {
            match effect {
                Effect::Assert { .. } => {
                    if let Some(fact) = effect.instantiate(&activation.bindings) {
                        self.wm.insert(fact);
                        outcome.stats.asserted += 1;
                    }
                }
                Effect::Retract(pattern_index) => {
                    if let Some(id) = activation.fact_ids.get(*pattern_index) {
                        if self.wm.retract(*id).is_some() {
                            outcome.stats.retracted += 1;
                        }
                    }
                }
                Effect::Emit {
                    severity,
                    device,
                    message,
                } => {
                    let device_text = device
                        .resolve(&activation.bindings)
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "unknown".to_owned());
                    outcome.findings.push(Finding {
                        rule: rule.name().to_owned(),
                        device: device_text,
                        severity: *severity,
                        message: activation.bindings.substitute(message),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FieldPattern, Guard, GuardOp, Operand, Pattern, RuleSeverity, Term};

    fn emit_rule(name: &str, salience: i32, kind: &str) -> Rule {
        Rule::new(name)
            .salience(salience)
            .when(Pattern::new(kind).field("device", FieldPattern::Var("d".into())))
            .then(Effect::Emit {
                severity: RuleSeverity::Info,
                device: Operand::Var("d".into()),
                message: format!("{name} fired"),
            })
    }

    #[test]
    fn fires_once_per_fact_tuple() {
        let kb = KnowledgeBase::from_rules([emit_rule("r", 0, "obs")]);
        let mut engine = Engine::new(kb);
        engine.insert(Fact::new("obs").with("device", "a"));
        assert_eq!(engine.run().findings.len(), 1);
        // Re-running without new facts fires nothing (refraction).
        assert_eq!(engine.run().findings.len(), 0);
        // A new fact re-activates the rule once.
        engine.insert(Fact::new("obs").with("device", "b"));
        assert_eq!(engine.run().findings.len(), 1);
    }

    #[test]
    fn salience_orders_firing() {
        let kb =
            KnowledgeBase::from_rules([emit_rule("low", 1, "obs"), emit_rule("high", 10, "obs")]);
        let mut engine = Engine::new(kb);
        engine.insert(Fact::new("obs").with("device", "a"));
        let out = engine.run();
        assert_eq!(out.findings[0].rule, "high");
        assert_eq!(out.findings[1].rule, "low");
    }

    #[test]
    fn chained_assertion_triggers_downstream_rule() {
        let r1 = Rule::new("producer")
            .when(Pattern::new("obs").field("device", FieldPattern::Var("d".into())))
            .then(Effect::Assert {
                kind: "problem".into(),
                fields: vec![("device".into(), Operand::Var("d".into()))],
            });
        let r2 = emit_rule("consumer", 0, "problem");
        let mut engine = Engine::new(KnowledgeBase::from_rules([r1, r2]));
        engine.insert(Fact::new("obs").with("device", "x"));
        let out = engine.run();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "consumer");
        assert_eq!(out.stats.asserted, 1);
        assert_eq!(engine.memory().of_kind("problem").count(), 1);
    }

    #[test]
    fn retraction_removes_fact() {
        let rule = Rule::new("consume")
            .when(Pattern::new("token"))
            .then(Effect::Retract(0));
        let mut engine = Engine::new(KnowledgeBase::from_rules([rule]));
        engine.insert(Fact::new("token"));
        engine.insert(Fact::new("token"));
        let out = engine.run();
        assert_eq!(out.stats.retracted, 2);
        assert!(engine.memory().is_empty());
    }

    #[test]
    fn guards_block_activation() {
        let rule = Rule::new("threshold")
            .when(Pattern::new("obs").field("value", FieldPattern::Var("v".into())))
            .guard(Guard::new(
                Operand::Var("v".into()),
                GuardOp::Gt,
                Operand::Const(Term::from(50.0)),
            ))
            .then(Effect::Emit {
                severity: RuleSeverity::Warning,
                device: Operand::Const(Term::from("d")),
                message: "over".into(),
            });
        let mut engine = Engine::new(KnowledgeBase::from_rules([rule]));
        engine.insert(Fact::new("obs").with("value", 10.0));
        engine.insert(Fact::new("obs").with("value", 90.0));
        let out = engine.run();
        assert_eq!(out.findings.len(), 1);
    }

    #[test]
    fn multi_pattern_join_binds_across_facts() {
        // Correlate: same device reports high cpu AND low memory.
        let rule = Rule::new("correlated")
            .when(
                Pattern::new("cpu")
                    .field("device", FieldPattern::Var("d".into()))
                    .field("value", FieldPattern::Var("c".into())),
            )
            .when(
                Pattern::new("mem")
                    .field("device", FieldPattern::Var("d".into()))
                    .field("value", FieldPattern::Var("m".into())),
            )
            .guard(Guard::new(
                Operand::Var("c".into()),
                GuardOp::Gt,
                Operand::Const(Term::from(90.0)),
            ))
            .guard(Guard::new(
                Operand::Var("m".into()),
                GuardOp::Lt,
                Operand::Const(Term::from(100.0)),
            ))
            .then(Effect::Emit {
                severity: RuleSeverity::Critical,
                device: Operand::Var("d".into()),
                message: "cpu ?c / mem ?m".into(),
            });
        let mut engine = Engine::new(KnowledgeBase::from_rules([rule]));
        engine.insert(Fact::new("cpu").with("device", "a").with("value", 95.0));
        engine.insert(Fact::new("mem").with("device", "a").with("value", 50.0));
        // Device b has high cpu but plentiful memory: must not fire.
        engine.insert(Fact::new("cpu").with("device", "b").with("value", 95.0));
        engine.insert(Fact::new("mem").with("device", "b").with("value", 900.0));
        let out = engine.run();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].device, "a");
        assert_eq!(out.findings[0].message, "cpu 95 / mem 50");
    }

    #[test]
    fn same_fact_cannot_fill_two_patterns() {
        let rule = Rule::new("pair")
            .when(Pattern::new("x"))
            .when(Pattern::new("x"))
            .then(Effect::Emit {
                severity: RuleSeverity::Info,
                device: Operand::Const(Term::from("-")),
                message: "pair".into(),
            });
        let mut engine = Engine::new(KnowledgeBase::from_rules([rule]));
        engine.insert(Fact::new("x"));
        // Only one x: no (a,a) tuple allowed → no firing.
        assert_eq!(engine.run().findings.len(), 0);
        engine.insert(Fact::new("x"));
        // Two x facts: (a,b) and (b,a) are distinct tuples.
        assert_eq!(engine.run().findings.len(), 2);
    }

    #[test]
    fn cycle_limit_stops_runaway_rules() {
        // Rule asserts its own trigger forever.
        let rule = Rule::new("loop")
            .when(Pattern::new("t").field("n", FieldPattern::Var("n".into())))
            .then(Effect::Assert {
                kind: "t".into(),
                fields: vec![("n".into(), Operand::Var("n".into()))],
            });
        let mut engine = Engine::new(KnowledgeBase::from_rules([rule])).with_max_cycles(25);
        engine.insert(Fact::new("t").with("n", 0.0));
        let out = engine.run();
        assert!(out.truncated);
        assert_eq!(out.stats.cycles, 25);
    }

    #[test]
    fn reset_clears_memory_and_refraction() {
        let kb = KnowledgeBase::from_rules([emit_rule("r", 0, "obs")]);
        let mut engine = Engine::new(kb);
        engine.insert(Fact::new("obs").with("device", "a"));
        engine.run();
        engine.reset();
        assert!(engine.memory().is_empty());
        engine.insert(Fact::new("obs").with("device", "a"));
        assert_eq!(engine.run().findings.len(), 1);
    }

    #[test]
    fn recency_breaks_salience_ties() {
        let kb = KnowledgeBase::from_rules([
            emit_rule("first", 0, "obs"),
            emit_rule("second", 0, "alarm"),
        ]);
        let mut engine = Engine::new(kb);
        engine.insert(Fact::new("obs").with("device", "a"));
        engine.insert(Fact::new("alarm").with("device", "b"));
        let out = engine.run();
        // alarm fact is more recent → its rule fires first.
        assert_eq!(out.findings[0].rule, "second");
    }

    #[test]
    fn stats_count_match_attempts() {
        let kb = KnowledgeBase::from_rules([emit_rule("r", 0, "obs")]);
        let mut engine = Engine::new(kb);
        for i in 0..10 {
            engine.insert(Fact::new("obs").with("device", format!("d{i}")));
        }
        let out = engine.run();
        assert!(out.stats.match_attempts >= 10);
        assert_eq!(out.stats.fired, 10);
    }
}
