use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::{Bindings, Effect, Fact, FactId, Finding, KnowledgeBase, Rule, WorkingMemory};

/// Statistics of one [`Engine::run`], used by the grid for cost
/// accounting (an analysis task's CPU cost is proportional to the work
/// the engine did).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Recognize-act cycles executed.
    pub cycles: u64,
    /// Activations fired.
    pub fired: u64,
    /// Facts asserted by effects.
    pub asserted: u64,
    /// Facts retracted by effects.
    pub retracted: u64,
    /// Pattern-match attempts (join work), a proxy for CPU cost.
    pub match_attempts: u64,
}

/// Result of a forward-chaining run.
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// Findings emitted by fired rules, in firing order.
    pub findings: Vec<Finding>,
    /// Execution statistics.
    pub stats: RunStats,
    /// Whether the run stopped because it hit the cycle limit instead of
    /// reaching quiescence.
    pub truncated: bool,
}

/// Agenda ordering key.
///
/// `BTreeMap::pop_first` on this key yields exactly the activation the
/// naive conflict-set scan would pick: highest salience, then highest
/// recency (max fact id in the tuple), then lowest rule index, then the
/// lexicographically smallest fact tuple — the scan enumerates tuples in
/// ascending-id order and keeps the first of equals, so the smallest
/// tuple wins the final tie there too.
type AgendaKey = (Reverse<i32>, Reverse<FactId>, usize, Vec<FactId>);

/// Forward-chaining inference engine with TREAT-style incremental
/// matching.
///
/// The engine owns a [`WorkingMemory`] and a shared [`KnowledgeBase`] and
/// runs the classic recognize–act cycle, but the conflict set is kept as
/// a persistent **agenda** across cycles: after a rule fires, only rules
/// whose patterns touch the cycle's delta (facts asserted or retracted by
/// the effects) are re-matched, and entries invalidated by retraction are
/// removed. Untouched rules keep their agenda entries verbatim — the
/// conflict set is never rebuilt from scratch inside a run.
///
/// Observable behaviour (findings, firing order, `fired`/`asserted`/
/// `retracted` counts) is identical to the retained
/// [`NaiveEngine`](crate::NaiveEngine); only
/// [`RunStats::match_attempts`] shrinks.
///
/// **Refraction**: an activation is identified by `(rule, fact ids)`; once
/// fired it never fires again, even across separate [`run`](Engine::run)
/// calls, unless one of its facts was retracted and re-asserted (new ids).
/// Internally the set is keyed by `(rule index, fact ids)` — no string
/// allocation per candidate — and remapped by rule *name* if the
/// knowledge base is edited, preserving the name-keyed semantics.
///
/// # Examples
///
/// ```
/// use agentgrid_rules::{Engine, Fact, KnowledgeBase, parse_rules};
///
/// let kb = KnowledgeBase::from_rules(parse_rules(r#"
///     rule "chain" {
///         when seed(n: ?n)
///         then assert grown(n: ?n)
///     }
///     rule "harvest" {
///         when grown(n: ?n)
///         then emit info "field" "grew ?n"
///     }
/// "#)?);
/// let mut engine = Engine::new(kb);
/// engine.insert(Fact::new("seed").with("n", 1.0));
/// let out = engine.run();
/// assert_eq!(out.findings.len(), 1);
/// assert_eq!(out.findings[0].message, "grew 1");
/// # Ok::<(), agentgrid_rules::ParseRuleError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    kb: Arc<KnowledgeBase>,
    wm: WorkingMemory,
    /// Refraction set keyed by `(rule index, fact tuple)`.
    fired: BTreeSet<(usize, Vec<FactId>)>,
    /// Persistent conflict set: unfired, guard-passing activations.
    agenda: BTreeMap<AgendaKey, Bindings>,
    /// Rule-name snapshot backing the indices in `fired`; used to remap
    /// the refraction set when the knowledge base is edited.
    rule_names: Vec<String>,
    /// Facts asserted since the agenda was last brought up to date —
    /// external inserts plus the previous cycle's assert effects.
    pending_added: Vec<FactId>,
    /// Facts retracted since the agenda was last brought up to date
    /// (stored by value: they are gone from working memory).
    pending_removed: Vec<Fact>,
    /// Whether the agenda reflects the working memory. `false` forces one
    /// full conflict-set build on the next run.
    primed: bool,
    /// Set by [`knowledge_mut`](Engine::knowledge_mut): rules may have
    /// changed, so re-sync names and rebuild the agenda.
    kb_dirty: bool,
    max_cycles: u64,
}

impl Engine {
    /// Creates an engine over a knowledge base with an empty working
    /// memory and the default cycle limit (10 000).
    pub fn new(kb: KnowledgeBase) -> Self {
        Engine::shared(Arc::new(kb))
    }

    /// Creates an engine over a knowledge base shared with other engines
    /// (e.g. one compiled rule set per grid, many analyzers).
    pub fn shared(kb: Arc<KnowledgeBase>) -> Self {
        let rule_names = kb.iter().map(|r| r.name().to_owned()).collect();
        Engine {
            kb,
            wm: WorkingMemory::new(),
            fired: BTreeSet::new(),
            agenda: BTreeMap::new(),
            rule_names,
            pending_added: Vec::new(),
            pending_removed: Vec::new(),
            primed: false,
            kb_dirty: false,
            max_cycles: 10_000,
        }
    }

    /// Replaces the cycle limit (a safety net against runaway rule sets).
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Inserts a fact.
    pub fn insert(&mut self, fact: Fact) -> FactId {
        let id = self.wm.insert(fact);
        self.pending_added.push(id);
        id
    }

    /// Inserts many facts.
    pub fn insert_all(&mut self, facts: impl IntoIterator<Item = Fact>) {
        for fact in facts {
            self.insert(fact);
        }
    }

    /// Read access to the working memory.
    pub fn memory(&self) -> &WorkingMemory {
        &self.wm
    }

    /// Read access to the knowledge base.
    pub fn knowledge(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Mutable access to the knowledge base (to learn rules at runtime).
    ///
    /// If the base is shared with other engines this copies it first
    /// (copy-on-write), so learning stays local to this engine.
    pub fn knowledge_mut(&mut self) -> &mut KnowledgeBase {
        self.kb_dirty = true;
        Arc::make_mut(&mut self.kb)
    }

    /// Clears the working memory, agenda and refraction history (e.g.
    /// between analysis batches). The knowledge base is kept.
    pub fn reset(&mut self) {
        self.wm = WorkingMemory::new();
        self.fired.clear();
        self.agenda.clear();
        self.pending_added.clear();
        self.pending_removed.clear();
        self.primed = false;
    }

    /// Runs recognize–act cycles until quiescence or the cycle limit.
    ///
    /// Delta integration is lazy — it runs at the top of each cycle, just
    /// before the pick, mirroring when the naive engine computes its
    /// conflict set. That alignment is what keeps `match_attempts` a
    /// strict subset of the naive count: both engines examine exactly the
    /// same working-memory states, the incremental one just skips the
    /// rules the delta cannot have touched (and a truncated run leaves
    /// its last delta pending, exactly as the naive engine never looks at
    /// the post-truncation state).
    pub fn run(&mut self) -> RunOutcome {
        let mut outcome = RunOutcome::default();
        self.sync_knowledge();
        loop {
            if outcome.stats.cycles >= self.max_cycles {
                outcome.truncated = true;
                break;
            }
            self.integrate(&mut outcome.stats);
            let Some((key, bindings)) = self.agenda.pop_first() else {
                break;
            };
            outcome.stats.cycles += 1;
            self.fire(key, bindings, &mut outcome);
        }
        outcome
    }

    /// Re-syncs engine state after knowledge-base edits: refraction
    /// entries follow their rule's *name* to its new index (entries of
    /// removed rules drop), and the agenda is scheduled for a rebuild
    /// since rule bodies may have changed.
    fn sync_knowledge(&mut self) {
        if !self.kb_dirty {
            return;
        }
        self.kb_dirty = false;
        let new_names: Vec<String> = self.kb.iter().map(|r| r.name().to_owned()).collect();
        if new_names != self.rule_names {
            let index_of: BTreeMap<&str, usize> = new_names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.as_str(), i))
                .collect();
            self.fired = std::mem::take(&mut self.fired)
                .into_iter()
                .filter_map(|(old_index, ids)| {
                    let name = self.rule_names.get(old_index)?;
                    index_of.get(name.as_str()).map(|&new| (new, ids))
                })
                .collect();
            self.rule_names = new_names;
        }
        self.primed = false;
    }

    /// Brings the agenda up to date with working memory: a full build if
    /// unprimed, otherwise a delta pass over rules touched by the facts
    /// asserted or retracted since the last integration.
    fn integrate(&mut self, stats: &mut RunStats) {
        let kb = Arc::clone(&self.kb);
        if !self.primed {
            self.agenda.clear();
            self.pending_added.clear();
            self.pending_removed.clear();
            for (rule_index, rule) in kb.iter().enumerate() {
                self.refresh_rule(rule_index, rule, stats);
            }
            self.primed = true;
            return;
        }
        if self.pending_added.is_empty() && self.pending_removed.is_empty() {
            return;
        }
        let added = std::mem::take(&mut self.pending_added);
        let removed = std::mem::take(&mut self.pending_removed);
        for (rule_index, rule) in kb.iter().enumerate() {
            if self.touched(rule, &added, &removed) {
                self.refresh_rule(rule_index, rule, stats);
            }
        }
    }

    /// Whether any pattern of `rule` individually matches an added or
    /// removed fact — i.e. whether the rule's match set can have changed.
    fn touched(&self, rule: &Rule, added: &[FactId], removed: &[Fact]) -> bool {
        rule.patterns().iter().any(|pattern| {
            added.iter().any(|id| {
                self.wm
                    .get(*id)
                    .is_some_and(|fact| pattern.matches(fact, &mut Bindings::new()))
            }) || removed
                .iter()
                .any(|fact| pattern.matches(fact, &mut Bindings::new()))
        })
    }

    /// Recomputes one rule's agenda entries from the current working
    /// memory, dropping any stale ones first. Refraction and guards are
    /// checked here, so the agenda holds only fireable activations.
    fn refresh_rule(&mut self, rule_index: usize, rule: &Rule, stats: &mut RunStats) {
        self.agenda.retain(|key, _| key.2 != rule_index);
        let salience = rule.salience_value();
        for (fact_ids, bindings) in self.match_rule(rule, stats) {
            let fired_key = (rule_index, fact_ids);
            if self.fired.contains(&fired_key) {
                continue;
            }
            if !rule.guards_pass(&bindings) {
                continue;
            }
            let recency = fired_key.1.iter().copied().max().unwrap_or(FactId(0));
            self.agenda.insert(
                (Reverse(salience), Reverse(recency), rule_index, fired_key.1),
                bindings,
            );
        }
    }

    /// Joins the rule's patterns left-to-right, producing every consistent
    /// `(fact tuple, bindings)` combination.
    fn match_rule(&self, rule: &Rule, stats: &mut RunStats) -> Vec<(Vec<FactId>, Bindings)> {
        let mut partial: Vec<(Vec<FactId>, Bindings)> = vec![(Vec::new(), Bindings::new())];
        for pattern in rule.patterns() {
            let mut next = Vec::new();
            for (ids, bindings) in &partial {
                for (id, extended) in pattern.match_all(&self.wm, bindings) {
                    stats.match_attempts += 1;
                    // A fact may not satisfy two patterns of the same rule
                    // instance (set semantics for the tuple).
                    if ids.contains(&id) {
                        continue;
                    }
                    let mut tuple = ids.clone();
                    tuple.push(id);
                    next.push((tuple, extended));
                }
            }
            partial = next;
            if partial.is_empty() {
                break;
            }
        }
        if rule.patterns().is_empty() {
            // A rule with no patterns matches once on empty tuple.
            return partial;
        }
        partial
    }

    fn fire(&mut self, key: AgendaKey, bindings: Bindings, outcome: &mut RunOutcome) {
        let (_, _, rule_index, fact_ids) = key;
        let kb = Arc::clone(&self.kb);
        let rule = kb
            .iter()
            .nth(rule_index)
            .expect("agenda refers to an existing rule");
        self.fired.insert((rule_index, fact_ids.clone()));
        outcome.stats.fired += 1;

        for effect in rule.effects() {
            match effect {
                Effect::Assert { .. } => {
                    if let Some(fact) = effect.instantiate(&bindings) {
                        let id = self.wm.insert(fact);
                        self.pending_added.push(id);
                        outcome.stats.asserted += 1;
                    }
                }
                Effect::Retract(pattern_index) => {
                    if let Some(id) = fact_ids.get(*pattern_index) {
                        if let Some(fact) = self.wm.retract(*id) {
                            self.pending_removed.push(fact);
                            outcome.stats.retracted += 1;
                        }
                    }
                }
                Effect::Emit {
                    severity,
                    device,
                    message,
                } => {
                    let device_text = device
                        .resolve(&bindings)
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "unknown".to_owned());
                    outcome.findings.push(Finding {
                        rule: rule.name().to_owned(),
                        device: device_text,
                        severity: *severity,
                        message: bindings.substitute(message),
                    });
                }
            }
        }
        // The delta sits in `pending_added`/`pending_removed` until the
        // next cycle's `integrate` — the TREAT re-match happens there,
        // lazily, so a truncated run does no work the naive engine
        // wouldn't. Stale agenda entries referencing retracted facts are
        // guaranteed to be purged before the next pick.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FieldPattern, Guard, GuardOp, Operand, Pattern, RuleSeverity, Term};

    fn emit_rule(name: &str, salience: i32, kind: &str) -> Rule {
        Rule::new(name)
            .salience(salience)
            .when(Pattern::new(kind).field("device", FieldPattern::Var("d".into())))
            .then(Effect::Emit {
                severity: RuleSeverity::Info,
                device: Operand::Var("d".into()),
                message: format!("{name} fired"),
            })
    }

    #[test]
    fn fires_once_per_fact_tuple() {
        let kb = KnowledgeBase::from_rules([emit_rule("r", 0, "obs")]);
        let mut engine = Engine::new(kb);
        engine.insert(Fact::new("obs").with("device", "a"));
        assert_eq!(engine.run().findings.len(), 1);
        // Re-running without new facts fires nothing (refraction).
        assert_eq!(engine.run().findings.len(), 0);
        // A new fact re-activates the rule once.
        engine.insert(Fact::new("obs").with("device", "b"));
        assert_eq!(engine.run().findings.len(), 1);
    }

    #[test]
    fn salience_orders_firing() {
        let kb =
            KnowledgeBase::from_rules([emit_rule("low", 1, "obs"), emit_rule("high", 10, "obs")]);
        let mut engine = Engine::new(kb);
        engine.insert(Fact::new("obs").with("device", "a"));
        let out = engine.run();
        assert_eq!(out.findings[0].rule, "high");
        assert_eq!(out.findings[1].rule, "low");
    }

    #[test]
    fn chained_assertion_triggers_downstream_rule() {
        let r1 = Rule::new("producer")
            .when(Pattern::new("obs").field("device", FieldPattern::Var("d".into())))
            .then(Effect::Assert {
                kind: "problem".into(),
                fields: vec![("device".into(), Operand::Var("d".into()))],
            });
        let r2 = emit_rule("consumer", 0, "problem");
        let mut engine = Engine::new(KnowledgeBase::from_rules([r1, r2]));
        engine.insert(Fact::new("obs").with("device", "x"));
        let out = engine.run();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "consumer");
        assert_eq!(out.stats.asserted, 1);
        assert_eq!(engine.memory().of_kind("problem").count(), 1);
    }

    #[test]
    fn retraction_removes_fact() {
        let rule = Rule::new("consume")
            .when(Pattern::new("token"))
            .then(Effect::Retract(0));
        let mut engine = Engine::new(KnowledgeBase::from_rules([rule]));
        engine.insert(Fact::new("token"));
        engine.insert(Fact::new("token"));
        let out = engine.run();
        assert_eq!(out.stats.retracted, 2);
        assert!(engine.memory().is_empty());
    }

    #[test]
    fn guards_block_activation() {
        let rule = Rule::new("threshold")
            .when(Pattern::new("obs").field("value", FieldPattern::Var("v".into())))
            .guard(Guard::new(
                Operand::Var("v".into()),
                GuardOp::Gt,
                Operand::Const(Term::from(50.0)),
            ))
            .then(Effect::Emit {
                severity: RuleSeverity::Warning,
                device: Operand::Const(Term::from("d")),
                message: "over".into(),
            });
        let mut engine = Engine::new(KnowledgeBase::from_rules([rule]));
        engine.insert(Fact::new("obs").with("value", 10.0));
        engine.insert(Fact::new("obs").with("value", 90.0));
        let out = engine.run();
        assert_eq!(out.findings.len(), 1);
    }

    #[test]
    fn multi_pattern_join_binds_across_facts() {
        // Correlate: same device reports high cpu AND low memory.
        let rule = Rule::new("correlated")
            .when(
                Pattern::new("cpu")
                    .field("device", FieldPattern::Var("d".into()))
                    .field("value", FieldPattern::Var("c".into())),
            )
            .when(
                Pattern::new("mem")
                    .field("device", FieldPattern::Var("d".into()))
                    .field("value", FieldPattern::Var("m".into())),
            )
            .guard(Guard::new(
                Operand::Var("c".into()),
                GuardOp::Gt,
                Operand::Const(Term::from(90.0)),
            ))
            .guard(Guard::new(
                Operand::Var("m".into()),
                GuardOp::Lt,
                Operand::Const(Term::from(100.0)),
            ))
            .then(Effect::Emit {
                severity: RuleSeverity::Critical,
                device: Operand::Var("d".into()),
                message: "cpu ?c / mem ?m".into(),
            });
        let mut engine = Engine::new(KnowledgeBase::from_rules([rule]));
        engine.insert(Fact::new("cpu").with("device", "a").with("value", 95.0));
        engine.insert(Fact::new("mem").with("device", "a").with("value", 50.0));
        // Device b has high cpu but plentiful memory: must not fire.
        engine.insert(Fact::new("cpu").with("device", "b").with("value", 95.0));
        engine.insert(Fact::new("mem").with("device", "b").with("value", 900.0));
        let out = engine.run();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].device, "a");
        assert_eq!(out.findings[0].message, "cpu 95 / mem 50");
    }

    #[test]
    fn same_fact_cannot_fill_two_patterns() {
        let rule = Rule::new("pair")
            .when(Pattern::new("x"))
            .when(Pattern::new("x"))
            .then(Effect::Emit {
                severity: RuleSeverity::Info,
                device: Operand::Const(Term::from("-")),
                message: "pair".into(),
            });
        let mut engine = Engine::new(KnowledgeBase::from_rules([rule]));
        engine.insert(Fact::new("x"));
        // Only one x: no (a,a) tuple allowed → no firing.
        assert_eq!(engine.run().findings.len(), 0);
        engine.insert(Fact::new("x"));
        // Two x facts: (a,b) and (b,a) are distinct tuples.
        assert_eq!(engine.run().findings.len(), 2);
    }

    #[test]
    fn cycle_limit_stops_runaway_rules() {
        // Rule asserts its own trigger forever.
        let rule = Rule::new("loop")
            .when(Pattern::new("t").field("n", FieldPattern::Var("n".into())))
            .then(Effect::Assert {
                kind: "t".into(),
                fields: vec![("n".into(), Operand::Var("n".into()))],
            });
        let mut engine = Engine::new(KnowledgeBase::from_rules([rule])).with_max_cycles(25);
        engine.insert(Fact::new("t").with("n", 0.0));
        let out = engine.run();
        assert!(out.truncated);
        assert_eq!(out.stats.cycles, 25);
    }

    #[test]
    fn reset_clears_memory_and_refraction() {
        let kb = KnowledgeBase::from_rules([emit_rule("r", 0, "obs")]);
        let mut engine = Engine::new(kb);
        engine.insert(Fact::new("obs").with("device", "a"));
        engine.run();
        engine.reset();
        assert!(engine.memory().is_empty());
        engine.insert(Fact::new("obs").with("device", "a"));
        assert_eq!(engine.run().findings.len(), 1);
    }

    #[test]
    fn recency_breaks_salience_ties() {
        let kb = KnowledgeBase::from_rules([
            emit_rule("first", 0, "obs"),
            emit_rule("second", 0, "alarm"),
        ]);
        let mut engine = Engine::new(kb);
        engine.insert(Fact::new("obs").with("device", "a"));
        engine.insert(Fact::new("alarm").with("device", "b"));
        let out = engine.run();
        // alarm fact is more recent → its rule fires first.
        assert_eq!(out.findings[0].rule, "second");
    }

    #[test]
    fn stats_count_match_attempts() {
        let kb = KnowledgeBase::from_rules([emit_rule("r", 0, "obs")]);
        let mut engine = Engine::new(kb);
        for i in 0..10 {
            engine.insert(Fact::new("obs").with("device", format!("d{i}")));
        }
        let out = engine.run();
        assert!(out.stats.match_attempts >= 10);
        assert_eq!(out.stats.fired, 10);
    }

    #[test]
    fn shared_knowledge_learn_is_copy_on_write() {
        let kb = Arc::new(KnowledgeBase::from_rules([emit_rule("r", 0, "obs")]));
        let mut a = Engine::shared(Arc::clone(&kb));
        let mut b = Engine::shared(Arc::clone(&kb));
        a.knowledge_mut().learn(emit_rule("extra", 0, "alarm"));
        assert_eq!(a.knowledge().len(), 2);
        // b and the original base are untouched.
        assert_eq!(b.knowledge().len(), 1);
        assert_eq!(kb.len(), 1);
        a.insert(Fact::new("alarm").with("device", "x"));
        b.insert(Fact::new("alarm").with("device", "x"));
        assert_eq!(a.run().findings.len(), 1);
        assert_eq!(b.run().findings.len(), 0);
    }

    #[test]
    fn learned_rule_applies_between_runs() {
        let kb = KnowledgeBase::from_rules([emit_rule("r", 0, "obs")]);
        let mut engine = Engine::new(kb);
        engine.insert(Fact::new("obs").with("device", "a"));
        assert_eq!(engine.run().findings.len(), 1);
        // Learning mid-stream: the new rule sees already-present facts but
        // refraction on the old rule still holds.
        engine.knowledge_mut().learn(emit_rule("extra", 0, "obs"));
        let out = engine.run();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "extra");
    }

    #[test]
    fn retraction_invalidates_pending_activations() {
        // High-salience rule retracts the token; the low-salience rule's
        // activation on the same token must vanish from the agenda.
        let eater = Rule::new("eater")
            .salience(10)
            .when(Pattern::new("token"))
            .then(Effect::Retract(0));
        let watcher = Rule::new("watcher")
            .salience(0)
            .when(Pattern::new("token"))
            .then(Effect::Emit {
                severity: RuleSeverity::Info,
                device: Operand::Const(Term::from("-")),
                message: "saw token".into(),
            });
        let mut engine = Engine::new(KnowledgeBase::from_rules([eater, watcher]));
        engine.insert(Fact::new("token"));
        let out = engine.run();
        assert_eq!(out.stats.retracted, 1);
        assert_eq!(out.findings.len(), 0);
    }
}
