//! Forward-chaining production-rule engine for `agentgrid`.
//!
//! The paper's processor grid turns collected data into management
//! information by running "a large number of analysis rules" over it
//! (§2.1, §4). This crate is that inference substrate:
//!
//! * [`Fact`]s with typed fields live in a [`WorkingMemory`];
//! * [`Rule`]s join [`Pattern`]s over those facts with variable binding,
//!   filter matches through [`Guard`]s, and fire [`Effect`]s (assert new
//!   facts, retract matched ones, emit [`Finding`]s);
//! * the [`Engine`] runs forward chaining with refraction (an activation
//!   never fires twice on the same facts) and salience-then-recency
//!   conflict resolution — incrementally, via a TREAT-style persistent
//!   agenda over an alpha-indexed working memory ([`NaiveEngine`] retains
//!   the full-recompute matcher as the executable reference);
//! * rules can be written in a small textual DSL ([`parse_rules`]) so a
//!   [`KnowledgeBase`] can be extended at runtime — the paper's "agents can
//!   learn new rules".
//!
//! # Examples
//!
//! ```
//! use agentgrid_rules::{Engine, Fact, KnowledgeBase, parse_rules};
//!
//! let kb = KnowledgeBase::from_rules(parse_rules(r#"
//!     rule "high-cpu" salience 10 {
//!         when obs(device: ?d, metric: "cpu.load", value: ?v)
//!         if ?v > 90
//!         then emit critical ?d "cpu overload"
//!     }
//! "#)?);
//! let mut engine = Engine::new(kb);
//! engine.insert(Fact::new("obs")
//!     .with("device", "router-1")
//!     .with("metric", "cpu.load")
//!     .with("value", 97.0));
//! let run = engine.run();
//! assert_eq!(run.findings.len(), 1);
//! assert_eq!(run.findings[0].device, "router-1");
//! # Ok::<(), agentgrid_rules::ParseRuleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dsl;
mod engine;
mod fact;
mod naive;
mod pattern;
mod rule;

pub use dsl::{parse_rules, ParseRuleError};
pub use engine::{Engine, RunOutcome, RunStats};
pub use fact::{Fact, FactId, Term, WorkingMemory};
pub use naive::NaiveEngine;
pub use pattern::{Bindings, FieldPattern, Pattern};
pub use rule::{Effect, Finding, Guard, GuardOp, KnowledgeBase, Operand, Rule, RuleSeverity};
