use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

/// A field value inside a [`Fact`].
///
/// # Examples
///
/// ```
/// use agentgrid_rules::Term;
/// assert!(Term::from(3.0) > Term::from(2.5));
/// assert_eq!(Term::from("up").as_str(), Some("up"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Term {
    /// A numeric value (all numbers are `f64`).
    Num(f64),
    /// A string value.
    Str(String),
    /// A boolean value.
    Bool(bool),
}

impl Term {
    /// Returns the number if this is a `Num`.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Term::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Term::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Term::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl PartialOrd for Term {
    /// Numbers order numerically, strings lexicographically, booleans
    /// false-before-true; mixed kinds are unordered.
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Term::Num(a), Term::Num(b)) => a.partial_cmp(b),
            (Term::Str(a), Term::Str(b)) => Some(a.cmp(b)),
            (Term::Bool(a), Term::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Num(x) => write!(f, "{x}"),
            Term::Str(s) => write!(f, "{s}"),
            Term::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<f64> for Term {
    fn from(x: f64) -> Self {
        Term::Num(x)
    }
}

impl From<i64> for Term {
    fn from(x: i64) -> Self {
        Term::Num(x as f64)
    }
}

impl From<&str> for Term {
    fn from(s: &str) -> Self {
        Term::Str(s.to_owned())
    }
}

impl From<String> for Term {
    fn from(s: String) -> Self {
        Term::Str(s)
    }
}

impl From<bool> for Term {
    fn from(b: bool) -> Self {
        Term::Bool(b)
    }
}

/// Identifier of a fact inside a [`WorkingMemory`].
///
/// Ids are assigned in insertion order, which the engine uses as recency
/// for conflict resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FactId(pub(crate) u64);

impl FactId {
    /// The raw id value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for FactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A typed tuple in working memory: a *kind* plus named fields.
///
/// # Examples
///
/// ```
/// use agentgrid_rules::Fact;
/// let f = Fact::new("obs")
///     .with("device", "sw-1")
///     .with("value", 42.0);
/// assert_eq!(f.kind(), "obs");
/// assert_eq!(f.field("value").unwrap().as_num(), Some(42.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fact {
    kind: String,
    fields: BTreeMap<String, Term>,
}

impl Fact {
    /// Creates an empty fact of the given kind.
    pub fn new(kind: impl Into<String>) -> Self {
        Fact {
            kind: kind.into(),
            fields: BTreeMap::new(),
        }
    }

    /// Adds or replaces a field (builder style).
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Term>) -> Self {
        self.fields.insert(name.into(), value.into());
        self
    }

    /// The fact kind.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Looks up a field.
    pub fn field(&self, name: &str) -> Option<&Term> {
        self.fields.get(name)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn fields(&self) -> impl Iterator<Item = (&str, &Term)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the fact has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.kind)?;
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, ")")
    }
}

/// Index key for a [`Term`] value inside the alpha index.
///
/// `Term` itself is only `PartialOrd`/`PartialEq` (floats), so the index
/// stores a totally ordered encoding. Numbers use the IEEE-754 total-order
/// bit trick, with `-0.0` normalised to `0.0` so that the bucket for a key
/// is always a *superset* of the facts whose field compares `==` to the
/// probed value (`Pattern::matches` re-checks equality on candidates).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum TermKey {
    Bool(bool),
    Num(u64),
    Str(String),
}

impl From<&Term> for TermKey {
    fn from(term: &Term) -> Self {
        match term {
            Term::Num(x) => {
                let x = if *x == 0.0 { 0.0 } else { *x };
                let bits = x.to_bits();
                let ordered = if bits >> 63 == 1 {
                    !bits
                } else {
                    bits | (1 << 63)
                };
                TermKey::Num(ordered)
            }
            Term::Str(s) => TermKey::Str(s.clone()),
            Term::Bool(b) => TermKey::Bool(*b),
        }
    }
}

/// The fact store the engine reasons over.
///
/// Facts are never mutated in place: rules assert new facts and retract
/// old ones, which keeps activation bookkeeping sound.
///
/// Two alpha indexes are maintained alongside the id-ordered map: a
/// per-kind id set (so `of_kind` never scans unrelated facts) and a
/// `(kind, field, value)` index that `Pattern::match_all` probes for
/// literal and already-bound fields.
///
/// # Examples
///
/// ```
/// use agentgrid_rules::{Fact, WorkingMemory};
/// let mut wm = WorkingMemory::new();
/// let id = wm.insert(Fact::new("obs").with("value", 1.0));
/// assert_eq!(wm.len(), 1);
/// wm.retract(id);
/// assert!(wm.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct WorkingMemory {
    facts: BTreeMap<FactId, Fact>,
    next_id: u64,
    by_kind: BTreeMap<String, BTreeSet<FactId>>,
    by_field: BTreeMap<String, BTreeMap<String, BTreeMap<TermKey, BTreeSet<FactId>>>>,
}

impl WorkingMemory {
    /// Creates an empty working memory.
    pub fn new() -> Self {
        WorkingMemory::default()
    }

    /// Inserts a fact, returning its id.
    pub fn insert(&mut self, fact: Fact) -> FactId {
        let id = FactId(self.next_id);
        self.next_id += 1;
        self.by_kind
            .entry(fact.kind.clone())
            .or_default()
            .insert(id);
        let kind_index = self.by_field.entry(fact.kind.clone()).or_default();
        for (name, value) in &fact.fields {
            kind_index
                .entry(name.clone())
                .or_default()
                .entry(TermKey::from(value))
                .or_default()
                .insert(id);
        }
        self.facts.insert(id, fact);
        id
    }

    /// Removes a fact. Returns the fact if it was present.
    pub fn retract(&mut self, id: FactId) -> Option<Fact> {
        let fact = self.facts.remove(&id)?;
        if let Some(ids) = self.by_kind.get_mut(&fact.kind) {
            ids.remove(&id);
        }
        if let Some(kind_index) = self.by_field.get_mut(&fact.kind) {
            for (name, value) in &fact.fields {
                if let Some(values) = kind_index.get_mut(name) {
                    let key = TermKey::from(value);
                    if let Some(ids) = values.get_mut(&key) {
                        ids.remove(&id);
                        if ids.is_empty() {
                            values.remove(&key);
                        }
                    }
                }
            }
        }
        Some(fact)
    }

    /// Looks up a fact by id.
    pub fn get(&self, id: FactId) -> Option<&Fact> {
        self.facts.get(&id)
    }

    /// Iterates over `(id, fact)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, &Fact)> {
        self.facts.iter().map(|(id, f)| (*id, f))
    }

    /// Iterates over the facts of one kind, in insertion order.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = (FactId, &'a Fact)> + 'a {
        self.ids_of_kind(kind)
            .into_iter()
            .flatten()
            .map(|id| (*id, self.facts.get(id).expect("indexed fact exists")))
    }

    /// Id set for a kind (alpha index, level 0).
    pub(crate) fn ids_of_kind(&self, kind: &str) -> Option<&BTreeSet<FactId>> {
        self.by_kind.get(kind)
    }

    /// Id set for facts of `kind` whose field `name` indexes equal to
    /// `value` (alpha index, level 1). `None` means no candidate exists;
    /// callers must still confirm with [`Fact::field`] equality.
    pub(crate) fn ids_by_field(
        &self,
        kind: &str,
        name: &str,
        value: &Term,
    ) -> Option<&BTreeSet<FactId>> {
        self.by_field
            .get(kind)?
            .get(name)?
            .get(&TermKey::from(value))
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_conversions_and_accessors() {
        assert_eq!(Term::from(2i64).as_num(), Some(2.0));
        assert_eq!(Term::from("x").as_str(), Some("x"));
        assert_eq!(Term::from(true).as_bool(), Some(true));
        assert_eq!(Term::from(1.0).as_str(), None);
    }

    #[test]
    fn term_ordering_within_kind_only() {
        assert!(Term::from(1.0) < Term::from(2.0));
        assert!(Term::from("a") < Term::from("b"));
        assert!(Term::from(false) < Term::from(true));
        assert_eq!(Term::from(1.0).partial_cmp(&Term::from("a")), None);
    }

    #[test]
    fn fact_builder_and_display() {
        let f = Fact::new("obs").with("b", 2.0).with("a", "x");
        assert_eq!(f.len(), 2);
        assert_eq!(f.to_string(), "obs(a: x, b: 2)");
    }

    #[test]
    fn memory_assigns_monotonic_ids() {
        let mut wm = WorkingMemory::new();
        let a = wm.insert(Fact::new("x"));
        let b = wm.insert(Fact::new("y"));
        assert!(a < b);
        assert_eq!(wm.get(a).unwrap().kind(), "x");
    }

    #[test]
    fn retract_removes_and_returns() {
        let mut wm = WorkingMemory::new();
        let id = wm.insert(Fact::new("x"));
        assert_eq!(wm.retract(id).unwrap().kind(), "x");
        assert!(wm.retract(id).is_none());
        assert!(wm.is_empty());
    }

    #[test]
    fn of_kind_filters() {
        let mut wm = WorkingMemory::new();
        wm.insert(Fact::new("a"));
        wm.insert(Fact::new("b"));
        wm.insert(Fact::new("a"));
        assert_eq!(wm.of_kind("a").count(), 2);
        assert_eq!(wm.of_kind("c").count(), 0);
    }

    #[test]
    fn ids_are_not_reused_after_retract() {
        let mut wm = WorkingMemory::new();
        let a = wm.insert(Fact::new("x"));
        wm.retract(a);
        let b = wm.insert(Fact::new("y"));
        assert_ne!(a, b);
    }

    #[test]
    fn field_index_probes_by_value() {
        let mut wm = WorkingMemory::new();
        let a = wm.insert(Fact::new("obs").with("device", "sw-1").with("value", 10.0));
        let b = wm.insert(Fact::new("obs").with("device", "sw-2").with("value", 10.0));
        wm.insert(Fact::new("obs").with("device", "sw-3").with("value", 20.0));

        let hit = wm
            .ids_by_field("obs", "device", &Term::from("sw-1"))
            .unwrap();
        assert_eq!(hit.iter().copied().collect::<Vec<_>>(), vec![a]);
        let tens = wm.ids_by_field("obs", "value", &Term::from(10.0)).unwrap();
        assert_eq!(tens.iter().copied().collect::<Vec<_>>(), vec![a, b]);
        assert!(wm
            .ids_by_field("obs", "device", &Term::from("sw-9"))
            .is_none());
        assert!(wm
            .ids_by_field("link", "device", &Term::from("sw-1"))
            .is_none());
    }

    #[test]
    fn field_index_tracks_retraction() {
        let mut wm = WorkingMemory::new();
        let a = wm.insert(Fact::new("obs").with("device", "sw-1"));
        wm.retract(a);
        assert!(wm
            .ids_by_field("obs", "device", &Term::from("sw-1"))
            .is_none());
        assert_eq!(wm.of_kind("obs").count(), 0);
    }

    #[test]
    fn negative_zero_shares_a_bucket_with_zero() {
        let mut wm = WorkingMemory::new();
        let a = wm.insert(Fact::new("obs").with("value", 0.0));
        let b = wm.insert(Fact::new("obs").with("value", -0.0));
        let zeros = wm.ids_by_field("obs", "value", &Term::from(-0.0)).unwrap();
        assert_eq!(zeros.iter().copied().collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn term_key_orders_numbers_totally() {
        let keys: Vec<TermKey> = [-3.5, -0.0, 0.0, 1.0, f64::INFINITY]
            .iter()
            .map(|x| TermKey::from(&Term::Num(*x)))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys[1], keys[2]);
        assert_eq!(sorted, keys);
    }
}
