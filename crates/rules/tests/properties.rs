//! Property-based tests for the rule engine.

use agentgrid_rules::{
    parse_rules, Bindings, Effect, Engine, Fact, FieldPattern, Guard, GuardOp, KnowledgeBase,
    NaiveEngine, Operand, Pattern, Rule, RuleSeverity, Term,
};
use proptest::prelude::*;

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        prop::num::f64::NORMAL.prop_map(Term::Num),
        "[a-z]{0,8}".prop_map(Term::Str),
        any::<bool>().prop_map(Term::Bool),
    ]
}

fn op_strategy() -> impl Strategy<Value = GuardOp> {
    prop_oneof![
        Just(GuardOp::Lt),
        Just(GuardOp::Le),
        Just(GuardOp::Gt),
        Just(GuardOp::Ge),
        Just(GuardOp::Eq),
        Just(GuardOp::Ne),
    ]
}

// --- Random rule sets over a tiny universe, tuned so patterns collide
// --- and join: two kinds, two fields, a handful of values and variables.

fn small_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0i64..3).prop_map(|n| Term::Num(n as f64)),
        prop_oneof![Just("x"), Just("y")].prop_map(Term::from),
    ]
}

fn small_kind() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("a"), Just("b")]
}

fn small_var() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("u"), Just("v")]
}

fn small_fact() -> impl Strategy<Value = Fact> {
    (small_kind(), small_term(), small_term())
        .prop_map(|(kind, f, g)| Fact::new(kind).with("f", f).with("g", g))
}

fn small_field_pattern() -> impl Strategy<Value = FieldPattern> {
    prop_oneof![
        Just(FieldPattern::Any),
        small_term().prop_map(FieldPattern::Const),
        small_var().prop_map(|v| FieldPattern::Var(v.into())),
    ]
}

fn small_pattern() -> impl Strategy<Value = Pattern> {
    (
        small_kind(),
        prop::option::of(small_field_pattern()),
        prop::option::of(small_field_pattern()),
    )
        .prop_map(|(kind, f, g)| {
            let mut p = Pattern::new(kind);
            if let Some(fp) = f {
                p = p.field("f", fp);
            }
            if let Some(gp) = g {
                p = p.field("g", gp);
            }
            p
        })
}

fn small_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        small_term().prop_map(Operand::Const),
        small_var().prop_map(|v| Operand::Var(v.into())),
    ]
}

fn small_effect() -> impl Strategy<Value = Effect> {
    prop_oneof![
        small_operand().prop_map(|device| Effect::Emit {
            severity: RuleSeverity::Info,
            device,
            message: "saw ?u ?v".into(),
        }),
        (small_kind(), small_operand()).prop_map(|(kind, op)| Effect::Assert {
            kind: kind.into(),
            fields: vec![("f".into(), op)],
        }),
        (0usize..2).prop_map(Effect::Retract),
    ]
}

/// Everything of a random rule except its name (names are assigned by
/// index afterwards — duplicate names would alias refraction entries).
type RuleParts = (
    i32,
    Vec<Pattern>,
    Option<(&'static str, GuardOp, Term)>,
    Vec<Effect>,
);

fn rule_parts() -> impl Strategy<Value = RuleParts> {
    (
        -2i32..3,
        prop::collection::vec(small_pattern(), 0..3),
        prop::option::of((small_var(), op_strategy(), small_term())),
        prop::collection::vec(small_effect(), 1..3),
    )
}

fn build_rules(parts: Vec<RuleParts>) -> Vec<Rule> {
    parts
        .into_iter()
        .enumerate()
        .map(|(i, (salience, patterns, guard, effects))| {
            let mut rule = Rule::new(format!("r{i}")).salience(salience);
            for p in patterns {
                rule = rule.when(p);
            }
            if let Some((var, op, term)) = guard {
                rule = rule.guard(Guard::new(
                    Operand::Var(var.into()),
                    op,
                    Operand::Const(term),
                ));
            }
            for e in effects {
                rule = rule.then(e);
            }
            rule
        })
        .collect()
}

proptest! {
    /// The incremental engine is observably equivalent to the retained
    /// naive reference matcher over random rule sets and fact streams
    /// (delivered in chunks with a run after each): same findings in the
    /// same order, same fired/asserted/retracted/cycle counts, same
    /// truncation — and never more match attempts.
    #[test]
    fn incremental_engine_matches_naive_reference(
        parts in prop::collection::vec(rule_parts(), 1..4),
        chunks in prop::collection::vec(prop::collection::vec(small_fact(), 0..6), 1..3),
    ) {
        let kb = KnowledgeBase::from_rules(build_rules(parts));
        let mut naive = NaiveEngine::new(kb.clone()).with_max_cycles(40);
        let mut incremental = Engine::new(kb).with_max_cycles(40);
        let mut naive_attempts = 0u64;
        let mut incremental_attempts = 0u64;
        for chunk in chunks {
            for fact in chunk {
                naive.insert(fact.clone());
                incremental.insert(fact);
            }
            let reference = naive.run();
            let candidate = incremental.run();
            prop_assert_eq!(&reference.findings, &candidate.findings);
            prop_assert_eq!(reference.stats.fired, candidate.stats.fired);
            prop_assert_eq!(reference.stats.asserted, candidate.stats.asserted);
            prop_assert_eq!(reference.stats.retracted, candidate.stats.retracted);
            prop_assert_eq!(reference.stats.cycles, candidate.stats.cycles);
            prop_assert_eq!(reference.truncated, candidate.truncated);
            naive_attempts += reference.stats.match_attempts;
            incremental_attempts += candidate.stats.match_attempts;
        }
        prop_assert!(
            incremental_attempts <= naive_attempts,
            "incremental did more match work than naive: {} > {}",
            incremental_attempts,
            naive_attempts,
        );
    }

    /// Equivalence also holds through knowledge-base edits mid-stream:
    /// learning a rule between runs preserves behaviour parity.
    #[test]
    fn equivalence_survives_learning(
        parts in prop::collection::vec(rule_parts(), 1..3),
        learned in rule_parts(),
        facts in prop::collection::vec(small_fact(), 1..8),
        more in prop::collection::vec(small_fact(), 0..5),
    ) {
        let kb = KnowledgeBase::from_rules(build_rules(parts));
        let mut naive = NaiveEngine::new(kb.clone()).with_max_cycles(40);
        let mut incremental = Engine::new(kb).with_max_cycles(40);
        for fact in facts {
            naive.insert(fact.clone());
            incremental.insert(fact);
        }
        let a = naive.run();
        let b = incremental.run();
        prop_assert_eq!(&a.findings, &b.findings);

        let rule = build_rules(vec![learned]).remove(0);
        naive.knowledge_mut().learn(rule.clone());
        incremental.knowledge_mut().learn(rule);
        for fact in more {
            naive.insert(fact.clone());
            incremental.insert(fact);
        }
        let a = naive.run();
        let b = incremental.run();
        prop_assert_eq!(&a.findings, &b.findings);
        prop_assert_eq!(a.stats.fired, b.stats.fired);
        prop_assert_eq!(a.truncated, b.truncated);
    }

    /// Guards never panic, for any operand/operator combination, and
    /// `Eq`/`Ne` are complementary on resolvable operands.
    #[test]
    fn guard_eval_is_total_and_eq_ne_complement(
        l in term_strategy(),
        r in term_strategy(),
        op in op_strategy(),
    ) {
        let g = Guard::new(Operand::Const(l.clone()), op, Operand::Const(r.clone()));
        let _ = g.eval(&Bindings::new());

        let eq = Guard::new(Operand::Const(l.clone()), GuardOp::Eq, Operand::Const(r.clone()));
        let ne = Guard::new(Operand::Const(l), GuardOp::Ne, Operand::Const(r));
        prop_assert_ne!(eq.eval(&Bindings::new()), ne.eval(&Bindings::new()));
    }

    /// A threshold rule fires exactly for the observations above the
    /// threshold, once each — regardless of insertion order.
    #[test]
    fn threshold_rule_fires_exactly_on_exceeding_values(
        threshold in 0.0f64..100.0,
        values in prop::collection::vec(0.0f64..100.0, 0..40),
    ) {
        let text = format!(
            r#"rule "t" {{
                when obs(device: ?d, value: ?v)
                if ?v > {threshold}
                then emit warning ?d "over"
            }}"#
        );
        let kb = KnowledgeBase::from_rules(parse_rules(&text).unwrap());
        let mut engine = Engine::new(kb);
        for (i, v) in values.iter().enumerate() {
            engine.insert(Fact::new("obs").with("device", format!("d{i}")).with("value", *v));
        }
        let out = engine.run();
        let expected = values.iter().filter(|v| **v > threshold).count();
        prop_assert_eq!(out.findings.len(), expected);
        prop_assert!(!out.truncated);
    }

    /// Refraction: a second run with unchanged memory fires nothing.
    #[test]
    fn second_run_is_quiescent(values in prop::collection::vec(0.0f64..100.0, 0..20)) {
        let kb = KnowledgeBase::from_rules(parse_rules(
            r#"rule "any" { when obs(value: ?v) then emit info "x" "seen ?v" }"#,
        ).unwrap());
        let mut engine = Engine::new(kb);
        for v in &values {
            engine.insert(Fact::new("obs").with("value", *v));
        }
        let first = engine.run();
        prop_assert_eq!(first.findings.len(), values.len());
        let second = engine.run();
        prop_assert_eq!(second.findings.len(), 0);
        prop_assert_eq!(second.stats.fired, 0);
    }

    /// Without retract effects, working memory only grows during a run
    /// (monotonicity of pure forward chaining).
    #[test]
    fn memory_grows_monotonically_without_retraction(
        n in 0usize..20,
    ) {
        let kb = KnowledgeBase::from_rules(parse_rules(
            r#"rule "derive" { when obs(value: ?v) then assert derived(value: ?v) }"#,
        ).unwrap());
        let mut engine = Engine::new(kb);
        for i in 0..n {
            engine.insert(Fact::new("obs").with("value", i as f64));
        }
        let before = engine.memory().len();
        let out = engine.run();
        prop_assert!(engine.memory().len() >= before);
        prop_assert_eq!(engine.memory().len(), before + out.stats.asserted as usize);
    }

    /// The DSL round-trips structurally: parsing equivalent text twice
    /// gives equal rules.
    #[test]
    fn parsing_is_deterministic(
        name in "[a-z][a-z-]{0,10}",
        salience in -100i32..100,
        threshold in -1000.0f64..1000.0,
    ) {
        let text = format!(
            r#"rule "{name}" salience {salience} {{
                when m(v: ?v)
                if ?v >= {threshold}
                then emit info ?v "msg"
            }}"#
        );
        let a = parse_rules(&text).unwrap();
        let b = parse_rules(&text).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a[0].name(), name.as_str());
        prop_assert_eq!(a[0].salience_value(), salience);
    }
}
