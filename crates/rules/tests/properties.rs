//! Property-based tests for the rule engine.

use agentgrid_rules::{
    parse_rules, Bindings, Engine, Fact, Guard, GuardOp, KnowledgeBase, Operand, Term,
};
use proptest::prelude::*;

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        prop::num::f64::NORMAL.prop_map(Term::Num),
        "[a-z]{0,8}".prop_map(Term::Str),
        any::<bool>().prop_map(Term::Bool),
    ]
}

fn op_strategy() -> impl Strategy<Value = GuardOp> {
    prop_oneof![
        Just(GuardOp::Lt),
        Just(GuardOp::Le),
        Just(GuardOp::Gt),
        Just(GuardOp::Ge),
        Just(GuardOp::Eq),
        Just(GuardOp::Ne),
    ]
}

proptest! {
    /// Guards never panic, for any operand/operator combination, and
    /// `Eq`/`Ne` are complementary on resolvable operands.
    #[test]
    fn guard_eval_is_total_and_eq_ne_complement(
        l in term_strategy(),
        r in term_strategy(),
        op in op_strategy(),
    ) {
        let g = Guard::new(Operand::Const(l.clone()), op, Operand::Const(r.clone()));
        let _ = g.eval(&Bindings::new());

        let eq = Guard::new(Operand::Const(l.clone()), GuardOp::Eq, Operand::Const(r.clone()));
        let ne = Guard::new(Operand::Const(l), GuardOp::Ne, Operand::Const(r));
        prop_assert_ne!(eq.eval(&Bindings::new()), ne.eval(&Bindings::new()));
    }

    /// A threshold rule fires exactly for the observations above the
    /// threshold, once each — regardless of insertion order.
    #[test]
    fn threshold_rule_fires_exactly_on_exceeding_values(
        threshold in 0.0f64..100.0,
        values in prop::collection::vec(0.0f64..100.0, 0..40),
    ) {
        let text = format!(
            r#"rule "t" {{
                when obs(device: ?d, value: ?v)
                if ?v > {threshold}
                then emit warning ?d "over"
            }}"#
        );
        let kb = KnowledgeBase::from_rules(parse_rules(&text).unwrap());
        let mut engine = Engine::new(kb);
        for (i, v) in values.iter().enumerate() {
            engine.insert(Fact::new("obs").with("device", format!("d{i}")).with("value", *v));
        }
        let out = engine.run();
        let expected = values.iter().filter(|v| **v > threshold).count();
        prop_assert_eq!(out.findings.len(), expected);
        prop_assert!(!out.truncated);
    }

    /// Refraction: a second run with unchanged memory fires nothing.
    #[test]
    fn second_run_is_quiescent(values in prop::collection::vec(0.0f64..100.0, 0..20)) {
        let kb = KnowledgeBase::from_rules(parse_rules(
            r#"rule "any" { when obs(value: ?v) then emit info "x" "seen ?v" }"#,
        ).unwrap());
        let mut engine = Engine::new(kb);
        for v in &values {
            engine.insert(Fact::new("obs").with("value", *v));
        }
        let first = engine.run();
        prop_assert_eq!(first.findings.len(), values.len());
        let second = engine.run();
        prop_assert_eq!(second.findings.len(), 0);
        prop_assert_eq!(second.stats.fired, 0);
    }

    /// Without retract effects, working memory only grows during a run
    /// (monotonicity of pure forward chaining).
    #[test]
    fn memory_grows_monotonically_without_retraction(
        n in 0usize..20,
    ) {
        let kb = KnowledgeBase::from_rules(parse_rules(
            r#"rule "derive" { when obs(value: ?v) then assert derived(value: ?v) }"#,
        ).unwrap());
        let mut engine = Engine::new(kb);
        for i in 0..n {
            engine.insert(Fact::new("obs").with("value", i as f64));
        }
        let before = engine.memory().len();
        let out = engine.run();
        prop_assert!(engine.memory().len() >= before);
        prop_assert_eq!(engine.memory().len(), before + out.stats.asserted as usize);
    }

    /// The DSL round-trips structurally: parsing equivalent text twice
    /// gives equal rules.
    #[test]
    fn parsing_is_deterministic(
        name in "[a-z][a-z-]{0,10}",
        salience in -100i32..100,
        threshold in -1000.0f64..1000.0,
    ) {
        let text = format!(
            r#"rule "{name}" salience {salience} {{
                when m(v: ?v)
                if ?v >= {threshold}
                then emit info ?v "msg"
            }}"#
        );
        let a = parse_rules(&text).unwrap();
        let b = parse_rules(&text).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a[0].name(), name.as_str());
        prop_assert_eq!(a[0].salience_value(), salience);
    }
}
