//! Property-based tests for the content codec, envelope and protocols.

use agentgrid_acl::protocol::{ContractNetInitiator, ContractNetOutcome};
use agentgrid_acl::{AclMessage, AgentId, ConversationId, Envelope, Performative, Value};
use proptest::prelude::*;

/// Strategy producing arbitrary content-language values (bounded depth).
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Nil),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks PartialEq-based round-trip checks.
        prop::num::f64::NORMAL.prop_map(Value::Float),
        "[a-z][a-z0-9-]{0,12}".prop_map(Value::Symbol),
        ".{0,20}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::List),
            prop::collection::btree_map("[a-z][a-z0-9-]{0,8}", inner, 0..5).prop_map(Value::Map),
        ]
    })
}

proptest! {
    /// Printing then parsing any value yields the same value.
    #[test]
    fn value_display_parse_round_trip(v in value_strategy()) {
        let text = v.to_string();
        let parsed: Value = text.parse().expect("printed value must parse");
        prop_assert_eq!(parsed, v);
    }

    /// node_count is positive and at least the number of list items.
    #[test]
    fn node_count_is_sane(v in value_strategy()) {
        let n = v.node_count();
        prop_assert!(n >= 1);
        if let Some(items) = v.as_list() {
            prop_assert!(n >= items.len());
        }
    }

    /// Messages survive envelope encode/decode for every performative.
    #[test]
    fn envelope_round_trip(
        p_index in 0usize..Performative::ALL.len(),
        sender in "[a-z]{1,8}@[a-z]{1,8}",
        receiver in "[a-z]{1,8}@[a-z]{1,8}",
        content in value_strategy(),
        conv in proptest::option::of("[a-z0-9-]{1,12}"),
    ) {
        let mut builder = AclMessage::builder(Performative::ALL[p_index])
            .sender(AgentId::new(sender))
            .receiver(AgentId::new(receiver))
            .content(content);
        if let Some(c) = conv {
            builder = builder.conversation(ConversationId::new(c));
        }
        let msg = builder.build().unwrap();
        let decoded = Envelope::decode(Envelope::seal(&msg).encode())
            .expect("decode")
            .open()
            .expect("open");
        prop_assert_eq!(decoded, msg);
    }

    /// The contract-net award always goes to a maximal bid from an invited
    /// bidder, and never to a refuser.
    #[test]
    fn contract_net_awards_a_maximal_invited_bid(
        bids in prop::collection::vec((0u8..20, 0.0f64..100.0), 1..10),
    ) {
        let me = AgentId::new("root@g");
        let participants: Vec<AgentId> = (0..20)
            .map(|i| AgentId::new(format!("p{i:02}@g")))
            .collect();
        let mut cnet =
            ContractNetInitiator::new(me, participants.clone(), Value::Nil);
        cnet.call_for_proposals();

        let mut expected_max: Option<f64> = None;
        let mut answered = std::collections::BTreeSet::new();
        for (idx, bid) in bids {
            let who = &participants[idx as usize];
            if answered.insert(who.clone()) {
                // Alternate: even indices bid, odd indices refuse.
                if idx % 2 == 0 {
                    cnet.handle_propose(who, bid).unwrap();
                    expected_max =
                        Some(expected_max.map_or(bid, |m: f64| m.max(bid)));
                } else {
                    cnet.handle_refuse(who).unwrap();
                }
            }
        }

        match cnet.award().unwrap() {
            ContractNetOutcome::Awarded { winner, bid, .. } => {
                prop_assert_eq!(Some(bid), expected_max);
                prop_assert!(winner.local_name().starts_with('p'));
                let idx: usize = winner.local_name()[1..].parse().unwrap();
                prop_assert_eq!(idx % 2, 0, "refusers must never win");
            }
            ContractNetOutcome::NoBids => {
                prop_assert_eq!(expected_max, None);
            }
        }
    }
}
