use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::{AgentId, Performative, Value};

/// A reference-counted [`AclMessage`].
///
/// Runtimes move messages around as `Arc`s so that multicast fan-out and
/// dead-letter capture are pointer bumps instead of deep clones of the
/// content tree. `Arc<T>` implements `From<T>`, so any API accepting
/// `impl Into<SharedMessage>` also accepts a plain [`AclMessage`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use agentgrid_acl::{AclMessage, AgentId, Performative, SharedMessage};
///
/// let msg = AclMessage::builder(Performative::Inform)
///     .sender(AgentId::new("a@p"))
///     .receiver(AgentId::new("b@p"))
///     .build()?;
/// let shared: SharedMessage = msg.into_shared();
/// let copy = Arc::clone(&shared); // fan-out: no deep clone
/// assert!(Arc::ptr_eq(&shared, &copy));
/// # Ok::<(), agentgrid_acl::BuildMessageError>(())
/// ```
pub type SharedMessage = Arc<AclMessage>;

/// Identifier tying the messages of one conversation together.
///
/// Conversation identifiers are plain strings on the wire; [`ConversationId::fresh`]
/// mints process-unique ones for protocol initiators.
///
/// # Examples
///
/// ```
/// use agentgrid_acl::ConversationId;
/// let a = ConversationId::fresh("cnet");
/// let b = ConversationId::fresh("cnet");
/// assert_ne!(a, b);
/// assert!(a.as_str().starts_with("cnet-"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConversationId(String);

static NEXT_CONVERSATION: AtomicU64 = AtomicU64::new(1);

impl ConversationId {
    /// Creates a conversation id from an explicit string.
    pub fn new(id: impl Into<String>) -> Self {
        ConversationId(id.into())
    }

    /// Mints a process-unique conversation id with the given prefix.
    pub fn fresh(prefix: &str) -> Self {
        let n = NEXT_CONVERSATION.fetch_add(1, Ordering::Relaxed);
        ConversationId(format!("{prefix}-{n}"))
    }

    /// The identifier text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ConversationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ConversationId {
    fn from(s: &str) -> Self {
        ConversationId::new(s)
    }
}

/// A FIPA-ACL message.
///
/// Messages are the only way grids talk to each other: the classifier grid
/// notifies the processor grid that data is ready with an `inform`, the
/// processor root opens a contract-net with `cfp`, containers bid with
/// `propose`, and so on (paper §3.2–3.5).
///
/// Construct messages through [`AclMessage::builder`]; reply to them with
/// [`AclMessage::reply`], which flips sender/receiver and preserves
/// the conversation id, ontology and protocol.
///
/// # Examples
///
/// ```
/// use agentgrid_acl::{AclMessage, AgentId, Performative, Value};
///
/// let cfp = AclMessage::builder(Performative::Cfp)
///     .sender(AgentId::new("pg-root@grid"))
///     .receiver(AgentId::new("container-a@grid"))
///     .protocol("fipa-contract-net")
///     .content(Value::list([Value::symbol("analyze"), Value::from("batch-9")]))
///     .build()?;
/// let bid = cfp.reply(Performative::Propose, Value::from(0.7));
/// assert_eq!(bid.receivers()[0].name(), "pg-root@grid");
/// assert_eq!(bid.conversation_id(), cfp.conversation_id());
/// # Ok::<(), agentgrid_acl::BuildMessageError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AclMessage {
    performative: Performative,
    sender: AgentId,
    receivers: Vec<AgentId>,
    reply_to: Option<AgentId>,
    content: Value,
    language: String,
    ontology: Option<String>,
    protocol: Option<String>,
    conversation_id: Option<ConversationId>,
    in_reply_to: Option<String>,
    reply_with: Option<String>,
}

impl AclMessage {
    /// Starts building a message with the given performative.
    pub fn builder(performative: Performative) -> AclMessageBuilder {
        AclMessageBuilder {
            performative,
            sender: None,
            receivers: Vec::new(),
            reply_to: None,
            content: Value::Nil,
            language: "agentgrid-sl".to_owned(),
            ontology: None,
            protocol: None,
            conversation_id: None,
            in_reply_to: None,
            reply_with: None,
        }
    }

    /// The communicative act of this message.
    pub fn performative(&self) -> Performative {
        self.performative
    }

    /// The sending agent.
    pub fn sender(&self) -> &AgentId {
        &self.sender
    }

    /// The receiving agents (at least one).
    pub fn receivers(&self) -> &[AgentId] {
        &self.receivers
    }

    /// Agent replies should be addressed to, when different from the sender.
    pub fn reply_to(&self) -> Option<&AgentId> {
        self.reply_to.as_ref()
    }

    /// The message content.
    pub fn content(&self) -> &Value {
        &self.content
    }

    /// The content language (defaults to `agentgrid-sl`).
    pub fn language(&self) -> &str {
        &self.language
    }

    /// The ontology the content is expressed in, if declared.
    pub fn ontology(&self) -> Option<&str> {
        self.ontology.as_deref()
    }

    /// The interaction protocol this message belongs to, if declared.
    pub fn protocol(&self) -> Option<&str> {
        self.protocol.as_deref()
    }

    /// The conversation this message belongs to, if declared.
    pub fn conversation_id(&self) -> Option<&ConversationId> {
        self.conversation_id.as_ref()
    }

    /// The `reply-with` tag of the message this one answers.
    pub fn in_reply_to(&self) -> Option<&str> {
        self.in_reply_to.as_deref()
    }

    /// The tag replies to this message should carry in `in-reply-to`.
    pub fn reply_with(&self) -> Option<&str> {
        self.reply_with.as_deref()
    }

    /// Builds a reply: receiver becomes `reply_to` (or the sender),
    /// sender becomes the first receiver, and conversation id, ontology,
    /// protocol and reply tags are carried over.
    pub fn reply(&self, performative: Performative, content: Value) -> AclMessage {
        let target = self.reply_to.clone().unwrap_or_else(|| self.sender.clone());
        let replier = self
            .receivers
            .first()
            .cloned()
            .unwrap_or_else(|| AgentId::new("unknown"));
        AclMessage {
            performative,
            sender: replier,
            receivers: vec![target],
            reply_to: None,
            content,
            language: self.language.clone(),
            ontology: self.ontology.clone(),
            protocol: self.protocol.clone(),
            conversation_id: self.conversation_id.clone(),
            in_reply_to: self.reply_with.clone(),
            reply_with: None,
        }
    }

    /// A copy of this message addressed to a single receiver; every
    /// other field is carried over. Runtimes use this to requeue the
    /// failed leg of a multicast without re-delivering to receivers the
    /// original already reached.
    pub fn narrowed(&self, receiver: AgentId) -> AclMessage {
        AclMessage {
            receivers: vec![receiver],
            ..self.clone()
        }
    }

    /// Approximate size of this message for network-cost accounting:
    /// header fields plus the node count of the content tree.
    pub fn cost_weight(&self) -> usize {
        8 + self.content.node_count()
    }

    /// Wraps this message in an [`Arc`] for zero-copy routing.
    ///
    /// Equivalent to `Arc::new(self)`; reads better at call sites that
    /// hand a freshly built message to a runtime.
    pub fn into_shared(self) -> SharedMessage {
        Arc::new(self)
    }
}

/// Builder for [`AclMessage`] (see [`AclMessage::builder`]).
#[derive(Debug, Clone)]
pub struct AclMessageBuilder {
    performative: Performative,
    sender: Option<AgentId>,
    receivers: Vec<AgentId>,
    reply_to: Option<AgentId>,
    content: Value,
    language: String,
    ontology: Option<String>,
    protocol: Option<String>,
    conversation_id: Option<ConversationId>,
    in_reply_to: Option<String>,
    reply_with: Option<String>,
}

impl AclMessageBuilder {
    /// Sets the sending agent (required).
    pub fn sender(mut self, sender: AgentId) -> Self {
        self.sender = Some(sender);
        self
    }

    /// Adds a receiver (at least one required).
    pub fn receiver(mut self, receiver: AgentId) -> Self {
        self.receivers.push(receiver);
        self
    }

    /// Adds several receivers.
    pub fn receivers(mut self, receivers: impl IntoIterator<Item = AgentId>) -> Self {
        self.receivers.extend(receivers);
        self
    }

    /// Directs replies to an agent other than the sender.
    pub fn reply_to(mut self, agent: AgentId) -> Self {
        self.reply_to = Some(agent);
        self
    }

    /// Sets the content value.
    pub fn content(mut self, content: Value) -> Self {
        self.content = content;
        self
    }

    /// Sets the content from s-expression text.
    ///
    /// # Panics
    ///
    /// Panics if `text` is not valid content-language syntax; use
    /// [`content`](Self::content) with a pre-parsed [`Value`] for dynamic
    /// input.
    pub fn content_text(self, text: &str) -> Self {
        let value = text
            .parse::<Value>()
            .unwrap_or_else(|e| panic!("invalid content text {text:?}: {e}"));
        self.content(value)
    }

    /// Sets the content language name.
    pub fn language(mut self, language: impl Into<String>) -> Self {
        self.language = language.into();
        self
    }

    /// Declares the ontology of the content.
    pub fn ontology(mut self, ontology: impl Into<String>) -> Self {
        self.ontology = Some(ontology.into());
        self
    }

    /// Declares the interaction protocol.
    pub fn protocol(mut self, protocol: impl Into<String>) -> Self {
        self.protocol = Some(protocol.into());
        self
    }

    /// Sets the conversation id.
    pub fn conversation(mut self, id: ConversationId) -> Self {
        self.conversation_id = Some(id);
        self
    }

    /// Sets the `in-reply-to` tag.
    pub fn in_reply_to(mut self, tag: impl Into<String>) -> Self {
        self.in_reply_to = Some(tag.into());
        self
    }

    /// Sets the `reply-with` tag.
    pub fn reply_with(mut self, tag: impl Into<String>) -> Self {
        self.reply_with = Some(tag.into());
        self
    }

    /// Finishes the message.
    ///
    /// # Errors
    ///
    /// Returns [`BuildMessageError`] if no sender or no receiver was set.
    pub fn build(self) -> Result<AclMessage, BuildMessageError> {
        let sender = self.sender.ok_or(BuildMessageError::MissingSender)?;
        if self.receivers.is_empty() {
            return Err(BuildMessageError::MissingReceiver);
        }
        Ok(AclMessage {
            performative: self.performative,
            sender,
            receivers: self.receivers,
            reply_to: self.reply_to,
            content: self.content,
            language: self.language,
            ontology: self.ontology,
            protocol: self.protocol,
            conversation_id: self.conversation_id,
            in_reply_to: self.in_reply_to,
            reply_with: self.reply_with,
        })
    }
}

/// Error returned by [`AclMessageBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildMessageError {
    /// No sender was provided.
    MissingSender,
    /// No receiver was provided.
    MissingReceiver,
}

impl fmt::Display for BuildMessageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildMessageError::MissingSender => f.write_str("message has no sender"),
            BuildMessageError::MissingReceiver => f.write_str("message has no receiver"),
        }
    }
}

impl std::error::Error for BuildMessageError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> AclMessageBuilder {
        AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("a@p"))
            .receiver(AgentId::new("b@p"))
    }

    #[test]
    fn builder_requires_sender_and_receiver() {
        let no_sender = AclMessage::builder(Performative::Inform)
            .receiver(AgentId::new("b"))
            .build();
        assert_eq!(no_sender.unwrap_err(), BuildMessageError::MissingSender);

        let no_receiver = AclMessage::builder(Performative::Inform)
            .sender(AgentId::new("a"))
            .build();
        assert_eq!(no_receiver.unwrap_err(), BuildMessageError::MissingReceiver);
    }

    #[test]
    fn builder_sets_all_fields() {
        let msg = base()
            .reply_to(AgentId::new("c@p"))
            .ontology("mgmt")
            .protocol("fipa-request")
            .conversation(ConversationId::new("k1"))
            .in_reply_to("t0")
            .reply_with("t1")
            .language("sl0")
            .content(Value::Int(5))
            .build()
            .unwrap();
        assert_eq!(msg.reply_to().unwrap().name(), "c@p");
        assert_eq!(msg.ontology(), Some("mgmt"));
        assert_eq!(msg.protocol(), Some("fipa-request"));
        assert_eq!(msg.conversation_id().unwrap().as_str(), "k1");
        assert_eq!(msg.in_reply_to(), Some("t0"));
        assert_eq!(msg.reply_with(), Some("t1"));
        assert_eq!(msg.language(), "sl0");
        assert_eq!(msg.content().as_int(), Some(5));
    }

    #[test]
    fn reply_flips_direction_and_keeps_context() {
        let msg = base()
            .protocol("fipa-request")
            .conversation(ConversationId::new("k9"))
            .reply_with("tag-3")
            .build()
            .unwrap();
        let reply = msg.reply(Performative::Agree, Value::Nil);
        assert_eq!(reply.sender().name(), "b@p");
        assert_eq!(reply.receivers()[0].name(), "a@p");
        assert_eq!(reply.protocol(), Some("fipa-request"));
        assert_eq!(reply.conversation_id().unwrap().as_str(), "k9");
        assert_eq!(reply.in_reply_to(), Some("tag-3"));
    }

    #[test]
    fn reply_prefers_reply_to() {
        let msg = base().reply_to(AgentId::new("relay@p")).build().unwrap();
        let reply = msg.reply(Performative::Inform, Value::Nil);
        assert_eq!(reply.receivers()[0].name(), "relay@p");
    }

    #[test]
    fn fresh_conversation_ids_are_unique() {
        let ids: Vec<_> = (0..100).map(|_| ConversationId::fresh("t")).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn shared_message_fan_out_shares_one_allocation() {
        let msg = base().content(Value::Int(7)).build().unwrap();
        let shared = msg.into_shared();
        let copies: Vec<SharedMessage> = (0..8).map(|_| Arc::clone(&shared)).collect();
        assert!(copies.iter().all(|c| Arc::ptr_eq(c, &shared)));
        // Replying through the Arc still works ergonomically.
        let reply = shared.reply(Performative::Agree, Value::Nil);
        assert_eq!(reply.receivers()[0].name(), "a@p");
    }

    #[test]
    fn cost_weight_grows_with_content() {
        let small = base().content(Value::Int(1)).build().unwrap();
        let big = base()
            .content(Value::list((0..50).map(Value::from)))
            .build()
            .unwrap();
        assert!(big.cost_weight() > small.cost_weight());
    }
}
