//! Typed state machines for the FIPA interaction protocols the grid uses.
//!
//! Two protocols appear in the paper: **fipa-request** (the classifier grid
//! asking the processor grid to analyze a batch; collectors being told new
//! goals) and **fipa-contract-net** (the processor-grid root negotiating
//! which container takes an analysis task, §3.5). Both are implemented as
//! explicit state machines that validate each step, so protocol violations
//! are caught at the messaging layer instead of deep inside agent logic.
//!
//! # Examples
//!
//! A full contract-net round between a root and two bidders:
//!
//! ```
//! use agentgrid_acl::protocol::{ContractNetInitiator, ContractNetOutcome};
//! use agentgrid_acl::{AgentId, Value};
//!
//! let root = AgentId::new("root@grid");
//! let a = AgentId::new("a@grid");
//! let b = AgentId::new("b@grid");
//!
//! let mut cnet = ContractNetInitiator::new(
//!     root,
//!     [a.clone(), b.clone()],
//!     Value::symbol("analyze-batch"),
//! );
//! let _cfps = cnet.call_for_proposals();
//! cnet.handle_propose(&a, 2.0).unwrap();
//! cnet.handle_propose(&b, 5.0).unwrap();
//! let outcome = cnet.award().unwrap();
//! match outcome {
//!     ContractNetOutcome::Awarded { winner, .. } => assert_eq!(winner, b),
//!     _ => panic!("expected an award"),
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::{AclMessage, AgentId, ConversationId, Performative, Value};

/// Protocol name for the FIPA request protocol.
pub const FIPA_REQUEST: &str = "fipa-request";
/// Protocol name for the FIPA contract-net protocol.
pub const FIPA_CONTRACT_NET: &str = "fipa-contract-net";

/// Error raised when a message violates the active protocol state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    state: &'static str,
    detail: String,
}

impl ProtocolError {
    fn new(state: &'static str, detail: impl Into<String>) -> Self {
        ProtocolError {
            state,
            detail: detail.into(),
        }
    }

    /// The protocol state the violation occurred in.
    pub fn state(&self) -> &'static str {
        self.state
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "protocol violation in state `{}`: {}",
            self.state, self.detail
        )
    }
}

impl std::error::Error for ProtocolError {}

// ---------------------------------------------------------------------------
// fipa-request
// ---------------------------------------------------------------------------

/// State of a [`RequestInitiator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestState {
    /// Request sent, awaiting `agree`/`refuse`.
    Sent,
    /// Participant agreed, awaiting the result (`inform`/`failure`).
    Agreed,
    /// Finished with an `inform` result.
    Done,
    /// Finished with `refuse` or `failure`.
    Failed,
}

/// Initiator side of the FIPA request protocol.
///
/// Drives `request → (agree|refuse) → (inform|failure)`.
#[derive(Debug, Clone)]
pub struct RequestInitiator {
    me: AgentId,
    participant: AgentId,
    conversation: ConversationId,
    state: RequestState,
    result: Option<Value>,
}

impl RequestInitiator {
    /// Creates an initiator and returns it along with the opening
    /// `request` message.
    pub fn open(me: AgentId, participant: AgentId, action: Value) -> (Self, AclMessage) {
        let conversation = ConversationId::fresh("req");
        let msg = AclMessage::builder(Performative::Request)
            .sender(me.clone())
            .receiver(participant.clone())
            .protocol(FIPA_REQUEST)
            .conversation(conversation.clone())
            .content(action)
            .build()
            .expect("sender and receiver are set");
        (
            RequestInitiator {
                me,
                participant,
                conversation,
                state: RequestState::Sent,
                result: None,
            },
            msg,
        )
    }

    /// Current protocol state.
    pub fn state(&self) -> RequestState {
        self.state
    }

    /// The conversation id binding this exchange.
    pub fn conversation(&self) -> &ConversationId {
        &self.conversation
    }

    /// The result content of a completed request.
    pub fn result(&self) -> Option<&Value> {
        self.result.as_ref()
    }

    /// Feeds a reply from the participant into the state machine.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] for replies from the wrong agent or
    /// conversation, or performatives illegal in the current state.
    pub fn handle(&mut self, reply: &AclMessage) -> Result<RequestState, ProtocolError> {
        let state_name = match self.state {
            RequestState::Sent => "sent",
            RequestState::Agreed => "agreed",
            RequestState::Done => "done",
            RequestState::Failed => "failed",
        };
        if reply.sender() != &self.participant {
            return Err(ProtocolError::new(
                state_name,
                format!(
                    "reply from `{}`, expected `{}`",
                    reply.sender(),
                    self.participant
                ),
            ));
        }
        if reply.conversation_id() != Some(&self.conversation) {
            return Err(ProtocolError::new(state_name, "wrong conversation"));
        }
        self.state = match (self.state, reply.performative()) {
            (RequestState::Sent, Performative::Agree) => RequestState::Agreed,
            (RequestState::Sent, Performative::Refuse) => RequestState::Failed,
            // FIPA allows skipping the agree and informing directly.
            (RequestState::Sent | RequestState::Agreed, Performative::Inform) => {
                self.result = Some(reply.content().clone());
                RequestState::Done
            }
            (RequestState::Sent | RequestState::Agreed, Performative::Failure) => {
                RequestState::Failed
            }
            (state, p) => {
                return Err(ProtocolError::new(
                    state_name,
                    format!("performative `{p}` illegal in {state:?}"),
                ))
            }
        };
        Ok(self.state)
    }

    /// The initiating agent.
    pub fn initiator(&self) -> &AgentId {
        &self.me
    }
}

/// Participant side of the FIPA request protocol: builds the standard
/// replies to a received `request`.
#[derive(Debug, Clone)]
pub struct RequestParticipant {
    request: AclMessage,
}

impl RequestParticipant {
    /// Accepts an incoming `request`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] if the message is not a `request`.
    pub fn accept(request: AclMessage) -> Result<Self, ProtocolError> {
        if request.performative() != Performative::Request {
            return Err(ProtocolError::new(
                "idle",
                format!("expected request, got `{}`", request.performative()),
            ));
        }
        Ok(RequestParticipant { request })
    }

    /// The action content of the request.
    pub fn action(&self) -> &Value {
        self.request.content()
    }

    /// Builds an `agree` reply.
    pub fn agree(&self) -> AclMessage {
        self.request.reply(Performative::Agree, Value::Nil)
    }

    /// Builds a `refuse` reply with a reason.
    pub fn refuse(&self, reason: impl Into<String>) -> AclMessage {
        self.request
            .reply(Performative::Refuse, Value::from(reason.into()))
    }

    /// Builds the final `inform` result.
    pub fn inform(&self, result: Value) -> AclMessage {
        self.request.reply(Performative::Inform, result)
    }

    /// Builds a `failure` reply with a reason.
    pub fn failure(&self, reason: impl Into<String>) -> AclMessage {
        self.request
            .reply(Performative::Failure, Value::from(reason.into()))
    }
}

// ---------------------------------------------------------------------------
// fipa-contract-net
// ---------------------------------------------------------------------------

/// State of a [`ContractNetInitiator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContractNetState {
    /// CFPs not yet sent.
    Drafting,
    /// CFPs sent, collecting bids.
    Bidding,
    /// Award decided.
    Awarded,
    /// No usable bid arrived.
    Void,
}

/// Outcome of [`ContractNetInitiator::award`].
// The variants intentionally differ in size: `Awarded` carries the
// ready-to-send decision messages, which is the whole point of the API.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ContractNetOutcome {
    /// A bidder won; `accept`/`reject` messages are ready to send.
    Awarded {
        /// The winning bidder.
        winner: AgentId,
        /// Its bid value.
        bid: f64,
        /// `accept-proposal` for the winner.
        accept: AclMessage,
        /// `reject-proposal` for every loser.
        rejects: Vec<AclMessage>,
    },
    /// Every participant refused or failed to bid.
    NoBids,
}

/// Initiator (manager) side of the FIPA contract-net protocol.
///
/// The processor-grid root uses this to auction analysis tasks: it issues a
/// `cfp` to candidate containers, collects `propose`/`refuse` replies and
/// awards the task to the **highest** bid (bids encode suitability, e.g.
/// idle capacity — see `agentgrid::balance`).
#[derive(Debug, Clone)]
pub struct ContractNetInitiator {
    me: AgentId,
    participants: Vec<AgentId>,
    task: Value,
    conversation: ConversationId,
    state: ContractNetState,
    bids: BTreeMap<AgentId, f64>,
    refusals: Vec<AgentId>,
}

impl ContractNetInitiator {
    /// Creates an initiator for `task` over the given participants.
    pub fn new(me: AgentId, participants: impl IntoIterator<Item = AgentId>, task: Value) -> Self {
        ContractNetInitiator {
            me,
            participants: participants.into_iter().collect(),
            task,
            conversation: ConversationId::fresh("cnet"),
            state: ContractNetState::Drafting,
            bids: BTreeMap::new(),
            refusals: Vec::new(),
        }
    }

    /// Current protocol state.
    pub fn state(&self) -> ContractNetState {
        self.state
    }

    /// The conversation id binding this auction.
    pub fn conversation(&self) -> &ConversationId {
        &self.conversation
    }

    /// Builds the `cfp` messages (one per participant) and moves to
    /// [`ContractNetState::Bidding`].
    pub fn call_for_proposals(&mut self) -> Vec<AclMessage> {
        self.state = ContractNetState::Bidding;
        self.participants
            .iter()
            .map(|p| {
                AclMessage::builder(Performative::Cfp)
                    .sender(self.me.clone())
                    .receiver(p.clone())
                    .protocol(FIPA_CONTRACT_NET)
                    .conversation(self.conversation.clone())
                    .content(self.task.clone())
                    .build()
                    .expect("sender and receiver are set")
            })
            .collect()
    }

    /// Records a bid from a participant.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] if the bidder was not invited, already
    /// answered, or the auction is not collecting bids.
    pub fn handle_propose(&mut self, bidder: &AgentId, bid: f64) -> Result<(), ProtocolError> {
        self.ensure_bidding("propose")?;
        self.ensure_invited_and_new(bidder)?;
        self.bids.insert(bidder.clone(), bid);
        Ok(())
    }

    /// Records a refusal from a participant.
    ///
    /// # Errors
    ///
    /// Same conditions as [`handle_propose`](Self::handle_propose).
    pub fn handle_refuse(&mut self, bidder: &AgentId) -> Result<(), ProtocolError> {
        self.ensure_bidding("refuse")?;
        self.ensure_invited_and_new(bidder)?;
        self.refusals.push(bidder.clone());
        Ok(())
    }

    fn ensure_bidding(&self, what: &str) -> Result<(), ProtocolError> {
        if self.state != ContractNetState::Bidding {
            return Err(ProtocolError::new(
                "not-bidding",
                format!("{what} received outside the bidding phase"),
            ));
        }
        Ok(())
    }

    fn ensure_invited_and_new(&self, bidder: &AgentId) -> Result<(), ProtocolError> {
        if !self.participants.contains(bidder) {
            return Err(ProtocolError::new(
                "bidding",
                format!("`{bidder}` was not invited"),
            ));
        }
        if self.bids.contains_key(bidder) || self.refusals.contains(bidder) {
            return Err(ProtocolError::new(
                "bidding",
                format!("`{bidder}` already answered"),
            ));
        }
        Ok(())
    }

    /// Whether every invited participant has answered.
    pub fn all_answered(&self) -> bool {
        self.bids.len() + self.refusals.len() == self.participants.len()
    }

    /// Closes bidding and awards to the highest bid (ties broken by agent
    /// name, so the award is deterministic).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] if bidding never opened or an award was
    /// already made.
    pub fn award(&mut self) -> Result<ContractNetOutcome, ProtocolError> {
        self.ensure_bidding("award")?;
        let Some((winner, bid)) = self
            .bids
            .iter()
            .max_by(|(a_id, a_bid), (b_id, b_bid)| {
                a_bid
                    .partial_cmp(b_bid)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // BTreeMap iterates in ascending name order; prefer the
                    // *earlier* name on ties, so invert the id comparison.
                    .then_with(|| b_id.cmp(a_id))
            })
            .map(|(id, bid)| (id.clone(), *bid))
        else {
            self.state = ContractNetState::Void;
            return Ok(ContractNetOutcome::NoBids);
        };
        self.state = ContractNetState::Awarded;
        let accept = self.decision_message(&winner, Performative::AcceptProposal);
        let rejects = self
            .bids
            .keys()
            .filter(|id| **id != winner)
            .map(|id| self.decision_message(id, Performative::RejectProposal))
            .collect();
        Ok(ContractNetOutcome::Awarded {
            winner,
            bid,
            accept,
            rejects,
        })
    }

    fn decision_message(&self, to: &AgentId, performative: Performative) -> AclMessage {
        AclMessage::builder(performative)
            .sender(self.me.clone())
            .receiver(to.clone())
            .protocol(FIPA_CONTRACT_NET)
            .conversation(self.conversation.clone())
            .content(self.task.clone())
            .build()
            .expect("sender and receiver are set")
    }

    /// Bids received so far, by agent.
    pub fn bids(&self) -> &BTreeMap<AgentId, f64> {
        &self.bids
    }
}

/// Participant (bidder) side of the contract-net protocol: builds replies
/// to a received `cfp`.
#[derive(Debug, Clone)]
pub struct ContractNetParticipant {
    cfp: AclMessage,
}

impl ContractNetParticipant {
    /// Accepts an incoming `cfp`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] if the message is not a `cfp`.
    pub fn accept(cfp: AclMessage) -> Result<Self, ProtocolError> {
        if cfp.performative() != Performative::Cfp {
            return Err(ProtocolError::new(
                "idle",
                format!("expected cfp, got `{}`", cfp.performative()),
            ));
        }
        Ok(ContractNetParticipant { cfp })
    }

    /// The task being auctioned.
    pub fn task(&self) -> &Value {
        self.cfp.content()
    }

    /// Builds a `propose` bid.
    pub fn propose(&self, bid: f64) -> AclMessage {
        self.cfp.reply(Performative::Propose, Value::from(bid))
    }

    /// Builds a `refuse` reply.
    pub fn refuse(&self, reason: impl Into<String>) -> AclMessage {
        self.cfp
            .reply(Performative::Refuse, Value::from(reason.into()))
    }

    /// Builds the final `inform` once the awarded work is done.
    pub fn inform_done(&self, result: Value) -> AclMessage {
        self.cfp.reply(Performative::Inform, result)
    }

    /// Builds a `failure` if the awarded work could not be completed.
    pub fn failure(&self, reason: impl Into<String>) -> AclMessage {
        self.cfp
            .reply(Performative::Failure, Value::from(reason.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (AgentId, AgentId, AgentId) {
        (
            AgentId::new("root@g"),
            AgentId::new("a@g"),
            AgentId::new("b@g"),
        )
    }

    #[test]
    fn request_happy_path() {
        let (me, other, _) = ids();
        let (mut init, req) = RequestInitiator::open(me, other, Value::symbol("collect"));
        assert_eq!(init.state(), RequestState::Sent);
        assert_eq!(req.protocol(), Some(FIPA_REQUEST));

        let part = RequestParticipant::accept(req).unwrap();
        assert_eq!(part.action(), &Value::symbol("collect"));
        init.handle(&part.agree()).unwrap();
        assert_eq!(init.state(), RequestState::Agreed);
        init.handle(&part.inform(Value::Int(7))).unwrap();
        assert_eq!(init.state(), RequestState::Done);
        assert_eq!(init.result().unwrap().as_int(), Some(7));
    }

    #[test]
    fn request_refusal_terminates() {
        let (me, other, _) = ids();
        let (mut init, req) = RequestInitiator::open(me, other, Value::Nil);
        let part = RequestParticipant::accept(req).unwrap();
        init.handle(&part.refuse("busy")).unwrap();
        assert_eq!(init.state(), RequestState::Failed);
    }

    #[test]
    fn request_inform_without_agree_is_legal() {
        let (me, other, _) = ids();
        let (mut init, req) = RequestInitiator::open(me, other, Value::Nil);
        let part = RequestParticipant::accept(req).unwrap();
        init.handle(&part.inform(Value::Nil)).unwrap();
        assert_eq!(init.state(), RequestState::Done);
    }

    #[test]
    fn request_rejects_wrong_sender() {
        let (me, other, intruder) = ids();
        let (mut init, req) = RequestInitiator::open(me, other, Value::Nil);
        let fake = AclMessage::builder(Performative::Agree)
            .sender(intruder)
            .receiver(req.sender().clone())
            .conversation(init.conversation().clone())
            .build()
            .unwrap();
        assert!(init.handle(&fake).is_err());
    }

    #[test]
    fn request_rejects_wrong_conversation() {
        let (me, other, _) = ids();
        let (mut init, _req) = RequestInitiator::open(me.clone(), other.clone(), Value::Nil);
        let off_thread = AclMessage::builder(Performative::Agree)
            .sender(other)
            .receiver(me)
            .conversation(ConversationId::new("unrelated"))
            .build()
            .unwrap();
        assert!(init.handle(&off_thread).is_err());
    }

    #[test]
    fn participant_rejects_non_request() {
        let (me, other, _) = ids();
        let inform = AclMessage::builder(Performative::Inform)
            .sender(me)
            .receiver(other)
            .build()
            .unwrap();
        assert!(RequestParticipant::accept(inform).is_err());
    }

    #[test]
    fn contract_net_awards_highest_bid() {
        let (me, a, b) = ids();
        let mut cnet = ContractNetInitiator::new(me, [a.clone(), b.clone()], Value::Nil);
        let cfps = cnet.call_for_proposals();
        assert_eq!(cfps.len(), 2);
        cnet.handle_propose(&a, 1.0).unwrap();
        cnet.handle_propose(&b, 3.0).unwrap();
        assert!(cnet.all_answered());
        match cnet.award().unwrap() {
            ContractNetOutcome::Awarded {
                winner,
                bid,
                accept,
                rejects,
            } => {
                assert_eq!(winner, b);
                assert_eq!(bid, 3.0);
                assert_eq!(accept.receivers()[0], b);
                assert_eq!(rejects.len(), 1);
                assert_eq!(rejects[0].receivers()[0], a);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(cnet.state(), ContractNetState::Awarded);
    }

    #[test]
    fn contract_net_tie_breaks_by_name() {
        let (me, a, b) = ids();
        let mut cnet = ContractNetInitiator::new(me, [b.clone(), a.clone()], Value::Nil);
        cnet.call_for_proposals();
        cnet.handle_propose(&b, 2.0).unwrap();
        cnet.handle_propose(&a, 2.0).unwrap();
        match cnet.award().unwrap() {
            ContractNetOutcome::Awarded { winner, .. } => assert_eq!(winner, a),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn contract_net_no_bids_is_void() {
        let (me, a, b) = ids();
        let mut cnet = ContractNetInitiator::new(me, [a.clone(), b.clone()], Value::Nil);
        cnet.call_for_proposals();
        cnet.handle_refuse(&a).unwrap();
        cnet.handle_refuse(&b).unwrap();
        assert_eq!(cnet.award().unwrap(), ContractNetOutcome::NoBids);
        assert_eq!(cnet.state(), ContractNetState::Void);
    }

    #[test]
    fn contract_net_rejects_uninvited_and_double_bids() {
        let (me, a, b) = ids();
        let mut cnet = ContractNetInitiator::new(me, [a.clone()], Value::Nil);
        cnet.call_for_proposals();
        assert!(cnet.handle_propose(&b, 1.0).is_err());
        cnet.handle_propose(&a, 1.0).unwrap();
        assert!(cnet.handle_propose(&a, 2.0).is_err());
        assert!(cnet.handle_refuse(&a).is_err());
    }

    #[test]
    fn contract_net_rejects_bids_before_cfp_and_double_award() {
        let (me, a, _) = ids();
        let mut cnet = ContractNetInitiator::new(me, [a.clone()], Value::Nil);
        assert!(cnet.handle_propose(&a, 1.0).is_err());
        cnet.call_for_proposals();
        cnet.handle_propose(&a, 1.0).unwrap();
        cnet.award().unwrap();
        assert!(cnet.award().is_err());
    }

    #[test]
    fn participant_builds_protocol_replies() {
        let (me, a, _) = ids();
        let mut cnet = ContractNetInitiator::new(me, [a.clone()], Value::symbol("t"));
        let cfp = cnet.call_for_proposals().pop().unwrap();
        let part = ContractNetParticipant::accept(cfp).unwrap();
        assert_eq!(part.task(), &Value::symbol("t"));
        let bid = part.propose(4.5);
        assert_eq!(bid.performative(), Performative::Propose);
        assert_eq!(bid.content().as_float(), Some(4.5));
        assert_eq!(part.refuse("no skill").performative(), Performative::Refuse);
        assert_eq!(
            part.inform_done(Value::Nil).performative(),
            Performative::Inform
        );
        assert_eq!(part.failure("oom").performative(), Performative::Failure);
    }
}
