//! FIPA-ACL messaging for the `agentgrid` network-management system.
//!
//! This crate implements the agent-communication substrate the paper's
//! architecture rests on: [ACL messages](AclMessage) with the standard FIPA
//! [performatives](Performative), [agent identifiers](AgentId), a small
//! typed [content language](Value) with an s-expression codec, the
//! management [`ontology`] used between the collector, classifier,
//! processor and interface grids, and typed state machines for the FIPA
//! *request* and *contract-net* [interaction protocols](protocol).
//!
//! # Examples
//!
//! ```
//! use agentgrid_acl::{AclMessage, AgentId, Performative};
//!
//! let root = AgentId::new("root@grid");
//! let container = AgentId::new("container-1@grid");
//! let msg = AclMessage::builder(Performative::Inform)
//!     .sender(container.clone())
//!     .receiver(root.clone())
//!     .ontology("agentgrid-management")
//!     .content_text("(ready)")
//!     .build()
//!     .unwrap();
//! assert_eq!(msg.performative(), Performative::Inform);
//! assert_eq!(msg.receivers(), [root]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent_id;
mod content;
mod envelope;
mod message;
pub mod ontology;
mod performative;
pub mod protocol;

pub use agent_id::{AgentId, ParseAgentIdError};
pub use content::{ParseValueError, Value};
pub use envelope::{DecodeEnvelopeError, Envelope};
pub use message::{
    AclMessage, AclMessageBuilder, BuildMessageError, ConversationId, SharedMessage,
};
pub use performative::{ParsePerformativeError, Performative};
